"""Packet representation used by the cycle-level simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from .core.link_types import MessageClass

#: process-global fallback id counter, used only for packets constructed
#: without an explicit ``pid`` (hand-built packets in tests and tools).
#: Simulation-generated packets draw from a per-simulation counter instead
#: (see :class:`repro.traffic.reactive.TrafficManager`), so back-to-back
#: ``Simulation`` runs in one process see identical pid sequences.
_packet_ids = itertools.count()


class RouteKind(IntEnum):
    """How a packet is (currently) being routed."""

    MINIMAL = 0
    VALIANT = 1


@dataclass(slots=True)
class Packet:
    """A virtual-cut-through packet.

    Packets move through the simulator as atomic units; their size in phits
    determines serialization delay on links and crossbars as well as buffer
    and credit occupancy.
    """

    src_node: int
    dst_node: int
    size_phits: int
    msg_class: MessageClass = MessageClass.REQUEST
    created_at: int = 0
    pid: int = field(default_factory=lambda: next(_packet_ids))

    # -- routing state -------------------------------------------------------
    #: destination router, resolved lazily on first routing plan (-1 until then).
    dst_router: int = -1
    route_kind: RouteKind = RouteKind.MINIMAL
    #: True once the injection-time routing decision (MIN vs Valiant) is made.
    route_decided: bool = False
    #: Valiant intermediate router (None until chosen / for minimal packets).
    intermediate_router: Optional[int] = None
    #: True once the packet has reached (or abandoned) its Valiant intermediate.
    intermediate_reached: bool = False
    #: True once PAR has taken (or declined) its in-transit decision.
    par_decided: bool = False
    #: number of network hops taken so far (excludes injection/ejection).
    hops: int = 0

    # -- VC accounting phase (distance-based slot alignment) -------------------
    #: reference-slot offsets (local, global) of the current routing phase,
    #: stored as two plain ints so routing-plan memo keys stay flat.
    phase_local: int = 0
    phase_global: int = 0
    #: hops taken within the current phase.
    phase_position: int = 0
    #: number of global hops traversed within the current phase (truthy once
    #: the first one is taken; topologies like HyperX have several per phase).
    phase_global_taken: int = 0

    # -- position state --------------------------------------------------------
    #: VC index the packet currently occupies at its input port (-1 at injection).
    current_vc: int = -1
    #: routing class under which the packet's current buffer credits were
    #: debited upstream (must be echoed on the credit return).
    credit_tag_minimal: bool = True

    # -- bookkeeping ---------------------------------------------------------------
    injected_at: int = -1
    delivered_at: int = -1
    #: measurement epoch this packet counts toward (0 = outside every window;
    #: the default of 1 equals the first window's epoch, so hand-built
    #: packets behave like the legacy boolean ``measured=True`` stamp).
    measured: int = 1
    #: id of the request packet that triggered this reply (reactive traffic).
    in_reply_to: Optional[int] = None

    @property
    def is_minimal(self) -> bool:
        return self.route_kind == RouteKind.MINIMAL

    @property
    def latency(self) -> int:
        """End-to-end latency (generation to delivery), in cycles."""
        if self.delivered_at < 0:
            raise ValueError("packet not delivered yet")
        return self.delivered_at - self.created_at

    def mark_valiant(self, intermediate_router: int) -> None:
        """Switch the packet onto a Valiant path through ``intermediate_router``.

        Called from within a routing decision, i.e. before the plan being
        computed is cached, so no plan-cache invalidation is needed.
        """
        self.route_kind = RouteKind.VALIANT
        self.intermediate_router = intermediate_router
        self.intermediate_reached = False

    @property
    def phase_offsets(self) -> tuple[int, int]:
        """Reference-slot offsets (local, global) of the current phase."""
        return (self.phase_local, self.phase_global)

    def begin_phase(self, offsets: tuple[int, int]) -> None:
        """Start a new routing phase (e.g. the second minimal segment of Valiant)."""
        self.phase_local, self.phase_global = offsets
        self.phase_position = 0
        self.phase_global_taken = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "MIN" if self.is_minimal else f"VAL(via {self.intermediate_router})"
        return (
            f"Packet(#{self.pid} {self.src_node}->{self.dst_node} "
            f"{self.msg_class.name} {kind} size={self.size_phits})"
        )
