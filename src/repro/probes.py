"""Pluggable probe subsystem: typed observers over a running simulation.

A :class:`Probe` subscribes to simulation events by *overriding* hook
methods; the :class:`ProbeHub` inspects which hooks each attached probe
actually overrides and installs a dispatch callback only where at least one
subscriber exists.  Every instrumented hot-path site guards its dispatch with
a single ``is not None`` attribute check that stays ``None`` when nothing
subscribed — the **zero-cost-when-unsubscribed invariant**: a probe-less run
executes the exact same work (and draws the exact same randomness) as a run
on the un-instrumented code, so results stay bit-identical and the
event-driven engine keeps its PR 1/2 performance.

Hooks (all optional):

======================  =====================================================
``on_packet_injected``  packet entered its injection buffer at a router
``on_packet_delivered`` packet consumed at its destination node
``on_packet_misrouted`` packet took its first non-minimal hop
``on_flit_transmitted`` a packet's phits started serializing onto a link
``on_vc_occupancy``     occupancy of a network input VC changed (+/- phits)
``on_alloc_stall``      a stepped router found no requestable packet
``on_phase``            session phase transition (warmup/measure/drain/...)
``on_sample``           periodic tick for probes with ``sample_interval``
======================  =====================================================

Probes never mutate simulation state; they observe, accumulate, and export
their data as named :class:`~repro.record.RunRecord` telemetry channels via
:meth:`Probe.channels`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .metrics import LatencyHistogram
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session


class Probe:
    """Base observer: every hook is a no-op; override the ones you need.

    The hub treats a hook as subscribed only if the probe's class overrides
    it, so an un-overridden hook costs nothing at run time.
    """

    #: cycles between ``on_sample`` ticks; 0 disables periodic sampling.
    sample_interval: int = 0

    def __init__(self) -> None:
        self.session: Optional["Session"] = None

    # -- lifecycle ------------------------------------------------------------
    def on_attach(self, session: "Session") -> None:
        """Called once when the owning session wires its probes."""
        self.session = session

    def on_phase(self, phase: str, cycle: int) -> None:
        """Session phase transition (``warmup``/``measure``/``drain``/``done``)."""

    def on_sample(self, cycle: int) -> None:
        """Periodic tick every ``sample_interval`` cycles (if non-zero)."""

    # -- packet events --------------------------------------------------------
    def on_packet_injected(self, packet: Packet, router_id: int, cycle: int) -> None:
        """Packet accepted into an injection buffer at ``router_id``."""

    def on_packet_delivered(self, packet: Packet, cycle: int) -> None:
        """Packet fully consumed at its destination node."""

    def on_packet_misrouted(self, packet: Packet, router_id: int, cycle: int) -> None:
        """Packet took its first non-minimal hop at ``router_id``."""

    # -- component events -----------------------------------------------------
    def on_flit_transmitted(self, link, packet: Packet, vc: int, cycle: int) -> None:
        """``packet.size_phits`` phits started serializing onto ``link``."""

    def on_vc_occupancy(
        self, router_id: int, port_id: int, vc: int, delta: int,
        occupancy: int, cycle: int,
    ) -> None:
        """Occupancy of a network input VC changed by ``delta`` phits."""

    def on_alloc_stall(self, router_id: int, cycle: int, retry_cycle: int) -> None:
        """A stepped router with resident packets granted nothing this cycle."""

    def on_fault_applied(self, event, cycle: int) -> None:
        """A fault-schedule event was applied (see :mod:`repro.faults`)."""

    def on_packet_dropped(
        self, packet: Packet, router_id: int, reason: str, cycle: int
    ) -> None:
        """A packet was dropped by fault injection (``reason`` is ``"wire"``,
        ``"buffer"`` or ``"source"``)."""

    # -- export ---------------------------------------------------------------
    def channels(self) -> Dict[str, dict]:
        """Telemetry channels to merge into the session's RunRecord."""
        return {}


#: hooks the hub dispatches through simulation components (``on_phase`` and
#: ``on_sample`` are driven by the session itself).
_COMPONENT_HOOKS = (
    "on_packet_injected",
    "on_packet_delivered",
    "on_packet_misrouted",
    "on_flit_transmitted",
    "on_vc_occupancy",
    "on_alloc_stall",
    "on_fault_applied",
    "on_packet_dropped",
)


class ProbeHub:
    """Builds per-hook dispatchers and wires them into simulation components.

    Only hooks with at least one subscriber get a dispatcher; everything else
    stays ``None`` at its instrumentation site, preserving the zero-cost
    invariant for the unsubscribed hooks of a probed run too.
    """

    def __init__(self, probes: Sequence[Probe]) -> None:
        self.probes = list(probes)
        self._subs: Dict[str, List] = {
            hook: [
                getattr(probe, hook)
                for probe in self.probes
                if getattr(type(probe), hook, None) is not getattr(Probe, hook)
            ]
            for hook in _COMPONENT_HOOKS + ("on_phase",)
        }

    def dispatcher(self, hook: str):
        """Fan-out callable for ``hook``, or None when nobody subscribed."""
        subs = self._subs[hook]
        if not subs:
            return None
        if len(subs) == 1:
            return subs[0]

        def fan_out(*args):
            for sub in subs:
                sub(*args)

        return fan_out

    def dispatch_phase(self, phase: str, cycle: int) -> None:
        for sub in self._subs["on_phase"]:
            sub(phase, cycle)

    # -- wiring ---------------------------------------------------------------
    def wire(self, sim) -> None:
        """Install dispatchers into a built :class:`~repro.simulation.Simulation`."""
        injected = self.dispatcher("on_packet_injected")
        misrouted = self.dispatcher("on_packet_misrouted")
        stalled = self.dispatcher("on_alloc_stall")
        occupancy = self.dispatcher("on_vc_occupancy")
        transmitted = self.dispatcher("on_flit_transmitted")
        delivered = self.dispatcher("on_packet_delivered")

        if delivered is not None:
            sim.traffic.delivery_hook = delivered
        controller = getattr(sim, "fault_controller", None)
        if controller is not None:
            controller.on_fault_applied = self.dispatcher("on_fault_applied")
            controller.on_packet_dropped = self.dispatcher("on_packet_dropped")
        for router in sim.routers:
            router_id = router.router_id
            if injected is not None:
                router.on_injection = (
                    lambda packet, now, _rid=router_id: injected(packet, _rid, now)
                )
            if misrouted is not None:
                router.on_misroute = (
                    lambda packet, now, _rid=router_id: misrouted(packet, _rid, now)
                )
            if stalled is not None:
                router.on_stall = stalled
            if occupancy is not None:
                for port in router.input_ports.values():
                    port.on_occupancy = (
                        lambda vc, delta, occ, now, _rid=router_id, _pid=port.port_id:
                        occupancy(_rid, _pid, vc, delta, occ, now)
                    )
            if transmitted is not None:
                for output in router.output_ports.values():
                    if output.link is not None:
                        output.link.probe_hook = transmitted


# ---------------------------------------------------------------------------
# Built-in probes
# ---------------------------------------------------------------------------

class TimeSeriesProbe(Probe):
    """Interval-sampled accepted load, delivery latency and resident packets.

    A sample row is flushed every ``interval`` cycles and at every session
    phase transition, so measurement-window boundaries always coincide with a
    flush: summing ``phits`` over the samples that fall inside a window
    reproduces the window's ``phits_delivered`` (and therefore its accepted
    load) exactly.
    """

    def __init__(self, interval: int = 100) -> None:
        super().__init__()
        if interval < 1:
            raise ValueError("sample interval must be >= 1 cycle")
        self.sample_interval = interval
        self.samples: List[dict] = []
        self._phits = 0
        self._delivered = 0
        self._injected = 0
        self._latency_sum = 0
        self._last_flush = 0

    def on_attach(self, session: "Session") -> None:
        super().on_attach(session)
        self._last_flush = session.now

    def on_packet_injected(self, packet: Packet, router_id: int, cycle: int) -> None:
        self._injected += 1

    def on_packet_delivered(self, packet: Packet, cycle: int) -> None:
        self._delivered += 1
        self._phits += packet.size_phits
        self._latency_sum += cycle - packet.created_at

    def on_sample(self, cycle: int) -> None:
        self._flush(cycle)

    def on_phase(self, phase: str, cycle: int) -> None:
        self._flush(cycle)

    def _flush(self, cycle: int) -> None:
        elapsed = cycle - self._last_flush
        if elapsed <= 0:
            return
        session = self.session
        num_nodes = session.sim.topology.num_nodes if session else 1
        self.samples.append({
            "cycle": cycle,
            "elapsed": elapsed,
            "phits": self._phits,
            "delivered": self._delivered,
            "injected": self._injected,
            "accepted_load": self._phits / (num_nodes * elapsed),
            "mean_latency": (
                self._latency_sum / self._delivered if self._delivered else 0.0
            ),
            "resident": (
                session.sim.total_resident_packets() if session else 0
            ),
        })
        self._phits = 0
        self._delivered = 0
        self._injected = 0
        self._latency_sum = 0
        self._last_flush = cycle

    def channels(self) -> Dict[str, dict]:
        return {
            "timeseries": {
                "meta": {
                    "interval": self.sample_interval,
                    "fields": ["cycle", "elapsed", "phits", "delivered",
                               "injected", "accepted_load", "mean_latency",
                               "resident"],
                    "note": ("rows also flush at phase transitions; summing "
                             "'phits' over a measurement window reproduces "
                             "the window's phits_delivered exactly"),
                },
                "data": self.samples,
            }
        }


class LinkUtilizationProbe(Probe):
    """Per-link transmitted phits and utilization over the probed interval."""

    def __init__(self) -> None:
        super().__init__()
        self._phits: Dict[str, int] = {}
        self._packets: Dict[str, int] = {}
        self._types: Dict[str, str] = {}
        self._attach_cycle = 0

    def on_attach(self, session: "Session") -> None:
        super().on_attach(session)
        self._attach_cycle = session.now

    def on_flit_transmitted(self, link, packet: Packet, vc: int, cycle: int) -> None:
        name = link.name
        self._phits[name] = self._phits.get(name, 0) + packet.size_phits
        self._packets[name] = self._packets.get(name, 0) + 1
        if name not in self._types:
            self._types[name] = link.link_type.name.lower()

    def channels(self) -> Dict[str, dict]:
        elapsed = (self.session.now - self._attach_cycle) if self.session else 0
        data = {
            name: {
                "phits": phits,
                "packets": self._packets[name],
                "link_type": self._types[name],
                "utilization": phits / elapsed if elapsed else 0.0,
            }
            for name, phits in sorted(self._phits.items())
        }
        return {
            "link_utilization": {
                "meta": {
                    "elapsed_cycles": elapsed,
                    "links_observed": len(data),
                    "note": "links with zero traffic are omitted",
                },
                "data": data,
            }
        }


class VcOccupancyProbe(Probe):
    """Peak and time-weighted mean occupancy of every network input VC."""

    def __init__(self) -> None:
        super().__init__()
        #: (router, port, vc) -> [occupancy, peak, integral, last_cycle]
        self._state: Dict[tuple, list] = {}
        self._attach_cycle = 0

    def on_attach(self, session: "Session") -> None:
        super().on_attach(session)
        self._attach_cycle = session.now

    def on_vc_occupancy(
        self, router_id: int, port_id: int, vc: int, delta: int,
        occupancy: int, cycle: int,
    ) -> None:
        key = (router_id, port_id, vc)
        state = self._state.get(key)
        if state is None:
            self._state[key] = [occupancy, occupancy, 0, cycle]
            return
        state[2] += state[0] * (cycle - state[3])
        state[0] = occupancy
        state[3] = cycle
        if occupancy > state[1]:
            state[1] = occupancy

    def channels(self) -> Dict[str, dict]:
        now = self.session.now if self.session else 0
        elapsed = now - self._attach_cycle
        data = {}
        for (router_id, port_id, vc), state in sorted(self._state.items()):
            integral = state[2] + state[0] * (now - state[3])
            data[f"{router_id}:{port_id}:{vc}"] = {
                "peak_phits": state[1],
                "mean_phits": integral / elapsed if elapsed else 0.0,
            }
        return {
            "vc_occupancy": {
                "meta": {
                    "elapsed_cycles": elapsed,
                    "key": "router:port:vc",
                    "note": "VCs that never held a packet are omitted",
                },
                "data": data,
            }
        }


class LatencyHistogramProbe(Probe):
    """Full-run latency distribution of every delivery since attachment.

    Unlike the metrics collector's histogram this one is not restricted to
    the measurement window — it sees warm-up and drain-phase deliveries too,
    which is what transient analysis needs.
    """

    def __init__(self) -> None:
        super().__init__()
        self.histogram = LatencyHistogram()

    def on_packet_delivered(self, packet: Packet, cycle: int) -> None:
        self.histogram.add(cycle - packet.created_at)

    def channels(self) -> Dict[str, dict]:
        return {
            "latency_histogram": {
                "meta": {
                    "scope": "all deliveries since probe attachment",
                    "fine_limit": LatencyHistogram.FINE_LIMIT,
                },
                "data": self.histogram.to_dict(),
            }
        }


class AllocStallProbe(Probe):
    """Counts allocation-stall cycles per router (congestion diagnostics)."""

    def __init__(self) -> None:
        super().__init__()
        self._stalls: Dict[int, int] = {}

    def on_alloc_stall(self, router_id: int, cycle: int, retry_cycle: int) -> None:
        self._stalls[router_id] = self._stalls.get(router_id, 0) + 1

    def channels(self) -> Dict[str, dict]:
        return {
            "alloc_stalls": {
                "meta": {"key": "router_id",
                         "note": ("stall = a stepped router with resident "
                                  "packets granted nothing; Piggyback routers "
                                  "report stalls but never sleep on them")},
                "data": {str(k): v for k, v in sorted(self._stalls.items())},
            }
        }


#: probe registry used by the CLI's ``--probes`` flag and orchestrator jobs.
PROBES: Dict[str, type] = {
    "timeseries": TimeSeriesProbe,
    "linkutil": LinkUtilizationProbe,
    "vcocc": VcOccupancyProbe,
    "lathist": LatencyHistogramProbe,
    "stalls": AllocStallProbe,
}


def make_probes(names: Sequence[str]) -> List[Probe]:
    """Instantiate probes from registry names (e.g. CLI ``--probes`` values)."""
    probes: List[Probe] = []
    for name in names:
        try:
            factory = PROBES[name]
        except KeyError:
            raise ValueError(
                f"unknown probe {name!r}; expected one of {sorted(PROBES)}"
            ) from None
        probes.append(factory())
    return probes
