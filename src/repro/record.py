"""Versioned run records: summary + telemetry channels + provenance.

A :class:`RunRecord` is the schema-versioned successor of the flat
:class:`~repro.metrics.SimulationResult` JSON blobs that PR 1's result store
persisted (schema v1).  Version 2 separates three concerns:

* ``summary`` — the steady-state :class:`SimulationResult` of the (first)
  measurement window, unchanged semantics so every existing consumer of
  accepted load / latency keeps working;
* ``channels`` — named telemetry emitted by probes (time series, link
  utilization, VC occupancy, latency histograms), each a plain-JSON payload
  with a ``meta`` header describing how to read it;
* ``provenance`` — where the numbers came from: the config content hash the
  orchestrator keys on, the record schema version, engine cycle/event
  counters and wall-clock time.

``RunRecord.from_dict`` transparently migrates v1 payloads (a bare
``SimulationResult`` dict) so stores written by earlier code load without
re-running a single simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from .metrics import SimulationResult

#: current record schema version (v1 = bare SimulationResult dicts).
RECORD_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class JobFailure:
    """Typed terminal failure of one job (crash-retry exhaustion, timeout).

    Stored in the result store as a ``{"failure": ..., "meta": ...}`` entry
    under the job's store key, so a completed sweep records *why* a point is
    missing instead of silently omitting it.  Failure entries are invisible
    to the caching reads (``ResultStore.get_record_any`` treats them as
    misses, so a later sweep re-attempts the job) and are surfaced by
    ``inspect``.

    Lives here — beside :class:`RunRecord`, the other store payload type —
    so the storage layer (:mod:`repro.store`) never has to import from the
    orchestration layer that *produces* failures.
    """

    #: machine-readable category: ``"timeout"`` or ``"worker-crash"``.
    reason: str
    #: human-readable elaboration (retry counts, timeout seconds, ...).
    detail: str = ""
    #: crash-retries spent on the job's chunk before giving up.
    retries: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {"reason": self.reason, "detail": self.detail, "retries": self.retries}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobFailure":
        return cls(
            reason=str(payload.get("reason", "unknown")),
            detail=str(payload.get("detail", "")),
            retries=int(payload.get("retries", 0)),
        )


@dataclass
class RunRecord:
    """One simulation run: summary stats, telemetry channels, provenance."""

    summary: SimulationResult
    #: named telemetry channels: ``name -> {"meta": {...}, "data": ...}``.
    channels: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: per-measurement-window summaries: ``[{"label": ..., "summary": {...}}]``
    #: (non-empty only for multi-window sessions; ``summary`` is window 0).
    windows: List[Dict[str, Any]] = field(default_factory=list)
    #: config hash, engine counters, wall time, probe names, migration marks.
    provenance: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = RECORD_SCHEMA_VERSION

    # -- accessors ------------------------------------------------------------
    def channel(self, name: str) -> Optional[Dict[str, Any]]:
        """Payload of one telemetry channel (``{"meta": ..., "data": ...}``)."""
        return self.channels.get(name)

    def channel_names(self) -> List[str]:
        return sorted(self.channels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        channels = ",".join(self.channel_names()) or "-"
        return f"RunRecord(v{self.schema_version} {self.summary} channels=[{channels}])"

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "summary": self.summary.to_dict(),
            "channels": self.channels,
            "windows": self.windows,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Parse a record payload, migrating v1 (bare result) dicts."""
        if "schema_version" not in data:
            # v1 payloads are bare SimulationResult dicts.
            return cls.migrate_v1(data)
        version = data["schema_version"]
        if version != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunRecord schema version {version!r} "
                f"(this code reads v1 and v{RECORD_SCHEMA_VERSION})"
            )
        return cls(
            summary=SimulationResult.from_dict(data["summary"]),
            channels=dict(data.get("channels", {})),
            windows=list(data.get("windows", [])),
            provenance=dict(data.get("provenance", {})),
            schema_version=version,
        )

    @classmethod
    def migrate_v1(cls, result_dict: Dict[str, Any], meta: Optional[Dict[str, Any]] = None) -> "RunRecord":
        """Wrap a v1 flat ``SimulationResult`` dict into a v2 record.

        No simulation is re-run: the summary is adopted verbatim, channels
        stay empty (v1 never captured telemetry) and the migration is marked
        in the provenance.
        """
        provenance: Dict[str, Any] = {"migrated_from": 1}
        if meta:
            provenance["v1_meta"] = dict(meta)
        return cls(
            summary=SimulationResult.from_dict(result_dict),
            provenance=provenance,
        )

    @classmethod
    def from_summary(cls, summary: SimulationResult, **provenance: Any) -> "RunRecord":
        """Record with no telemetry (e.g. probe-less orchestrator jobs)."""
        return cls(summary=summary, provenance=dict(provenance))

    # -- adaptive-sweep extrapolation -----------------------------------------
    @property
    def is_extrapolated(self) -> bool:
        """True when this record was synthesized, not simulated."""
        return bool(self.provenance.get("extrapolated"))

    @classmethod
    def extrapolate(
        cls,
        source: "RunRecord",
        offered_load: float,
        extra_provenance: Optional[Dict[str, Any]] = None,
    ) -> "RunRecord":
        """Synthesize a saturated point's record from the last simulated one.

        Beyond the saturation knee, accepted load and latency plateau at the
        knee's values (additional offered load is rejected at injection), so
        the adaptive sweep scheduler records higher loads as copies of the
        last simulated saturated point, re-labelled with the target offered
        load and flagged — in the summary's ``extra`` *and* the record
        provenance — as extrapolated rather than simulated.  Telemetry
        channels are never copied: they describe the source run only.
        """
        summary = replace(
            source.summary,
            offered_load=offered_load,
            extra={
                **source.summary.extra,
                "extrapolated": True,
                "extrapolated_from_load": source.summary.offered_load,
            },
        )
        provenance = {
            "schema_version": source.schema_version,
            "extrapolated": True,
            "extrapolated_from_load": source.summary.offered_load,
            "source_config_key": source.provenance.get("config_key"),
        }
        provenance.update(extra_provenance or {})
        return cls(summary=summary, provenance=provenance)
