"""Append-only journaled store backend (write-ahead log + compaction).

The journal is a single file of checksummed, length-framed JSONL entries::

    J1 <length> <crc32:08x> <payload-json>\\n

``length`` is the byte length of the payload, the CRC covers exactly those
bytes, and payloads are compact sorted-key JSON (which can never contain a
raw newline, so the file stays line-scannable).  The first frame is a
header (``{"op": "header", ...}``) carrying the journal/store versions and
the lifetime compaction count; every other frame is one ``record`` or
``failure`` op keyed by config hash, with last-write-wins replay semantics.

Durability and concurrency contract:

* **one fsynced append per flush** — a flush frames only the keys written
  since the previous flush and appends them with a single ``write`` +
  ``fsync``, so persisting a sweep's next results is O(new records), never
  O(store);
* **torn-write recovery** — opening (and absorbing, below) scans frames and
  *truncates* an invalid tail instead of raising: a SIGKILL/power loss at
  any byte offset costs at most the half-written final entry, and every
  complete record before it is salvaged (logged, counted in
  :attr:`torn_salvages`);
* **advisory locking** — every critical section (recovery, append,
  compaction) runs under the store's :class:`StoreLock`, so any number of
  orchestrator processes can write one journal: appends interleave instead
  of clobbering.  Because appends happen only under the lock and are
  fsynced before release, a torn tail can only belong to a *dead* writer —
  truncating it under the lock never destroys live data;
* **absorption** — before appending, a flush reads every frame a peer
  appended since our last offset and merges it into memory (our pending
  writes win ties; tied keys are identical by construction — records are
  keyed by config content hash).  :meth:`refresh_from_disk` exposes the
  same absorption to the orchestrator, which calls it before dispatch so a
  second sweep resumes from a peer's partial results;
* **compaction** — when the journal accumulates enough superseded ops (or
  bytes), it is rewritten as a sorted snapshot: header + one frame per live
  key in key order, built in a tmp file, fsynced, ``os.replace``d over the
  journal, directory fsynced.  A crash at any point leaves either the old
  journal or the complete new one — never a mix.  Peers detect the swap via
  the header's compaction counter (or a shrunken file) and resynchronize
  from offset zero.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from typing import Any, Dict, List, Optional, Tuple

from .base import (
    FLUSH_INTERVAL_SECONDS,
    JOURNAL_MAGIC,
    STORE_VERSION,
    ResultStore,
    detect_format,
)
from .errors import StoreError
from .json_store import fsync_directory, read_json_store
from .locking import DEFAULT_LOCK_TIMEOUT, StoreLock

__all__ = ["JournalStore", "frame_entry", "parse_frame_line", "scan_frames"]

logger = logging.getLogger("repro.store")

#: on-disk journal framing version (independent of the record schema).
JOURNAL_VERSION = 1

#: compaction trigger defaults: at least this many ops on file *and* at
#: least this fraction of them superseded (or this many bytes with any
#: dead ops at all).  Small enough to matter for long-lived shared stores,
#: large enough that paper-scale sweeps never compact mid-run by surprise.
DEFAULT_COMPACT_MIN_OPS = 4096
DEFAULT_COMPACT_MIN_DEAD_FRACTION = 0.5
DEFAULT_COMPACT_MIN_BYTES = 64 << 20

#: crash-injection seam for the crash-safety tests: set
#: ``REPRO_TEST_STORE_CRASH`` to one of ``append-partial`` /
#: ``compact-before-replace`` / ``compact-after-replace`` to hard-exit the
#: process at that point (mirrors the orchestrator's REPRO_TEST_CRASH_KEY).
_CRASH_SEAM_ENV = "REPRO_TEST_STORE_CRASH"


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def frame_entry(payload: Dict[str, Any]) -> bytes:
    """Serialize one journal entry as a checksummed, length-framed line."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    head = f"{len(body)} {zlib.crc32(body):08x} ".encode("ascii")
    return JOURNAL_MAGIC + head + body + b"\n"


def parse_frame_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one frame line (without its newline); None if invalid/torn."""
    if not line.startswith(JOURNAL_MAGIC):
        return None
    rest = line[len(JOURNAL_MAGIC):]
    space1 = rest.find(b" ")
    space2 = rest.find(b" ", space1 + 1)
    if space1 <= 0 or space2 <= space1:
        return None
    try:
        length = int(rest[:space1])
        crc = int(rest[space1 + 1:space2], 16)
    except ValueError:
        return None
    if space2 - space1 != 9:  # crc field is exactly 8 hex digits
        return None
    body = rest[space2 + 1:]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def scan_frames(data: bytes, start: int = 0) -> Tuple[List[Dict[str, Any]], int]:
    """Parse consecutive valid frames from ``data[start:]``.

    Returns ``(payloads, end)`` where ``end`` is the offset one past the
    last *valid* frame.  Scanning stops at the first torn or corrupt line —
    the write-ahead prefix rule: everything before ``end`` is trustworthy,
    everything after is not (and callers truncate it).
    """
    payloads: List[Dict[str, Any]] = []
    pos = start
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break  # incomplete final line (torn append)
        payload = parse_frame_line(data[pos:newline])
        if payload is None:
            break  # corrupt frame: treat as end of journal
        payloads.append(payload)
        pos = newline + 1
    return payloads, pos


def _crash_seam(point: str) -> None:
    if os.environ.get(_CRASH_SEAM_ENV) == point:  # pragma: no cover - test seam
        os._exit(17)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class JournalStore(ResultStore):
    """Journaled result store (see module docstring for the full contract)."""

    FORMAT = "journal"

    def __init__(
        self,
        path: str,
        refresh: bool = False,
        flush_interval: float = FLUSH_INTERVAL_SECONDS,
        strict: bool = False,
        format: str = "auto",  # noqa: A002 - accepted for facade dispatch
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
        compact_min_ops: int = DEFAULT_COMPACT_MIN_OPS,
        compact_min_dead_fraction: float = DEFAULT_COMPACT_MIN_DEAD_FRACTION,
        compact_min_bytes: int = DEFAULT_COMPACT_MIN_BYTES,
        auto_compact: bool = True,
    ) -> None:
        super().__init__(
            path, refresh=refresh, flush_interval=flush_interval, strict=strict
        )
        self._lock = StoreLock(self.path, timeout=lock_timeout)
        #: keys written since the last flush, in write order (append queue).
        self._pending: Dict[str, None] = {}
        #: keys known to have at least one frame on file (supersede stats).
        self._file_keys: Dict[str, None] = {}
        #: byte offset up to which we have replayed/absorbed the file.
        self._read_offset = 0
        self._compact_min_ops = int(compact_min_ops)
        self._compact_min_dead_fraction = float(compact_min_dead_fraction)
        self._compact_min_bytes = int(compact_min_bytes)
        self._auto_compact = bool(auto_compact)
        #: non-header ops currently replayed from the file.
        self.journal_ops = 0
        #: ops observed to be overwritten by a later op (cumulative).
        self.superseded = 0
        #: torn-tail recoveries performed (open + absorb), and bytes dropped.
        self.torn_salvages = 0
        self.torn_bytes_dropped = 0
        #: lifetime compaction count (from the journal header).
        self.compactions = 0
        #: records/failures absorbed from other writers of this journal.
        self.absorbed_records = 0
        self._open_journal(strict)

    # -- open / recovery -----------------------------------------------------

    def _open_journal(self, strict: bool) -> None:
        existing = detect_format(self.path)
        if existing is None:
            if strict:
                raise StoreError(f"store not found: {self.path}")
            return  # created on first flush
        if existing == "empty":
            return
        if existing == "json":
            self._migrate_json(strict)
            return
        if existing == "unknown":
            if strict:
                raise StoreError(
                    f"store {self.path}: unrecognized format "
                    "(neither JSON nor journal)"
                )
            return  # lenient: fresh in memory; first flush rewrites the file
        with self._lock:
            self._recover_locked()

    def _recover_locked(self) -> None:
        with open(self.path, "rb") as handle:
            data = handle.read()
        end = self._apply_frames(data, absorb=False)
        if end < len(data):
            self._truncate_torn(end, len(data) - end)
        self._read_offset = end

    def _migrate_json(self, strict: bool) -> None:
        """Adopt an existing monolithic JSON store, rewriting it as a journal.

        Strict parsing on purpose even for lenient opens: migration replaces
        the file, and a file we could not fully read must never be replaced
        by an empty journal.
        """
        entries, migrated = read_json_store(self.path, strict=True)
        self._adopt_loaded(entries, migrated)
        with self._lock:
            self._rewrite_locked(bump_compaction=False)
        self._pending.clear()
        self._dirty = False
        logger.info(
            "migrated JSON store %s (%d entr%s%s) to journal format",
            self.path, len(entries), "y" if len(entries) == 1 else "ies",
            f", {migrated} from v1" if migrated else "",
        )

    def _apply_frames(self, data: bytes, absorb: bool) -> int:
        """Replay frames into memory; returns the end offset of valid data.

        ``absorb=True`` marks a mid-life merge of a *peer's* appends: our own
        un-flushed writes (``_pending``) win ties, and newly learned entries
        are counted in :attr:`absorbed_records`.
        """
        payloads, end = scan_frames(data)
        for payload in payloads:
            op = payload.get("op")
            if op == "header":
                version = payload.get("journal_version", 0)
                if not isinstance(version, int) or version > JOURNAL_VERSION:
                    raise StoreError(
                        f"store {self.path}: journal version {version!r} is "
                        f"newer than this code supports (v{JOURNAL_VERSION})"
                    )
                self.compactions = int(payload.get("compactions", 0))
                continue
            key = payload.get("key")
            if not isinstance(key, str):
                continue  # malformed but checksummed op: skip, don't truncate
            entry: Optional[Dict[str, Any]] = None
            if op == "record" and "record" in payload:
                entry = {
                    "record": payload["record"], "meta": payload.get("meta", {})
                }
            elif op == "failure" and "failure" in payload:
                entry = {
                    "failure": payload["failure"], "meta": payload.get("meta", {})
                }
            if entry is None:
                continue  # unknown op: forward-compatible skip
            self.journal_ops += 1
            if key in self._file_keys:
                self.superseded += 1
            self._file_keys[key] = None
            if absorb and key in self._pending:
                continue  # our pending write is newer than the peer's
            if absorb and key not in self._results:
                self.absorbed_records += 1
            self._results[key] = entry
        return end

    def _truncate_torn(self, end: int, torn_bytes: int) -> None:
        fd = os.open(self.path, os.O_RDWR)
        try:
            os.ftruncate(fd, end)
            os.fsync(fd)
        finally:
            os.close(fd)
        self.torn_salvages += 1
        self.torn_bytes_dropped += torn_bytes
        logger.warning(
            "journal %s: truncated torn tail (%d bytes dropped; %d complete "
            "entries salvaged)", self.path, torn_bytes, self.journal_ops,
        )

    # -- writes --------------------------------------------------------------

    def _note_write(self, key: str) -> None:
        super()._note_write(key)
        self._pending[key] = None

    def flush(self) -> None:
        if not self._dirty and not self._pending:
            return
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if detect_format(self.path) != "journal":
            # First flush of a fresh store (or the path was emptied/replaced
            # by foreign bytes): materialize the whole store as a journal.
            self._rewrite_locked(bump_compaction=False)
        else:
            self._absorb_locked()
            self._append_pending_locked()
        self._pending.clear()
        self._dirty = False
        if self._auto_compact and self._should_compact():
            self._rewrite_locked(bump_compaction=True)

    def _append_pending_locked(self) -> None:
        if not self._pending:
            return
        frames = b"".join(
            frame_entry(self._entry_payload(key)) for key in self._pending
        )
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        try:
            if os.environ.get(_CRASH_SEAM_ENV) == "append-partial":
                # pragma-free test seam: die after half a frame hits disk.
                os.write(fd, frames[: max(1, len(frames) // 2)])
                os.fsync(fd)
                os._exit(17)
            os.write(fd, frames)
            os.fsync(fd)
        finally:
            os.close(fd)
        for key in self._pending:
            self.journal_ops += 1
            if key in self._file_keys:
                self.superseded += 1
            self._file_keys[key] = None
        self._read_offset += len(frames)

    def _entry_payload(self, key: str) -> Dict[str, Any]:
        entry = self._results[key]
        if "record" in entry:
            return {
                "op": "record", "key": key,
                "record": entry["record"], "meta": entry.get("meta", {}),
            }
        return {
            "op": "failure", "key": key,
            "failure": entry.get("failure", {}), "meta": entry.get("meta", {}),
        }

    def _header_payload(self, compactions: int) -> Dict[str, Any]:
        return {
            "op": "header",
            "journal_version": JOURNAL_VERSION,
            "store_version": STORE_VERSION,
            "compactions": compactions,
        }

    # -- absorption (shared-writer merges) -------------------------------------

    def refresh_from_disk(self) -> int:
        """Absorb frames other writers appended; returns new records learned."""
        if detect_format(self.path) != "journal":
            return 0
        before = self.absorbed_records
        with self._lock:
            self._absorb_locked()
        return self.absorbed_records - before

    def _absorb_locked(self) -> None:
        try:
            size = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - racing deletion
            return
        header = self._read_header()
        if header is None or (
            int(header.get("compactions", 0)) != self.compactions
            or size < self._read_offset
        ):
            # A peer compacted (or wholesale-rewrote) the journal: our byte
            # offset refers to the previous file generation.  Resync fully.
            self._resync_locked()
            return
        if size == self._read_offset:
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._read_offset)
            data = handle.read()
        end = self._apply_frames(data, absorb=True)
        if end < len(data):
            # Appends are fsynced under the lock, so a torn tail here can
            # only belong to a writer that died mid-append: safe to drop.
            self._truncate_torn(self._read_offset + end, len(data) - end)
        self._read_offset += end

    def _resync_locked(self) -> None:
        stash = self._results
        known_before = len(stash)
        self._results = {}
        self._file_keys = {}
        self.journal_ops = 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        end = self._apply_frames(data, absorb=False)
        if end < len(data):
            self._truncate_torn(end, len(data) - end)
        self._read_offset = end
        foreign = sum(1 for key in self._results if key not in stash)
        self.absorbed_records += foreign
        for key, entry in stash.items():
            if key in self._pending:
                self._results[key] = entry  # ours, newer than anything replayed
            elif key not in self._results:
                # We knew this entry but the new file generation lost it
                # (a peer rewrote from partial knowledge): re-own it so the
                # next append restores durability — no record goes missing.
                self._results[key] = entry
                self._pending[key] = None
                self._dirty = True
        if known_before:
            logger.info(
                "journal %s: resynchronized after peer compaction "
                "(%d entries on file, %d newly absorbed)",
                self.path, len(self._results), foreign,
            )

    def _read_header(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path, "rb") as handle:
                line = handle.readline(4096)
        except OSError:  # pragma: no cover - racing deletion
            return None
        if not line.endswith(b"\n"):
            return None
        payload = parse_frame_line(line[:-1])
        if payload is None or payload.get("op") != "header":
            return None
        return payload

    # -- compaction ------------------------------------------------------------

    def compact(self) -> None:
        """Force a compaction now (absorbing peers' appends first)."""
        with self._lock:
            if detect_format(self.path) == "journal":
                self._absorb_locked()
                self._append_pending_locked()
                self._pending.clear()
                self._dirty = False
            self._rewrite_locked(bump_compaction=True)

    def _should_compact(self) -> bool:
        live = len(self._results)
        ops = self.journal_ops
        dead = max(0, ops - live)
        if ops >= self._compact_min_ops and ops > 0:
            if dead / ops >= self._compact_min_dead_fraction:
                return True
        return self._read_offset >= self._compact_min_bytes and dead > 0

    def _rewrite_locked(self, bump_compaction: bool) -> None:
        """Write the whole store as a fresh sorted journal (tmp + rename).

        Used by compaction (``bump_compaction=True`` — peers detect the new
        generation via the header counter), by first-flush materialization,
        and by JSON migration.  Crash-safe: the snapshot is complete and
        fsynced before the rename, and the directory is fsynced after, so a
        crash leaves either the old file or the whole new one.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._clean_stale_tmps(directory)
        compactions = self.compactions + (1 if bump_compaction else 0)
        tmp_path = os.path.join(
            directory, os.path.basename(self.path) + f".compact.{os.getpid()}.tmp"
        )
        with open(tmp_path, "wb") as handle:
            handle.write(frame_entry(self._header_payload(compactions)))
            for key in sorted(self._results):
                handle.write(frame_entry(self._entry_payload(key)))
            handle.flush()
            os.fsync(handle.fileno())
        _crash_seam("compact-before-replace")
        os.replace(tmp_path, self.path)
        _crash_seam("compact-after-replace")
        fsync_directory(directory)
        self.compactions = compactions
        self.journal_ops = len(self._results)
        self._file_keys = {key: None for key in self._results}
        self._read_offset = os.path.getsize(self.path)

    def _clean_stale_tmps(self, directory: str) -> None:
        """Remove tmp snapshots left by compactions that died pre-rename."""
        prefix = os.path.basename(self.path) + ".compact."
        try:
            names = sorted(os.listdir(directory))
        except OSError:  # pragma: no cover - racing deletion
            return
        for name in names:
            if name.startswith(prefix) and name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:  # pragma: no cover - racing cleanup
                    pass

    # -- stats -----------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            journal_ops=self.journal_ops,
            superseded=self.superseded,
            torn_salvages=self.torn_salvages,
            torn_bytes_dropped=self.torn_bytes_dropped,
            compactions=self.compactions,
            absorbed=self.absorbed_records,
            migrated_v1=self.migrated,
        )
        return info
