"""Legacy monolithic JSON store backend.

One file, rewritten atomically (tmp + rename) on every flush — simple and
human-readable, but O(store) per flush and structurally single-writer.
This PR closes its two durability holes without changing the byte format:

* **fsync before and after the rename** (the previously missing half of the
  tmp+rename idiom): a power loss or SIGKILL straddling the rename can no
  longer publish an empty/partial store or resurrect the stale one —
  ``os.replace`` is only atomic *in the namespace*; the data and directory
  entries still need forcing to disk;
* **concurrent-writer detection**: on its *first write* the store acquires
  the advisory :class:`~repro.store.locking.StoreLock` and holds it for its
  lifetime as a writer-presence marker.  A second writer gets a
  :class:`ConcurrentWriterWarning` (or a :class:`StoreError` under
  ``strict=True``) instead of the old silent last-writer-wins clobbering.
  Read-only opens (``inspect``) never touch the lock, so inspecting a store
  mid-sweep keeps working.  For actually *sharing* a store across writers,
  use the journal format.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Any, Dict, Tuple

from .base import (
    FLUSH_INTERVAL_SECONDS,
    STORE_VERSION,
    ResultStore,
    migrate_v1_entries,
)
from .errors import ConcurrentWriterWarning, StoreError
from .locking import DEFAULT_LOCK_TIMEOUT, StoreLock

__all__ = ["JsonStore", "fsync_directory", "read_json_store"]


def fsync_directory(directory: str) -> None:
    """Force a directory's entry table to disk (after create/rename in it).

    Some filesystems/platforms reject ``fsync`` on directory descriptors;
    that is a durability downgrade, not an error — the rename itself is
    still atomic.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(dir_fd)


def read_json_store(
    path: str, strict: bool = False
) -> Tuple[Dict[str, Dict[str, Any]], int]:
    """Parse a monolithic JSON store file into v2 entries.

    Returns ``(entries, migrated_v1_count)``.  Lenient mode treats damage as
    an empty store (a damaged cache is no cache; results are recomputable by
    definition); ``strict`` raises a typed :class:`StoreError` naming what is
    wrong instead — read-only consumers like ``inspect`` want a loud error,
    and the journal migration path must never destroy a file it could not
    actually read.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        if strict:
            raise StoreError(f"store is not readable JSON: {path}: {exc}") from exc
        return {}, 0
    if not isinstance(payload, dict):
        if strict:
            raise StoreError(
                f"store {path}: top level must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        return {}, 0
    version = payload.get("version")
    results = payload.get("results", {})
    if strict and not isinstance(results, dict):
        raise StoreError(
            f"store {path}: 'results' must be an object, "
            f"got {type(results).__name__}"
        )
    if not isinstance(results, dict):
        return {}, 0
    if version == STORE_VERSION:
        return results, 0
    if version == 1:
        return migrate_v1_entries(results)
    if strict:
        raise StoreError(
            f"store {path}: unsupported version {version!r} "
            f"(expected 1 or {STORE_VERSION})"
        )
    return {}, 0


class JsonStore(ResultStore):
    """Monolithic JSON store (see module docstring for durability changes)."""

    FORMAT = "json"

    def __init__(
        self,
        path: str,
        refresh: bool = False,
        flush_interval: float = FLUSH_INTERVAL_SECONDS,
        strict: bool = False,
        format: str = "auto",  # noqa: A002 - accepted for facade dispatch
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> None:
        super().__init__(
            path, refresh=refresh, flush_interval=flush_interval, strict=strict
        )
        self._lock = StoreLock(self.path, timeout=lock_timeout)
        self._lock_held = False
        self._lock_probed = False
        if os.path.exists(self.path):
            entries, migrated = read_json_store(self.path, strict=strict)
            self._adopt_loaded(entries, migrated)
        elif strict:
            raise StoreError(f"store not found: {self.path}")

    def _ensure_writer_lock(self) -> None:
        """Acquire the writer-presence lock once, on first write/flush.

        A contended probe means another live process is (or intends to be)
        writing this monolithic file: warn — or raise under ``strict`` —
        but in lenient mode keep going, which is exactly the pre-lock
        last-writer-wins behavior, now *detected* instead of silent.
        """
        if self._lock_probed:
            return
        self._lock_probed = True
        self._lock_held = self._lock.try_acquire()
        if not self._lock_held:
            message = (
                f"result store {self.path} is being written by another live "
                f"writer ({self._lock.holder_description()}); legacy JSON "
                "stores are rewritten whole on flush with last-writer-wins "
                "semantics, so concurrent writers WILL lose results — share "
                "the path through the journal format instead "
                "(--store-format journal)"
            )
            if self.strict:
                raise StoreError(message)
            warnings.warn(message, ConcurrentWriterWarning, stacklevel=4)

    def _note_write(self, key: str) -> None:
        self._ensure_writer_lock()
        super()._note_write(key)

    def flush(self) -> None:
        if not self._dirty:
            return
        self._ensure_writer_lock()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = {"version": STORE_VERSION, "results": self._results}
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                # The missing half of the tmp+rename idiom: the rename only
                # publishes durable bytes if the data hit disk first.
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            fsync_directory(directory)
        finally:
            if os.path.exists(tmp_path):  # pragma: no cover - error path
                os.unlink(tmp_path)
        self._dirty = False
        self._lock.heartbeat()

    def close(self) -> None:
        super().close()
        if self._lock_held:
            self._lock.release()
            self._lock_held = False

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["migrated_v1"] = self.migrated
        info["lock_held"] = self._lock_held
        return info
