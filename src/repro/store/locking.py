"""Advisory inter-process locking for result stores.

One :class:`StoreLock` guards one store path via a ``<path>.lock`` sidecar
file.  The primary mechanism is ``fcntl.flock`` — advisory, kernel-owned,
and automatically released when the holding process dies, so SIGKILLed
sweeps can never leave the store permanently locked.  After acquiring, the
holder writes PID/host/heartbeat metadata into the lock file; that metadata
is diagnostic under flock (error messages name the live holder) and
*load-bearing* in fallback mode: on filesystems where ``flock`` is
unsupported (some network mounts), the lock degrades to an exclusive-create
protocol where lock-file existence is the lock, and stale locks — holder
PID dead, or heartbeat older than ``stale_after`` — are taken over instead
of blocking forever.

Two usage patterns in this package:

* :class:`~repro.store.journal.JournalStore` acquires transiently around
  each critical section (open/recovery, append+fsync, compaction), so
  multiple writer processes interleave on one journal;
* :class:`~repro.store.json_store.JsonStore` acquires the lock on its
  first write and holds it for the store's lifetime as a *writer-presence
  marker* — the legacy monolithic format cannot support concurrent
  writers, so a contended probe is reported instead of silently losing
  data (read-only opens never touch the lock).
"""

from __future__ import annotations

import errno
import json
import os
import time
import weakref
from typing import Any, Dict, Optional

from .errors import StoreLockTimeout

try:  # pragma: no cover - import succeeds on every POSIX platform we run on
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FCNTL = False

__all__ = ["StoreLock", "DEFAULT_LOCK_TIMEOUT"]

#: default seconds to wait for a contended lock before raising
#: :class:`StoreLockTimeout`.  Journal critical sections are short (one
#: append+fsync, or one compaction of a store that fits in memory), so a
#: healthy writer never holds the lock anywhere near this long.
DEFAULT_LOCK_TIMEOUT = 30.0

#: fallback-mode staleness horizon: a lock whose heartbeat is older than
#: this *and* whose PID cannot be confirmed alive is taken over.
DEFAULT_STALE_AFTER = 60.0


def _pid_alive(pid: int) -> Optional[bool]:
    """True/False when this host can tell, None when it cannot (other host)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return None
    return True


class StoreLock:
    """Advisory lock on a store path (``flock`` primary, O_EXCL fallback)."""

    def __init__(
        self,
        store_path: str,
        timeout: float = DEFAULT_LOCK_TIMEOUT,
        poll_interval: float = 0.05,
        stale_after: float = DEFAULT_STALE_AFTER,
        use_flock: bool = True,
    ) -> None:
        self.lock_path = str(store_path) + ".lock"
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.stale_after = float(stale_after)
        self._use_flock = bool(use_flock) and _HAVE_FCNTL
        self._fd: Optional[int] = None
        self._finalizer: Optional[weakref.finalize] = None
        #: diagnostic counter: fallback-mode stale locks broken by this lock.
        self.takeovers = 0

    # -- state ---------------------------------------------------------------

    @property
    def held(self) -> bool:
        return self._fd is not None

    def holder(self) -> Optional[Dict[str, Any]]:
        """Metadata of the current holder, or None if unreadable/absent."""
        try:
            with open(self.lock_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def holder_description(self) -> str:
        meta = self.holder()
        if not meta:
            return "holder metadata unavailable"
        age = time.time() - float(meta.get("heartbeat_at", 0.0))
        return (
            f"pid {meta.get('pid', '?')} on {meta.get('host', '?')}, "
            f"heartbeat {age:.1f}s ago"
        )

    # -- acquisition ---------------------------------------------------------

    def try_acquire(self) -> bool:
        """Acquire without blocking; False when a live holder has the lock."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.lock_path} already held by this object")
        self._ensure_parent_dir()
        if self._use_flock:
            fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                os.close(fd)
                if exc.errno in (errno.EACCES, errno.EAGAIN):
                    return False
                # flock unsupported on this filesystem: degrade permanently
                # to the exclusive-create protocol for this lock object.
                self._use_flock = False
                return self._try_acquire_fallback()
            self._adopt(fd)
            return True
        return self._try_acquire_fallback()

    def _ensure_parent_dir(self) -> None:
        """Locks are taken before the store file exists (fresh sweeps)."""
        directory = os.path.dirname(os.path.abspath(self.lock_path))
        os.makedirs(directory, exist_ok=True)

    def _try_acquire_fallback(self) -> bool:
        for attempt in (0, 1):
            try:
                fd = os.open(
                    self.lock_path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if attempt or not self._is_stale():
                    return False
                # Stale holder: PID dead (or unknowable) and heartbeat old.
                # Break the lock and retry the exclusive create exactly once
                # (a racing taker may win the recreate — that is fine).
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    return False
                self.takeovers += 1
                continue
            self._adopt(fd)
            return True
        return False  # pragma: no cover - loop always returns

    def _is_stale(self) -> bool:
        meta = self.holder()
        if meta is None:
            # Unreadable metadata with an existing lock file: give the
            # (possibly mid-write) holder the benefit of file mtime.
            try:
                mtime = os.path.getmtime(self.lock_path)
            except OSError:
                return False
            return time.time() - mtime > self.stale_after
        alive = _pid_alive(int(meta.get("pid", -1))) if (
            meta.get("host") == _hostname()
        ) else None
        if alive is True:
            return False
        heartbeat = float(meta.get("heartbeat_at", 0.0))
        stale_by_time = time.time() - heartbeat > self.stale_after
        # A locally-dead PID is stale immediately; a remote/unknown holder
        # must additionally miss its heartbeat window.
        return alive is False or stale_by_time

    def acquire(self, timeout: Optional[float] = None) -> None:
        """Block (polling) until acquired; :class:`StoreLockTimeout` on expiry."""
        deadline = time.monotonic() + (self.timeout if timeout is None else timeout)
        while True:
            if self.try_acquire():
                return
            if time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"could not acquire store lock {self.lock_path} "
                    f"within {self.timeout if timeout is None else timeout:g}s "
                    f"({self.holder_description()})"
                )
            time.sleep(self.poll_interval)

    def _adopt(self, fd: int) -> None:
        self._fd = fd
        self._finalizer = weakref.finalize(self, _close_quietly, fd)
        self._write_metadata()

    def _write_metadata(self) -> None:
        assert self._fd is not None
        now = time.time()
        payload = {
            "pid": os.getpid(),
            "host": _hostname(),
            "acquired_at": now,
            "heartbeat_at": now,
        }
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            os.ftruncate(self._fd, 0)
            os.lseek(self._fd, 0, os.SEEK_SET)
            os.write(self._fd, data)
        except OSError:  # pragma: no cover - metadata is best-effort
            pass

    def heartbeat(self) -> None:
        """Refresh holder metadata (keeps fallback-mode locks non-stale)."""
        if self._fd is not None:
            self._write_metadata()

    # -- release -------------------------------------------------------------

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._use_flock:
            # Never unlink a flock-mode lock file: a waiter already blocked
            # on this inode would otherwise "acquire" an unlinked file while
            # a third process locks a fresh one — two winners.
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - release is best-effort
                pass
        else:
            # Existence *is* the lock in fallback mode.
            try:
                os.unlink(self.lock_path)
            except OSError:  # pragma: no cover - already taken over
                pass
        _close_quietly(fd)

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


def _hostname() -> str:
    try:
        return os.uname().nodename
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX
        return "unknown-host"


def _close_quietly(fd: int) -> None:
    try:
        os.close(fd)
    except OSError:  # pragma: no cover - already closed
        pass
