"""Result-store facade: format detection and the shared in-memory core.

``ResultStore(path)`` is the single entry point every caller keeps using.
Constructing it dispatches — by sniffing the file's leading bytes, or by an
explicit ``format=`` request — to one of two concrete backends:

* :class:`~repro.store.json_store.JsonStore` — the legacy monolithic JSON
  file, rewritten whole on flush (now fsynced, and with concurrent writers
  *detected* instead of silently last-writer-wins);
* :class:`~repro.store.journal.JournalStore` — an append-only write-ahead
  journal of checksummed, length-framed JSONL entries with advisory
  locking, torn-write recovery and background compaction, safe for
  concurrent writer processes sharing one path.

Everything above the file format — the key→record dictionary, hit/miss
accounting, v1 migration bookkeeping, failure entries, the atexit
checkpoint — lives here so both backends behave identically to consumers
(``run_jobs``, ``inspect``, the figure wrappers).
"""

from __future__ import annotations

import atexit
import weakref
from typing import Any, ClassVar, Dict, Iterator, Optional, Tuple

from ..record import JobFailure, RunRecord
from ..metrics import SimulationResult
from .errors import StoreError

__all__ = [
    "FLUSH_INTERVAL_SECONDS",
    "JOURNAL_MAGIC",
    "STORE_FORMATS",
    "STORE_VERSION",
    "ResultStore",
    "detect_format",
    "migrate_v1_entries",
]

#: store format version; bump when the result schema changes.
#: v1 stored flat ``SimulationResult`` dicts; v2 stores versioned
#: :class:`~repro.record.RunRecord` payloads (summary + telemetry channels +
#: provenance).  v1 files are migrated in memory on open — no re-simulation.
STORE_VERSION = 2

#: default minimum seconds between mid-sweep store flushes (resumability vs
#: I/O); per-store override via ``ResultStore(flush_interval=...)``.
FLUSH_INTERVAL_SECONDS = 5.0

#: every journal frame (and therefore every journal file) starts with this.
JOURNAL_MAGIC = b"J1 "

#: accepted values of the ``format=`` parameter / ``--store-format`` flag.
STORE_FORMATS = ("auto", "json", "journal")


def detect_format(path: str) -> Optional[str]:
    """Sniff the on-disk format of ``path``.

    Returns ``"journal"`` / ``"json"`` for recognized content, ``"empty"``
    for an existing zero-byte file, ``"unknown"`` for unrecognized bytes,
    and ``None`` when the file does not exist (or cannot be read).
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(JOURNAL_MAGIC))
    except OSError:
        return None
    if head.startswith(JOURNAL_MAGIC):
        return "journal"
    if head[:1] in (b"{", b"["):
        return "json"
    if head == b"":
        return "empty"
    return "unknown"


def _resolve_format(path: str, requested: str) -> str:
    """Concrete backend for ``path`` given the requested format.

    ``auto`` preserves whatever is on disk (new/empty/unrecognized files get
    the legacy-compatible JSON default, so library callers creating fresh
    stores keep byte-identical behavior); ``journal`` adopts any existing
    JSON store by migrating it on open; ``json`` on a journal file is a
    hard error — appending monolithic JSON over a journal would corrupt it.
    """
    if requested not in STORE_FORMATS:
        raise ValueError(
            f"store format must be one of {STORE_FORMATS}, got {requested!r}"
        )
    existing = detect_format(path)
    if requested == "json":
        if existing == "journal":
            raise StoreError(
                f"store {path} is a journal store; open it with "
                "format='journal' (or 'auto') instead of 'json'"
            )
        return "json"
    if requested == "journal":
        return "journal"
    return existing if existing in ("json", "journal") else "json"


class ResultStore:
    """Store of run records keyed by config hash (format-dispatching facade).

    ``ResultStore(path)`` returns a :class:`JsonStore` or
    :class:`JournalStore` according to the file's content (``format="auto"``)
    or an explicit ``format=`` request.  ``refresh=True`` turns reads into
    misses while still persisting new results — the CLI's ``--force``.
    ``flush_interval`` tunes how often a running sweep checkpoints
    mid-flight; the first write also arms a flush at interpreter exit, so
    killed sweeps keep their latest completed points while read-only opens
    (e.g. ``inspect``) never rewrite the file.

    Entries are versioned :class:`~repro.record.RunRecord` payloads (store
    format v2).  Opening a v1 file — flat ``SimulationResult`` dicts as
    written by earlier code — migrates every entry in memory (marking the
    store dirty so the next flush persists v2) without re-running a single
    simulation.
    """

    #: concrete backends override with "json" / "journal".
    FORMAT: ClassVar[str] = "auto"

    def __new__(cls, path: str, *args: Any, **kwargs: Any) -> "ResultStore":
        if cls is not ResultStore:
            return object.__new__(cls)
        resolved = _resolve_format(str(path), str(kwargs.get("format", "auto")))
        from .json_store import JsonStore
        from .journal import JournalStore

        return object.__new__(JournalStore if resolved == "journal" else JsonStore)

    def __init__(
        self,
        path: str,
        refresh: bool = False,
        flush_interval: float = FLUSH_INTERVAL_SECONDS,
        strict: bool = False,
        format: str = "auto",  # noqa: A002 - established CLI vocabulary
    ) -> None:
        self.path = str(path)
        self.refresh = refresh
        self.flush_interval = float(flush_interval)
        self.strict = bool(strict)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: config hash -> {"record": <RunRecord dict>, "meta": {...}}
        #: (or {"failure": ..., "meta": ...} for typed terminal failures).
        self._results: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        #: number of v1 entries migrated at open time (diagnostics).
        self.migrated = 0
        self._atexit_registered = False

    # -- shared read/write surface -------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def get(self, key: str) -> Optional[SimulationResult]:
        """Stored summary for ``key`` (None on miss) — compatibility view."""
        record = self.get_record(key)
        return None if record is None else record.summary

    def get_record(self, key: str) -> Optional[RunRecord]:
        """Full stored record (summary + telemetry channels + provenance)."""
        return self.get_record_any(key)

    def get_record_any(self, *keys: str) -> Optional[RunRecord]:
        """First stored record among ``keys``.

        One *logical* lookup: exactly one hit or one miss is counted no
        matter how many alternative keys are probed (the adaptive scheduler
        checks a point's plain config key and its extrapolated alias).
        ``refresh`` mode returns None without touching the counters, as the
        single-key read always did.
        """
        if self.refresh:
            return None
        for key in keys:
            entry = self._results.get(key)
            if entry is not None and "record" in entry:
                self.hits += 1
                return RunRecord.from_dict(entry["record"])
        # Failure entries (no "record" payload) count as misses on purpose:
        # a later sweep re-attempts the job instead of serving the failure.
        self.misses += 1
        return None

    def entries(self) -> Iterator[Tuple[str, RunRecord, Dict[str, object]]]:
        """Iterate ``(key, record, meta)`` without touching hit/miss counters.

        Failure entries are skipped — consumers of ``entries()`` expect
        result records; use :meth:`failures` for the failure ledger.
        """
        for key, entry in self._results.items():
            if "record" not in entry:
                continue
            yield key, RunRecord.from_dict(entry["record"]), entry.get("meta", {})

    def failures(self) -> Iterator[Tuple[str, JobFailure, Dict[str, object]]]:
        """Iterate stored ``(key, failure, meta)`` entries."""
        for key, entry in self._results.items():
            if "failure" in entry and "record" not in entry:
                yield key, JobFailure.from_dict(entry["failure"]), entry.get("meta", {})

    def put(
        self,
        key: str,
        result: SimulationResult,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Store a bare summary (wrapped into a channel-less record)."""
        self.put_record(key, RunRecord.from_summary(result), meta=meta)

    def put_record(
        self, key: str, record: RunRecord, meta: Optional[Dict[str, object]] = None
    ) -> None:
        self._results[key] = {"record": record.to_dict(), "meta": meta or {}}
        self._note_write(key)

    def put_failure(
        self, key: str, failure: JobFailure, meta: Optional[Dict[str, object]] = None
    ) -> None:
        """Record a terminal job failure under ``key`` (replaced by a real
        record if a later sweep succeeds on the same job)."""
        self._results[key] = {"failure": failure.to_dict(), "meta": meta or {}}
        self._note_write(key)

    def _note_write(self, key: str) -> None:
        """Bookkeeping common to every write (backends may extend)."""
        self.writes += 1
        self._dirty = True
        self._register_atexit_flush()

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Flush pending writes and release backend resources (locks)."""
        self.flush()

    def refresh_from_disk(self) -> int:
        """Absorb records other processes persisted since our last read.

        Returns how many foreign records were newly absorbed.  The legacy
        JSON backend cannot do this incrementally (the file is a monolith
        with no append semantics) and returns 0; the journal backend reads
        the shared journal's new tail, which is what lets a second sweep
        process resume from — and interleave with — another's partial
        results.
        """
        return 0

    def describe(self) -> Dict[str, object]:
        """Format/durability statistics for ``inspect --verbose``."""
        return {"format": self.FORMAT, "entries": len(self)}

    def _register_atexit_flush(self) -> None:
        """Arm a last-resort checkpoint on first write.

        Flushes dirty results when the interpreter exits (including an
        unhandled KeyboardInterrupt), via a weakref so the registration
        never keeps the store alive.  Armed only once the store has actually
        been *written to* — read-only opens (``inspect``, including ones
        that migrate v1 entries in memory) must never rewrite a file that
        another process may be appending to.
        """
        if self._atexit_registered:
            return
        self._atexit_registered = True
        self_ref = weakref.ref(self)

        def _flush_at_exit() -> None:  # pragma: no cover - exit path
            store = self_ref()
            if store is not None:
                try:
                    store.flush()
                except (OSError, StoreError):
                    pass

        atexit.register(_flush_at_exit)

    # -- v1 migration (shared by both backends) --------------------------------

    def _adopt_loaded(self, entries: Dict[str, Dict[str, Any]], migrated: int) -> None:
        """Install entries parsed from disk (see :func:`migrate_v1_entries`)."""
        self._results = entries
        self.migrated = migrated
        if migrated:
            self._dirty = True  # persist the upgraded format on next flush


def migrate_v1_entries(
    entries: Dict[str, Dict[str, Any]]
) -> Tuple[Dict[str, Dict[str, Any]], int]:
    """Wrap v1 ``{"result": ..., "meta": ...}`` entries into v2 records.

    Returns the upgraded entry dict plus how many entries were migrated; no
    simulation is re-run (summaries are adopted verbatim, see
    :meth:`RunRecord.migrate_v1`).
    """
    upgraded: Dict[str, Dict[str, Any]] = {}
    migrated = 0
    for key, entry in entries.items():
        try:
            record = RunRecord.migrate_v1(entry["result"], meta=entry.get("meta"))
        except (KeyError, TypeError):  # pragma: no cover - damaged entry
            continue
        upgraded[key] = {"record": record.to_dict(), "meta": entry.get("meta", {})}
        migrated += 1
    return upgraded, migrated
