"""Typed errors and warnings of the result-store layer."""

from __future__ import annotations

__all__ = ["StoreError", "StoreLockTimeout", "ConcurrentWriterWarning"]


class StoreError(RuntimeError):
    """A result store could not be opened or safely operated on.

    Raised by strict opens (``ResultStore(..., strict=True)`` — the
    ``inspect`` path) on missing/corrupt/wrong-format files, by any open
    when the requested format contradicts the on-disk one (asking for the
    legacy JSON format on a journal file would corrupt it), and by journal
    operations that cannot acquire the store lock within their timeout.
    The lenient sweep path keeps treating a damaged *cache* as no cache —
    results are recomputable by definition — but never silently crosses
    formats.
    """


class StoreLockTimeout(StoreError):
    """The advisory store lock stayed held past the acquisition timeout.

    With ``flock`` the kernel releases a dead holder's lock automatically,
    so a timeout means a *live* process held the lock through our whole
    wait — most likely a wedged compaction or a very slow writer.  The
    message names the holder (pid/host/heartbeat) read from the lock
    metadata when available.
    """


class ConcurrentWriterWarning(UserWarning):
    """Another live process holds the writer lock of a legacy JSON store.

    Monolithic JSON stores are rewritten whole on flush with last-writer-
    wins semantics: two concurrent writers silently drop each other's
    results.  This warning (a :class:`StoreError` under ``strict=True``)
    replaces that silence; the journal format (``--store-format journal``)
    supports concurrent writers safely.
    """
