"""Durable result storage for experiment sweeps.

Public surface:

* :class:`ResultStore` — the facade every caller constructs; dispatches to
  a concrete backend by sniffing the file (or an explicit ``format=``);
* :class:`JsonStore` — legacy monolithic JSON (fsynced tmp+rename,
  concurrent writers *detected*);
* :class:`JournalStore` — append-only checksummed journal with advisory
  locking, torn-write recovery and compaction (concurrent writers
  *supported*; the sweep CLI's default for new stores);
* :class:`StoreLock` — the advisory inter-process lock both backends use;
* the typed errors/warnings, format constants and detection helpers.
"""

from __future__ import annotations

from .base import (
    FLUSH_INTERVAL_SECONDS,
    JOURNAL_MAGIC,
    STORE_FORMATS,
    STORE_VERSION,
    ResultStore,
    detect_format,
    migrate_v1_entries,
)
from .errors import ConcurrentWriterWarning, StoreError, StoreLockTimeout
from .json_store import JsonStore, fsync_directory, read_json_store
from .journal import JOURNAL_VERSION, JournalStore, frame_entry, parse_frame_line, scan_frames
from .locking import DEFAULT_LOCK_TIMEOUT, DEFAULT_STALE_AFTER, StoreLock

__all__ = [
    "ConcurrentWriterWarning",
    "DEFAULT_LOCK_TIMEOUT",
    "DEFAULT_STALE_AFTER",
    "FLUSH_INTERVAL_SECONDS",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "JournalStore",
    "JsonStore",
    "ResultStore",
    "STORE_FORMATS",
    "STORE_VERSION",
    "StoreError",
    "StoreLock",
    "StoreLockTimeout",
    "detect_format",
    "frame_entry",
    "fsync_directory",
    "migrate_v1_entries",
    "parse_frame_line",
    "read_json_store",
    "scan_frames",
]
