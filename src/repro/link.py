"""Network links: fixed latency plus one-phit-per-cycle serialization.

A :class:`Link` is unidirectional.  The forward direction carries packets
(serialized at one phit per cycle, then ``latency`` cycles of flight time);
the reverse direction of the paired link carries credit returns, modelled as
latency-only messages (credits are tiny compared to packets).

Both directions participate in the engine's activity tracking: a packet
delivery lands in :meth:`Router.receive_network`, which re-activates the
downstream router, and a :class:`CreditChannel` invokes its ``on_activity``
hook after crediting the upstream tracker so the upstream router is stepped
again even if it had gone idle while waiting for credits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .core.link_types import LinkType
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class Link:
    """Unidirectional channel between an output port and an input port."""

    # At 10^5-endpoint scale a network holds hundreds of thousands of links;
    # slots drop the per-instance dict (~300 bytes each).
    __slots__ = (
        "engine", "latency", "link_type", "_deliver", "_name", "busy_until",
        "phits_transmitted", "probe_hook",
    )

    def __init__(
        self,
        engine: "Engine",
        latency: int,
        link_type: LinkType,
        deliver: Callable[[Packet, int, int], None],
        name: "str | tuple" = "",
    ) -> None:
        if latency < 1:
            raise ValueError("link latency must be >= 1 cycle")
        self.engine = engine
        self.latency = latency
        self.link_type = link_type
        #: callback ``deliver(packet, vc, now)`` at the downstream input port.
        self._deliver = deliver
        #: either the display string or a deferred (src, out_port, dst,
        #: in_port) tuple formatted on first read — building hundreds of
        #: thousands of f-strings up front is measurable at system scale.
        self._name = name
        #: cycle at which the tail of the last packet leaves the upstream side.
        self.busy_until = 0
        #: accounting for link-utilization statistics.
        self.phits_transmitted = 0
        #: probe dispatch ``hook(link, packet, vc, now)``; None (the default)
        #: keeps the no-probe transmit path free of any dispatch work.
        self.probe_hook = None

    @property
    def name(self) -> str:
        raw = self._name
        if type(raw) is tuple:
            raw = self._name = "%d:%d->%d:%d" % raw
        return raw

    def idle_at(self, now: int) -> bool:
        """Can a new packet start serializing onto the link at ``now``?"""
        return self.busy_until <= now

    def transmit(self, packet: Packet, vc: int, now: int) -> int:
        """Start transmitting ``packet`` towards VC ``vc`` of the downstream port.

        Returns the cycle at which the packet has fully left the upstream side
        (i.e. when its output-buffer space can be reclaimed).  The packet is
        delivered downstream once its last phit lands, ``latency`` cycles
        later (virtual cut-through at packet granularity).
        """
        if self.busy_until > now:
            raise RuntimeError(f"link {self.name or id(self)} busy until {self.busy_until}")
        tail_out = now + packet.size_phits
        self.busy_until = tail_out
        self.phits_transmitted += packet.size_phits
        if self.probe_hook is not None:
            self.probe_hook(self, packet, vc, now)
        arrival = tail_out + self.latency
        # The delivery arguments are fully known here, so the event is a
        # closure-free (fn, args) pair on the engine's near-term ring.
        self.engine.schedule_call(arrival, self._deliver, (packet, vc, arrival))
        return tail_out


class CreditChannel:
    """Reverse channel carrying credit returns to an upstream credit tracker."""

    __slots__ = ("engine", "latency", "_sink", "_deliver")

    def __init__(self, engine: "Engine", latency: int) -> None:
        if latency < 1:
            raise ValueError("credit latency must be >= 1 cycle")
        self.engine = engine
        self.latency = latency
        self._sink: Optional[Callable[[int, int, bool], None]] = None
        self._deliver: Optional[Callable[[int, int, bool], None]] = None

    def connect(
        self,
        sink: Callable[[int, int, bool], None],
        on_activity: Optional[Callable[[], None]] = None,
    ) -> None:
        """Attach the upstream callback ``sink(vc, phits, minimal)``.

        ``on_activity`` (typically the upstream router's ``wake``) is invoked
        after every credit return so the activity-tracked engine steps the
        upstream router again.
        """
        self._sink = sink
        if on_activity is None:
            self._deliver = sink
        else:
            def deliver(vc: int, phits: int, minimal: bool) -> None:
                sink(vc, phits, minimal)
                on_activity()

            self._deliver = deliver

    @property
    def connected(self) -> bool:
        return self._sink is not None

    def send_credit(self, vc: int, phits: int, minimal: bool, now: int) -> None:
        """Return ``phits`` of credit for ``vc`` after the channel latency."""
        if self._deliver is None:
            raise RuntimeError("credit channel is not connected to an upstream tracker")
        self.engine.schedule_call(now + self.latency, self._deliver, (vc, phits, minimal))
