"""2D Flattened Butterfly / HyperX-style topology.

Routers form a ``k1 x k2`` grid; within each row and each column routers are
fully connected.  Under dimension-order routing (DOR) packets first correct
dimension 0 and then dimension 1, which gives the topology a diameter of 2 and
link-type restrictions analogous to the Dragonfly's l-g-l order: dimension-0
links are mapped to :class:`LinkType.LOCAL` and dimension-1 links to
:class:`LinkType.GLOBAL`.

Setting ``k2 = 1`` degenerates into a single fully-connected dimension — a
convenient stand-in for a *generic diameter-1/2 network without link-type
restrictions* (all links LOCAL), which is how the paper's Tables I and II and
Figures 1, 3 and 4 are framed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.link_types import HopSequence, LinkType
from .base import PortInfo, Topology


class FlattenedButterfly2D(Topology):
    """Fully-connected 2D Flattened Butterfly (HyperX with S=1).

    Parameters
    ----------
    k1, k2:
        Routers per dimension.  ``k2 = 1`` yields a single fully-connected
        dimension (a complete graph of ``k1`` routers, diameter 1).
    p:
        Compute nodes per router.
    """

    def __init__(self, k1: int, k2: int, p: int) -> None:
        if k1 < 2:
            raise ValueError("k1 must be >= 2")
        if k2 < 1:
            raise ValueError("k2 must be >= 1")
        if p < 1:
            raise ValueError("p must be >= 1")
        self.k1 = k1
        self.k2 = k2
        self.p = p
        self._dim0_ports = k1 - 1
        self._dim1_ports = k2 - 1

    # -- size ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.k1 * self.k2

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def radix(self) -> int:
        return self._dim0_ports + self._dim1_ports

    @property
    def diameter(self) -> int:
        return (1 if self.k1 > 1 else 0) + (1 if self.k2 > 1 else 0)

    @property
    def has_link_type_restrictions(self) -> bool:
        # Under DOR the two dimensions are traversed in a fixed order.
        return self.k2 > 1

    # -- coordinates --------------------------------------------------------------
    def coords(self, router: int) -> tuple[int, int]:
        self._check_router(router)
        return router % self.k1, router // self.k1

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.k1 and 0 <= y < self.k2):
            raise ValueError(f"coordinates ({x}, {y}) out of range")
        return y * self.k1 + x

    # -- port layout ----------------------------------------------------------------
    # ports [0, k1-2]            : dimension-0 (LOCAL) links
    # ports [k1-1, k1-1+k2-2]    : dimension-1 (GLOBAL) links
    def link_type(self, router: int, port: int) -> LinkType:
        self._check_port(port)
        return LinkType.LOCAL if port < self._dim0_ports else LinkType.GLOBAL

    def _dim0_port_target(self, x: int, port: int) -> int:
        return port if port < x else port + 1

    def _dim1_port_target(self, y: int, port: int) -> int:
        rel = port - self._dim0_ports
        return rel if rel < y else rel + 1

    def ports(self, router: int) -> Sequence[PortInfo]:
        x, y = self.coords(router)
        infos: list[PortInfo] = []
        for port in range(self._dim0_ports):
            tx = self._dim0_port_target(x, port)
            infos.append(PortInfo(port=port, neighbor=self.router_at(tx, y),
                                  link_type=LinkType.LOCAL))
        for port in range(self._dim0_ports, self.radix):
            ty = self._dim1_port_target(y, port)
            infos.append(PortInfo(port=port, neighbor=self.router_at(x, ty),
                                  link_type=LinkType.GLOBAL))
        return infos

    def neighbor(self, router: int, port: int) -> int:
        x, y = self.coords(router)
        self._check_port(port)
        if port < self._dim0_ports:
            return self.router_at(self._dim0_port_target(x, port), y)
        return self.router_at(x, self._dim1_port_target(y, port))

    def port_to(self, router: int, neighbor: int) -> Optional[int]:
        if router == neighbor:
            return None
        x, y = self.coords(router)
        nx, ny = self.coords(neighbor)
        if y == ny and x != nx:
            return nx if nx < x else nx - 1
        if x == nx and y != ny:
            rel = ny if ny < y else ny - 1
            return self._dim0_ports + rel
        return None

    # -- minimal (DOR) routing ----------------------------------------------------------
    def min_next_port(self, src_router: int, dst_router: int) -> Optional[int]:
        if src_router == dst_router:
            return None
        x, y = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        if x != dx:
            return dx if dx < x else dx - 1
        rel = dy if dy < y else dy - 1
        return self._dim0_ports + rel

    def min_hop_sequence(self, src_router: int, dst_router: int) -> HopSequence:
        if src_router == dst_router:
            return ()
        x, y = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        seq: list[LinkType] = []
        if x != dx:
            seq.append(LinkType.LOCAL)
        if y != dy:
            seq.append(LinkType.GLOBAL)
        return tuple(seq)

    def describe(self) -> str:
        return (
            f"FlattenedButterfly2D(k1={self.k1}, k2={self.k2}, p={self.p}): "
            f"{self.num_routers} routers, {self.num_nodes} nodes, radix {self.radix}"
        )

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range [0, {self.radix})")
