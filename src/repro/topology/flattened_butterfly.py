"""2D Flattened Butterfly — a thin alias of :class:`repro.topology.hyperx.HyperX`.

Routers form a ``k1 x k2`` grid; within each row and each column routers are
fully connected.  Under dimension-order routing (DOR) packets first correct
dimension 0 and then dimension 1, which gives the topology a diameter of 2 and
link-type restrictions analogous to the Dragonfly's l-g-l order: dimension-0
links are mapped to :class:`LinkType.LOCAL` and dimension-1 links to
:class:`LinkType.GLOBAL`.

Setting ``k2 = 1`` degenerates into a single fully-connected dimension — a
convenient stand-in for a *generic diameter-1/2 network without link-type
restrictions* (all links LOCAL), which is how the paper's Tables I and II and
Figures 1, 3 and 4 are framed.

All behaviour (port layout, DOR order, link typing) lives in the generalized
:class:`HyperX`; this class only pins ``L = 2`` and keeps the historical
``k1``/``k2``/``p`` parameter names.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hyperx import HyperX
from .registry import register_topology


class FlattenedButterfly2D(HyperX):
    """Fully-connected 2D Flattened Butterfly (HyperX with L=2, K=1).

    Parameters
    ----------
    k1, k2:
        Routers per dimension.  ``k2 = 1`` yields a single fully-connected
        dimension (a complete graph of ``k1`` routers, diameter 1).
    p:
        Compute nodes per router.
    """

    def __init__(self, k1: int, k2: int, p: int) -> None:
        if k1 < 2:
            raise ValueError("k1 must be >= 2")
        if k2 < 1:
            raise ValueError("k2 must be >= 1")
        super().__init__(dims=(k1, k2), p=p)

    @property
    def k1(self) -> int:
        return self.dims[0]

    @property
    def k2(self) -> int:
        return self.dims[1]

    def describe(self) -> str:
        return (
            f"FlattenedButterfly2D(k1={self.k1}, k2={self.k2}, p={self.p}): "
            f"{self.num_routers} routers, {self.num_nodes} nodes, radix {self.radix}"
        )


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FlattenedButterflyParams:
    """Parameters of the 2D Flattened Butterfly."""

    k1: int = 4
    k2: int = 4
    nodes_per_router: int = 2

    def validate(self) -> None:
        if self.k1 < 2 or self.k2 < 1:
            raise ValueError("Flattened Butterfly needs k1 >= 2 and k2 >= 1")
        if self.nodes_per_router < 1:
            raise ValueError("nodes_per_router must be >= 1")


@register_topology(
    "flattened_butterfly",
    FlattenedButterflyParams,
    description="2D Flattened Butterfly (HyperX L=2): fully-connected rows "
                "and columns under dimension-order routing",
    aliases=("fb", "flattened-butterfly"),
    legacy_fields={"k1": "k1", "k2": "k2", "fb_nodes_per_router": "nodes_per_router"},
)
def _build_flattened_butterfly(params: FlattenedButterflyParams) -> FlattenedButterfly2D:
    return FlattenedButterfly2D(k1=params.k1, k2=params.k2, p=params.nodes_per_router)
