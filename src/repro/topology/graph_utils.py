"""Graph-level utilities built on top of :class:`repro.topology.base.Topology`.

These helpers are primarily used by tests and examples to validate topology
constructions (connectivity, diameter, degree regularity) and to export the
router graph for external analysis.  They use :mod:`networkx` when available
but degrade to pure-Python BFS otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from .base import Topology

try:  # pragma: no cover - exercised implicitly
    import networkx as _nx
except ImportError:  # pragma: no cover
    _nx = None


def to_networkx(topology: Topology):
    """Export the router-to-router graph as a :class:`networkx.Graph`.

    Edges carry a ``link_type`` attribute.  Raises :class:`ImportError` when
    networkx is not installed.
    """
    if _nx is None:  # pragma: no cover
        raise ImportError("networkx is required for to_networkx()")
    graph = _nx.Graph()
    graph.add_nodes_from(range(topology.num_routers))
    for router in range(topology.num_routers):
        for info in topology.ports(router):
            graph.add_edge(router, info.neighbor, link_type=info.link_type)
    return graph


def bfs_distances(topology: Topology, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable router (plain BFS)."""
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for info in topology.ports(current):
            if info.neighbor not in dist:
                dist[info.neighbor] = dist[current] + 1
                frontier.append(info.neighbor)
    return dist


def is_connected(topology: Topology) -> bool:
    """True when every router is reachable from router 0."""
    return len(bfs_distances(topology, 0)) == topology.num_routers


def measured_diameter(topology: Topology, sample_sources: Optional[int] = None) -> int:
    """Graph diameter measured by BFS.

    ``sample_sources`` limits the number of BFS roots (evenly spaced) for large
    networks; ``None`` measures exactly.
    """
    n = topology.num_routers
    if sample_sources is None or sample_sources >= n:
        sources = range(n)
    else:
        step = max(1, n // sample_sources)
        sources = range(0, n, step)
    best = 0
    for src in sources:
        dist = bfs_distances(topology, src)
        if len(dist) != n:
            raise ValueError("topology is not connected")
        best = max(best, max(dist.values()))
    return best


def degree_histogram(topology: Topology) -> Dict[int, int]:
    """Map of router degree -> count of routers with that degree."""
    histogram: Dict[int, int] = {}
    for router in range(topology.num_routers):
        degree = len(topology.ports(router))
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def verify_bidirectional(topology: Topology) -> bool:
    """Check that every link is matched by a reverse link of the same type."""
    for router in range(topology.num_routers):
        for info in topology.ports(router):
            back = topology.port_to(info.neighbor, router)
            if back is None:
                return False
            if topology.link_type(info.neighbor, back) != info.link_type:
                return False
    return True
