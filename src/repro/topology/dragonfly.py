"""Canonical balanced Dragonfly topology (Kim et al., ISCA 2008).

The Dragonfly arranges routers into groups.  Inside a group the ``a`` routers
form a complete graph over *local* links; groups are connected pairwise by a
single *global* link (for the canonical maximum-size configuration with
``g = a*h + 1`` groups).  Each router provides ``p`` injection ports,
``a - 1`` local ports and ``h`` global ports.

The paper's evaluation uses the balanced configuration ``a = 2h``, ``p = h``
with ``h = 8`` (2,064 routers / 16,512 nodes).  This implementation supports
any ``h >= 1`` so that experiments can run at laptop scale (see DESIGN.md for
the scaling substitution).

Global link arrangement
-----------------------
We use the *consecutive* (a.k.a. palmtree) arrangement: global channel
``m = r*h + k`` of group ``i`` (router position ``r``, global port ``k``)
connects to group ``(i + m + 1) mod g``.  The inverse channel in the remote
group is ``g - 2 - m``, which makes the assignment a bijection between the
``a*h`` channels of each group and the ``g - 1`` other groups.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.link_types import G, HopSequence, L, LinkType
from .base import PortInfo, Topology
from .registry import register_topology


class Dragonfly(Topology):
    """Balanced, fully-populated Dragonfly.

    Parameters
    ----------
    h:
        Number of global links per router.  The balanced configuration sets
        ``p = h`` terminals per router and ``a = 2h`` routers per group.
    p, a, num_groups:
        Optional overrides of the balanced defaults.  ``num_groups`` may be at
        most ``a*h + 1`` (the canonical maximum); smaller values build a
        partially-populated global topology which is still connected provided
        ``num_groups >= 2``.
    """

    def __init__(
        self,
        h: int,
        p: Optional[int] = None,
        a: Optional[int] = None,
        num_groups: Optional[int] = None,
    ) -> None:
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        self.h = h
        self.p = p if p is not None else h
        self.a = a if a is not None else 2 * h
        if self.p < 1:
            raise ValueError("p must be >= 1")
        if self.a < 2:
            raise ValueError("a must be >= 2 (need local links inside a group)")
        max_groups = self.a * self.h + 1
        self.num_groups = num_groups if num_groups is not None else max_groups
        if not 2 <= self.num_groups <= max_groups:
            raise ValueError(
                f"num_groups must be in [2, {max_groups}] for a={self.a}, h={self.h}; "
                f"got {self.num_groups}"
            )
        self._local_ports = self.a - 1
        self._radix = self._local_ports + self.h

    # -- size ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.num_groups * self.a

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def radix(self) -> int:
        return self._radix

    @property
    def diameter(self) -> int:
        return 3

    @property
    def has_link_type_restrictions(self) -> bool:
        return True

    @property
    def canonical_minimal_sequence(self) -> HopSequence:
        # l-g-l: at most one local hop on each side of the single global hop.
        return (L, G, L)

    @property
    def num_local_ports(self) -> int:
        return self._local_ports

    # -- coordinates ------------------------------------------------------------
    def group_of(self, router: int) -> int:
        self._check_router(router)
        return router // self.a

    def position_in_group(self, router: int) -> int:
        self._check_router(router)
        return router % self.a

    def router_id(self, group: int, position: int) -> int:
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        if not 0 <= position < self.a:
            raise ValueError(f"position {position} out of range")
        return group * self.a + position

    # -- port layout --------------------------------------------------------------
    # ports [0, a-2]          : local ports
    # ports [a-1, a-1+h-1]    : global ports
    def is_global_port(self, port: int) -> bool:
        return port >= self._local_ports

    def link_type(self, router: int, port: int) -> LinkType:
        self._check_port(port)
        return LinkType.GLOBAL if self.is_global_port(port) else LinkType.LOCAL

    def local_port_to(self, router: int, other_position: int) -> int:
        """Local port of ``router`` connected to position ``other_position`` of its group."""
        pos = self.position_in_group(router)
        if other_position == pos:
            raise ValueError("a router has no local port to itself")
        if not 0 <= other_position < self.a:
            raise ValueError(f"position {other_position} out of range")
        return other_position if other_position < pos else other_position - 1

    def _local_port_target(self, router: int, port: int) -> int:
        """Position in the group reached through local ``port`` of ``router``."""
        pos = self.position_in_group(router)
        return port if port < pos else port + 1

    # -- global channel arithmetic ---------------------------------------------------
    def global_channel(self, router: int, global_port: int) -> int:
        """Group-level global channel index of ``global_port`` of ``router``."""
        if not 0 <= global_port < self.h:
            raise ValueError(f"global port {global_port} out of range [0, {self.h})")
        return self.position_in_group(router) * self.h + global_port

    def global_channel_to_group(self, src_group: int, dst_group: int) -> Optional[int]:
        """Global channel of ``src_group`` that reaches ``dst_group`` directly.

        Returns ``None`` when the channel that would connect them is not
        populated (only possible for ``num_groups < a*h + 1``).
        """
        if src_group == dst_group:
            raise ValueError("groups are identical")
        offset = (dst_group - src_group) % self.num_groups
        channel = offset - 1
        if channel >= self.a * self.h:
            return None
        # The channel exists in the builder only when its peer group exists,
        # which is always true because offset < num_groups.
        return channel

    def channel_owner(self, channel: int) -> tuple[int, int]:
        """(position, global_port) owning group-level ``channel``."""
        if not 0 <= channel < self.a * self.h:
            raise ValueError(f"channel {channel} out of range")
        return channel // self.h, channel % self.h

    def global_peer(self, router: int, global_port: int) -> Optional[int]:
        """Router at the far end of a global port (None when unpopulated)."""
        group = self.group_of(router)
        channel = self.global_channel(router, global_port)
        dst_group = (group + channel + 1) % self.num_groups
        if channel + 1 >= self.num_groups:
            # Peer group does not exist in a partially-populated network.
            return None
        peer_channel = self._peer_channel(channel, dst_group, group)
        if peer_channel is None:
            return None
        peer_pos, _ = self.channel_owner(peer_channel)
        return self.router_id(dst_group, peer_pos)

    def _peer_channel(self, channel: int, dst_group: int, src_group: int) -> Optional[int]:
        offset_back = (src_group - dst_group) % self.num_groups
        peer_channel = offset_back - 1
        if peer_channel >= self.a * self.h:
            return None
        return peer_channel

    # -- Topology interface ------------------------------------------------------------
    def ports(self, router: int) -> Sequence[PortInfo]:
        self._check_router(router)
        infos: list[PortInfo] = []
        group = self.group_of(router)
        for port in range(self._local_ports):
            target_pos = self._local_port_target(router, port)
            infos.append(
                PortInfo(port=port, neighbor=self.router_id(group, target_pos),
                         link_type=LinkType.LOCAL)
            )
        for k in range(self.h):
            peer = self.global_peer(router, k)
            if peer is not None:
                infos.append(
                    PortInfo(port=self._local_ports + k, neighbor=peer,
                             link_type=LinkType.GLOBAL)
                )
        return infos

    def neighbor(self, router: int, port: int) -> int:
        self._check_router(router)
        self._check_port(port)
        group = self.group_of(router)
        if port < self._local_ports:
            return self.router_id(group, self._local_port_target(router, port))
        peer = self.global_peer(router, port - self._local_ports)
        if peer is None:
            raise ValueError(f"global port {port} of router {router} is unpopulated")
        return peer

    def port_to(self, router: int, neighbor: int) -> Optional[int]:
        self._check_router(router)
        self._check_router(neighbor)
        if router == neighbor:
            return None
        g_r, g_n = self.group_of(router), self.group_of(neighbor)
        if g_r == g_n:
            return self.local_port_to(router, self.position_in_group(neighbor))
        channel = self.global_channel_to_group(g_r, g_n)
        if channel is None:
            return None
        pos, gport = self.channel_owner(channel)
        if pos != self.position_in_group(router):
            return None
        if self.global_peer(router, gport) != neighbor:
            return None
        return self._local_ports + gport

    # -- minimal routing ------------------------------------------------------------
    def gateway_router(self, src_group: int, dst_group: int) -> tuple[int, int]:
        """(router, global_port) in ``src_group`` owning the link to ``dst_group``."""
        channel = self.global_channel_to_group(src_group, dst_group)
        if channel is None:
            raise ValueError(
                f"groups {src_group} and {dst_group} are not directly connected "
                "(partially-populated Dragonfly)"
            )
        pos, gport = self.channel_owner(channel)
        return self.router_id(src_group, pos), gport

    def entry_router(self, src_group: int, dst_group: int) -> int:
        """Router of ``dst_group`` where minimal traffic from ``src_group`` lands."""
        gw, gport = self.gateway_router(src_group, dst_group)
        peer = self.global_peer(gw, gport)
        assert peer is not None
        return peer

    def min_next_port(self, src_router: int, dst_router: int) -> Optional[int]:
        self._check_router(src_router)
        self._check_router(dst_router)
        if src_router == dst_router:
            return None
        sg, dg = self.group_of(src_router), self.group_of(dst_router)
        if sg == dg:
            return self.local_port_to(src_router, self.position_in_group(dst_router))
        gw, gport = self.gateway_router(sg, dg)
        if gw == src_router:
            return self._local_ports + gport
        return self.local_port_to(src_router, self.position_in_group(gw))

    def min_next_ports_to(self, dst_router: int) -> Sequence[int]:
        """Closed-form batch of :meth:`min_next_port` for one destination.

        Derives the destination's gateway router once per *group* (instead
        of once per source router), then fills each group's sources with
        pure local-port arithmetic — O(n) cheap integer work per column.
        """
        self._check_router(dst_router)
        a = self.a
        ports = array("i", [-1]) * self.num_routers
        dst_group, dst_pos = divmod(dst_router, a)
        local_ports = self._local_ports
        for group in range(self.num_groups):
            base = group * a
            if group == dst_group:
                # local_port_to(src, dst_pos) for every other position.
                for pos in range(a):
                    if pos != dst_pos:
                        ports[base + pos] = (
                            dst_pos if dst_pos < pos else dst_pos - 1
                        )
                continue
            gateway, gport = self.gateway_router(group, dst_group)
            gw_pos = gateway - base
            for pos in range(a):
                ports[base + pos] = (
                    gw_pos if gw_pos < pos else gw_pos - 1
                )
            ports[gateway] = local_ports + gport
        return ports

    def min_hop_sequence(self, src_router: int, dst_router: int) -> HopSequence:
        self._check_router(src_router)
        self._check_router(dst_router)
        if src_router == dst_router:
            return ()
        sg, dg = self.group_of(src_router), self.group_of(dst_router)
        if sg == dg:
            return (LinkType.LOCAL,)
        gw, _ = self.gateway_router(sg, dg)
        entry = self.entry_router(sg, dg)
        seq: list[LinkType] = []
        if gw != src_router:
            seq.append(LinkType.LOCAL)
        seq.append(LinkType.GLOBAL)
        if entry != dst_router:
            seq.append(LinkType.LOCAL)
        return tuple(seq)

    # -- groups / saturation ------------------------------------------------------------
    def _compute_router_groups(self) -> List[List[int]]:
        return [
            list(range(group * self.a, (group + 1) * self.a))
            for group in range(self.num_groups)
        ]

    def num_global_ports(self, router: int) -> int:
        return self.h

    def global_port_index(self, router: int, port: int) -> int:
        if not self.is_global_port(port):
            raise ValueError(f"port {port} of router {router} is not a global port")
        return port - self._local_ports

    # -- misc -------------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary of the configuration."""
        return (
            f"Dragonfly(h={self.h}, p={self.p}, a={self.a}, groups={self.num_groups}): "
            f"{self.num_routers} routers, {self.num_nodes} nodes, radix {self.radix}"
        )

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range [0, {self.radix})")


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DragonflyParams:
    """Parameters of the balanced Dragonfly (Table V uses ``h=8``)."""

    h: int = 2
    p: Optional[int] = None
    a: Optional[int] = None
    num_groups: Optional[int] = None

    def validate(self) -> None:
        if self.h < 1:
            raise ValueError("Dragonfly h must be >= 1")
        if self.p is not None and self.p < 1:
            raise ValueError("Dragonfly p must be >= 1")
        if self.a is not None and self.a < 2:
            raise ValueError("Dragonfly a must be >= 2")


@register_topology(
    "dragonfly",
    DragonflyParams,
    description="balanced Dragonfly (Kim et al.): groups of a routers, "
                "all-to-all local and group-level global links",
    legacy_fields={"h": "h", "p": "p", "a": "a", "num_groups": "num_groups"},
)
def _build_dragonfly(params: DragonflyParams) -> Dragonfly:
    return Dragonfly(h=params.h, p=params.p, a=params.a, num_groups=params.num_groups)
