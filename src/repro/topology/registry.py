"""Pluggable topology registry.

Every topology in the package registers itself here with a *name*, a frozen
*parameter dataclass* (owning defaults and validation) and a *builder*
turning validated parameters into a :class:`~repro.topology.base.Topology`.
The configuration layer (:class:`repro.config.NetworkConfig`) and the
simulation façade resolve topologies exclusively through this registry, so a
new network becomes available everywhere — config validation, simulation,
experiments, CLI — with a single ``@register_topology`` declaration::

    @dataclass(frozen=True)
    class RingParams:
        routers: int = 8
        nodes_per_router: int = 2

        def validate(self) -> None:
            if self.routers < 3:
                raise ValueError("a ring needs at least 3 routers")

    @register_topology("ring", RingParams, description="unidirectional ring")
    def _build_ring(params: RingParams) -> Topology:
        return Ring(params.routers, params.nodes_per_router)

``legacy_fields`` maps the flat pre-registry :class:`NetworkConfig` keyword
names (``h``, ``k1``, ``fb_nodes_per_router``, ...) onto parameter-dataclass
fields so old construction code keeps working unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..cache import BoundedLRU
from .base import Topology


@dataclass(frozen=True)
class TopologySpec:
    """One registered topology: parameters, builder and metadata."""

    name: str
    params_cls: type
    builder: Callable[[Any], Topology]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    #: legacy NetworkConfig field name -> params_cls field name.
    legacy_fields: Mapping[str, str] = field(default_factory=dict)

    def make_params(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Instantiate and validate the parameter dataclass."""
        values = dict(params or {})
        try:
            instance = self.params_cls(**values)
        except TypeError as exc:
            valid = [f.name for f in dataclasses.fields(self.params_cls)]
            raise ValueError(
                f"invalid parameters {sorted(values)} for topology "
                f"{self.name!r}; expected a subset of {valid}"
            ) from exc
        validate = getattr(instance, "validate", None)
        if validate is not None:
            validate()
        return instance

    def build(self, params: Optional[Mapping[str, Any]] = None) -> Topology:
        return self.builder(self.make_params(params))


class TopologyRegistry:
    """Name -> :class:`TopologySpec` registry with alias resolution.

    Besides plain :meth:`build` (always a fresh instance), the registry keeps
    a small bounded cache of built topologies keyed by ``(canonical name,
    sorted parameter items)`` — see :meth:`build_cached`.  Topologies are
    immutable after construction (their lazy group/slot memos are idempotent),
    so sharing one instance across simulations is safe and saves rebuilding
    the same graph for every point of a sweep.
    """

    #: bounded size of the built-topology cache (LRU eviction).
    BUILD_CACHE_MAX = 16

    def __init__(self) -> None:
        self._specs: Dict[str, TopologySpec] = {}
        self._aliases: Dict[str, str] = {}
        #: (canonical name, params items) -> built topology.
        self._build_cache = BoundedLRU(self.BUILD_CACHE_MAX)
        self.build_cache_hits = 0
        self.build_cache_misses = 0

    # -- registration -------------------------------------------------------
    def register(
        self,
        name: str,
        params_cls: type,
        *,
        description: str = "",
        aliases: Tuple[str, ...] = (),
        legacy_fields: Optional[Mapping[str, str]] = None,
    ) -> Callable[[Callable[[Any], Topology]], Callable[[Any], Topology]]:
        """Decorator registering ``builder`` under ``name`` (plus aliases)."""

        def decorator(builder: Callable[[Any], Topology]) -> Callable[[Any], Topology]:
            # Check every name before mutating anything, so a collision
            # cannot leave a half-registered topology behind.
            if name in self._specs or name in self._aliases:
                raise ValueError(f"topology {name!r} is already registered")
            for alias in aliases:
                if alias in self._specs or alias in self._aliases:
                    raise ValueError(f"topology alias {alias!r} is already registered")
            spec = TopologySpec(
                name=name,
                params_cls=params_cls,
                builder=builder,
                description=description,
                aliases=tuple(aliases),
                legacy_fields=dict(legacy_fields or {}),
            )
            self._specs[name] = spec
            for alias in spec.aliases:
                self._aliases[alias] = name
            return builder

        return decorator

    # -- lookup -------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def get(self, name: str) -> TopologySpec:
        canonical = self._aliases.get(name, name)
        try:
            return self._specs[canonical]
        except KeyError as exc:
            raise ValueError(
                f"unknown topology {name!r}; registered: {', '.join(self.names())}"
            ) from exc

    def build(self, name: str, params: Optional[Mapping[str, Any]] = None) -> Topology:
        """Build the topology registered under ``name``."""
        return self.get(name).build(params)

    def build_cached(
        self, name: str, params: Optional[Mapping[str, Any]] = None
    ) -> Topology:
        """Build-or-reuse the topology registered under ``name``.

        Returns a shared instance for repeated identical requests (sweep
        points differing only in load/seed/routing all describe the same
        graph).  Parameters must already be hashable — tuples, not lists —
        which is how :class:`repro.config.NetworkConfig` stores them; a
        non-hashable request silently falls back to a fresh build.
        """
        spec = self.get(name)
        try:
            key = (spec.name, tuple(sorted((params or {}).items())))
            cached = self._build_cache.get(key)  # raises on unhashable values
        except TypeError:  # unhashable parameter values
            return spec.build(params)
        if cached is not None:
            self.build_cache_hits += 1
            return cached
        self.build_cache_misses += 1
        topology = spec.build(params)
        self._build_cache.put(key, topology)
        return topology


#: The process-wide registry; populated by the topology modules on import.
TOPOLOGIES = TopologyRegistry()

register_topology = TOPOLOGIES.register
