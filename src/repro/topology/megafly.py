"""Megafly / Dragonfly+ topology (Flajslik et al.; Shpiner et al.).

Groups are two-level fat trees: ``leaves`` leaf routers (each attaching ``p``
compute nodes) are completely bipartitely connected to ``spines`` spine
routers through *local* links; each spine additionally drives ``h`` *global*
links.  Groups are connected pairwise through the spines' global links using
the same consecutive (palmtree) channel arrangement as the Dragonfly: global
channel ``m = spine_position*h + k`` of group ``i`` connects to group
``(i + m + 1) mod g``, giving ``g = spines*h + 1`` groups when fully
populated.

Minimal paths between compute nodes are at most leaf-spine-global-spine-leaf,
i.e. an l-g-l hop-type shape identical to the Dragonfly (intra-group traffic
takes leaf-spine-leaf, two local hops), so the same VC arrangements apply.
Spine routers attach no nodes; they are transit-only, which is why the
worst-case *escape* path (from a spine that does not own the required global
channel) is one local hop longer than the canonical minimal sequence, and why
Valiant intermediates are restricted to leaf routers.

Router ids place each group's leaves first, then its spines:
``group * (leaves + spines) + position``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.link_types import G, HopSequence, L, LinkType
from .base import PortInfo, Topology
from .registry import register_topology


class Megafly(Topology):
    """Two-level fat-tree groups with Dragonfly-style global connectivity.

    Parameters
    ----------
    spines, leaves:
        Routers per group level.  Leaves carry the compute nodes; spines own
        the global links.
    h:
        Global links per spine router.
    p:
        Compute nodes per leaf router.
    num_groups:
        Optional override of the fully-populated default ``spines*h + 1``.
    """

    def __init__(
        self,
        spines: int,
        leaves: int,
        h: int,
        p: int,
        num_groups: Optional[int] = None,
    ) -> None:
        if spines < 1 or leaves < 1:
            raise ValueError("spines and leaves must be >= 1")
        if h < 1:
            raise ValueError("h must be >= 1")
        if p < 1:
            raise ValueError("p must be >= 1")
        self.spines = spines
        self.leaves = leaves
        self.h = h
        self.p = p
        max_groups = spines * h + 1
        self.num_groups = num_groups if num_groups is not None else max_groups
        if not 2 <= self.num_groups <= max_groups:
            raise ValueError(
                f"num_groups must be in [2, {max_groups}] for spines={spines}, "
                f"h={h}; got {self.num_groups}"
            )
        self._group_size = leaves + spines
        self._nodes_per_group = leaves * p

    # -- size ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.num_groups * self._group_size

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def num_nodes(self) -> int:
        return self.num_groups * self._nodes_per_group

    @property
    def radix(self) -> int:
        # Leaves use `spines` ports, spines use `leaves + h`; the router
        # model sizes ports per router from ports(), so report the maximum.
        return max(self.spines, self.leaves + self.h)

    @property
    def diameter(self) -> int:
        # Worst *routed* minimal path: spine -> leaf -> gateway spine ->
        # global -> entry spine -> leaf -> destination spine.  Between
        # compute-node routers (leaves) the diameter is 3.
        return 5

    @property
    def has_link_type_restrictions(self) -> bool:
        return True

    @property
    def canonical_minimal_sequence(self) -> HopSequence:
        # leaf - spine - global - spine - leaf; the intra-group leaf-spine-leaf
        # path is covered by the same (2 local, 1 global) envelope.
        return (L, G, L)

    @property
    def worst_escape_sequence(self) -> HopSequence:
        # From a spine that does not own the required global channel:
        # spine -> leaf -> gateway spine -> global -> entry spine(-> leaf).
        return (L, L, G, L)

    def valiant_routers(self) -> Sequence[int]:
        """Only leaf routers serve as Valiant intermediates (spines carry no
        nodes and would add up to two extra local hops per segment)."""
        cached = self.__dict__.get("_valiant_routers")
        if cached is None:
            cached = [
                group * self._group_size + leaf
                for group in range(self.num_groups)
                for leaf in range(self.leaves)
            ]
            self.__dict__["_valiant_routers"] = cached
        return cached

    # -- coordinates ------------------------------------------------------------
    def group_of(self, router: int) -> int:
        self._check_router(router)
        return router // self._group_size

    def position_in_group(self, router: int) -> int:
        self._check_router(router)
        return router % self._group_size

    def is_spine(self, router: int) -> bool:
        return self.position_in_group(router) >= self.leaves

    def spine_position(self, router: int) -> int:
        """Index of a spine router within its group's spine level."""
        position = self.position_in_group(router)
        if position < self.leaves:
            raise ValueError(f"router {router} is a leaf, not a spine")
        return position - self.leaves

    def leaf_id(self, group: int, leaf: int) -> int:
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        if not 0 <= leaf < self.leaves:
            raise ValueError(f"leaf {leaf} out of range")
        return group * self._group_size + leaf

    def spine_id(self, group: int, spine: int) -> int:
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        if not 0 <= spine < self.spines:
            raise ValueError(f"spine {spine} out of range")
        return group * self._group_size + self.leaves + spine

    # -- node mapping -------------------------------------------------------------
    @property
    def has_uniform_node_mapping(self) -> bool:
        return False

    def router_of_node(self, node: int) -> int:
        self._check_node(node)
        group, within = divmod(node, self._nodes_per_group)
        return group * self._group_size + within // self.p

    def nodes_of_router(self, router: int) -> Sequence[int]:
        self._check_router(router)
        group = router // self._group_size
        position = router % self._group_size
        if position >= self.leaves:
            return range(0)  # spines attach no nodes
        first = group * self._nodes_per_group + position * self.p
        return range(first, first + self.p)

    # -- global channel arithmetic ---------------------------------------------------
    def global_channel_to_group(self, src_group: int, dst_group: int) -> Optional[int]:
        """Global channel of ``src_group`` that reaches ``dst_group`` directly."""
        if src_group == dst_group:
            raise ValueError("groups are identical")
        channel = (dst_group - src_group) % self.num_groups - 1
        if channel >= self.spines * self.h:
            return None
        return channel

    def gateway_spine(self, src_group: int, dst_group: int) -> Tuple[int, int]:
        """(router, global_port_index) in ``src_group`` owning the link to ``dst_group``."""
        channel = self.global_channel_to_group(src_group, dst_group)
        if channel is None:
            raise ValueError(
                f"groups {src_group} and {dst_group} are not directly connected "
                "(partially-populated Megafly)"
            )
        return self.spine_id(src_group, channel // self.h), channel % self.h

    def global_peer(self, router: int, global_port: int) -> Optional[int]:
        """Spine at the far end of a global port (None when unpopulated)."""
        if not 0 <= global_port < self.h:
            raise ValueError(f"global port {global_port} out of range [0, {self.h})")
        group = self.group_of(router)
        channel = self.spine_position(router) * self.h + global_port
        if channel + 1 >= self.num_groups:
            return None  # peer group does not exist (partially populated)
        dst_group = (group + channel + 1) % self.num_groups
        peer_channel = (group - dst_group) % self.num_groups - 1
        if peer_channel >= self.spines * self.h:
            return None
        return self.spine_id(dst_group, peer_channel // self.h)

    # -- Topology interface ------------------------------------------------------------
    # Leaf ports:  [0, spines)            LOCAL up-links, one per spine.
    # Spine ports: [0, leaves)            LOCAL down-links, one per leaf;
    #              [leaves, leaves + h)   GLOBAL links.
    def link_type(self, router: int, port: int) -> LinkType:
        if self.is_spine(router):
            if not 0 <= port < self.leaves + self.h:
                raise ValueError(f"port {port} out of range for spine {router}")
            return LinkType.LOCAL if port < self.leaves else LinkType.GLOBAL
        if not 0 <= port < self.spines:
            raise ValueError(f"port {port} out of range for leaf {router}")
        return LinkType.LOCAL

    def ports(self, router: int) -> Sequence[PortInfo]:
        self._check_router(router)
        group = self.group_of(router)
        infos: List[PortInfo] = []
        if self.is_spine(router):
            for leaf in range(self.leaves):
                infos.append(
                    PortInfo(port=leaf, neighbor=self.leaf_id(group, leaf),
                             link_type=LinkType.LOCAL)
                )
            for k in range(self.h):
                peer = self.global_peer(router, k)
                if peer is not None:
                    infos.append(
                        PortInfo(port=self.leaves + k, neighbor=peer,
                                 link_type=LinkType.GLOBAL)
                    )
        else:
            for spine in range(self.spines):
                infos.append(
                    PortInfo(port=spine, neighbor=self.spine_id(group, spine),
                             link_type=LinkType.LOCAL)
                )
        return infos

    def neighbor(self, router: int, port: int) -> int:
        group = self.group_of(router)
        if self.is_spine(router):
            if 0 <= port < self.leaves:
                return self.leaf_id(group, port)
            if self.leaves <= port < self.leaves + self.h:
                peer = self.global_peer(router, port - self.leaves)
                if peer is None:
                    raise ValueError(
                        f"global port {port} of spine {router} is unpopulated"
                    )
                return peer
            raise ValueError(f"port {port} out of range for spine {router}")
        if not 0 <= port < self.spines:
            raise ValueError(f"port {port} out of range for leaf {router}")
        return self.spine_id(group, port)

    def port_to(self, router: int, neighbor: int) -> Optional[int]:
        self._check_router(router)
        self._check_router(neighbor)
        if router == neighbor:
            return None
        g_r, g_n = self.group_of(router), self.group_of(neighbor)
        if g_r == g_n:
            if self.is_spine(router) == self.is_spine(neighbor):
                return None  # same level: not adjacent
            if self.is_spine(router):
                return self.position_in_group(neighbor)
            return self.spine_position(neighbor)
        if not (self.is_spine(router) and self.is_spine(neighbor)):
            return None
        channel = self.global_channel_to_group(g_r, g_n)
        if channel is None:
            return None
        if self.spine_id(g_r, channel // self.h) != router:
            return None
        gport = channel % self.h
        if self.global_peer(router, gport) != neighbor:
            return None
        return self.leaves + gport

    # -- minimal routing ------------------------------------------------------------
    def _up_spine(self, src_pos: int, dst_pos: int, count: int) -> int:
        """Deterministic spread of intra-level transit choices."""
        return (src_pos + dst_pos) % count

    def min_next_port(self, src_router: int, dst_router: int) -> Optional[int]:
        self._check_router(src_router)
        self._check_router(dst_router)
        if src_router == dst_router:
            return None
        sg, dg = self.group_of(src_router), self.group_of(dst_router)
        src_pos = self.position_in_group(src_router)
        dst_pos = self.position_in_group(dst_router)
        if sg == dg:
            if self.is_spine(src_router) != self.is_spine(dst_router):
                # Directly adjacent levels.
                return self.port_to(src_router, dst_router)
            if self.is_spine(src_router):
                # spine -> spine: descend through a deterministic leaf.
                return self._up_spine(src_pos - self.leaves,
                                      dst_pos - self.leaves, self.leaves)
            # leaf -> leaf: ascend through a deterministic spine.
            return self._up_spine(src_pos, dst_pos, self.spines)
        gateway, gport = self.gateway_spine(sg, dg)
        if src_router == gateway:
            return self.leaves + gport
        if self.is_spine(src_router):
            # Descend to a deterministic leaf, which will ascend to the gateway.
            return self._up_spine(self.spine_position(src_router),
                                  self.spine_position(gateway), self.leaves)
        # Leaf: ascend straight to the gateway spine.
        return self.spine_position(gateway)

    def min_next_ports_to(self, dst_router: int) -> Sequence[int]:
        """Closed-form batch of :meth:`min_next_port` for one destination.

        Derives the destination's gateway spine once per *group* (instead of
        once per source router), then fills leaves and spines with the
        deterministic :meth:`_up_spine` spread arithmetic.
        """
        self._check_router(dst_router)
        gs = self._group_size
        leaves, spines = self.leaves, self.spines
        ports = array("i", [-1]) * self.num_routers
        dst_group, dst_pos = divmod(dst_router, gs)
        dst_is_spine = dst_pos >= leaves
        for group in range(self.num_groups):
            base = group * gs
            if group == dst_group:
                if dst_is_spine:
                    dst_spine = dst_pos - leaves
                    for leaf in range(leaves):
                        ports[base + leaf] = dst_spine
                    for spine in range(spines):
                        if spine != dst_spine:
                            ports[base + leaves + spine] = \
                                (spine + dst_spine) % leaves
                else:
                    for leaf in range(leaves):
                        if leaf != dst_pos:
                            ports[base + leaf] = (leaf + dst_pos) % spines
                    for spine in range(spines):
                        ports[base + leaves + spine] = dst_pos
                continue
            gateway, gport = self.gateway_spine(group, dst_group)
            gw_spine = gateway - base - leaves
            for leaf in range(leaves):
                ports[base + leaf] = gw_spine
            for spine in range(spines):
                ports[base + leaves + spine] = (spine + gw_spine) % leaves
            ports[gateway] = leaves + gport
        return ports

    # min_hop_sequence: inherited walk over min_next_port (the hot path reads
    # the precomputed RouteTable instead).

    # -- groups / saturation ------------------------------------------------------------
    def _compute_router_groups(self) -> List[List[int]]:
        return [
            list(range(group * self._group_size, (group + 1) * self._group_size))
            for group in range(self.num_groups)
        ]

    def num_global_ports(self, router: int) -> int:
        return self.h if self.is_spine(router) else 0

    def global_port_index(self, router: int, port: int) -> int:
        if not self.is_spine(router) or not self.leaves <= port < self.leaves + self.h:
            raise ValueError(f"port {port} of router {router} is not a global port")
        return port - self.leaves

    # -- misc -------------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"Megafly(spines={self.spines}, leaves={self.leaves}, h={self.h}, "
            f"p={self.p}, groups={self.num_groups}): {self.num_routers} routers, "
            f"{self.num_nodes} nodes"
        )


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MegaflyParams:
    """Megafly / Dragonfly+ parameters."""

    spines: int = 2
    leaves: int = 2
    h: int = 2
    nodes_per_router: int = 2
    num_groups: Optional[int] = None

    def validate(self) -> None:
        if self.spines < 1 or self.leaves < 1:
            raise ValueError("Megafly spines and leaves must be >= 1")
        if self.h < 1:
            raise ValueError("Megafly h must be >= 1")
        if self.nodes_per_router < 1:
            raise ValueError("nodes_per_router must be >= 1")
        if self.num_groups is not None and not (
                2 <= self.num_groups <= self.spines * self.h + 1):
            raise ValueError(
                f"num_groups must be in [2, {self.spines * self.h + 1}]"
            )


@register_topology(
    "megafly",
    MegaflyParams,
    description="Megafly / Dragonfly+: two-level fat-tree groups, spine-owned "
                "global links in a palmtree arrangement",
    aliases=("dragonfly+", "dragonflyplus"),
)
def _build_megafly(params: MegaflyParams) -> Megafly:
    return Megafly(
        spines=params.spines,
        leaves=params.leaves,
        h=params.h,
        p=params.nodes_per_router,
        num_groups=params.num_groups,
    )
