"""HyperX topology: L fully-connected dimensions (Ahn et al., SC 2008).

A regular HyperX(L, S, K) arranges routers on an L-dimensional lattice with
``S_d`` routers per dimension; within every dimension each router is fully
connected to the ``S_d - 1`` routers sharing its other coordinates.  ``K`` is
the per-link trunking factor; this model implements ``K = 1`` (single links).

Under dimension-order routing (DOR) packets correct dimension 0 first and
then the higher dimensions in ascending order, which gives the topology a
diameter equal to its number of non-degenerate dimensions and link-type
restrictions analogous to the Dragonfly's l-g-l order: dimension-0 links are
mapped to :class:`LinkType.LOCAL` and all higher dimensions to
:class:`LinkType.GLOBAL` (one global *slot* per extra dimension, in traversal
order).  The 2D instance is exactly the paper's Flattened Butterfly
(:class:`repro.topology.flattened_butterfly.FlattenedButterfly2D` is a thin
alias); a single dimension degenerates into a complete graph — the "generic
low-diameter network without link-type restrictions" of Tables I and II.

Coordinates are mixed-radix with dimension 0 fastest:
``router = x0 + x1*S_0 + x2*S_0*S_1 + ...``.  Ports are laid out
dimension-major, within each dimension ordered by target coordinate
(skipping the router's own).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.link_types import G, HopSequence, L, LinkType
from .base import PortInfo, Topology
from .registry import register_topology


class HyperX(Topology):
    """Regular HyperX with per-dimension sizes ``dims`` and ``p`` nodes/router.

    Parameters
    ----------
    dims:
        Routers per dimension, ``(S_0, ..., S_{L-1})``.  ``S_0 >= 2``;
        higher dimensions may be 1 (degenerate, no links).
    p:
        Compute nodes per router.
    """

    def __init__(self, dims: Sequence[int], p: int) -> None:
        dims = tuple(int(s) for s in dims)
        if not dims:
            raise ValueError("HyperX needs at least one dimension")
        if dims[0] < 2:
            raise ValueError("HyperX dimension 0 must have at least 2 routers")
        if any(s < 1 for s in dims[1:]):
            raise ValueError("HyperX dimension sizes must be >= 1")
        if p < 1:
            raise ValueError("p must be >= 1")
        self.dims = dims
        self.p = p
        #: first port of each dimension (prefix sums of S_d - 1).
        self._port_base: Tuple[int, ...] = tuple(
            sum(s - 1 for s in dims[:d]) for d in range(len(dims))
        )
        self._radix = sum(s - 1 for s in dims)
        #: mixed-radix strides, dimension 0 fastest.
        strides = [1] * len(dims)
        for d in range(1, len(dims)):
            strides[d] = strides[d - 1] * dims[d - 1]
        self._strides: Tuple[int, ...] = tuple(strides)

    # -- size ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        n = 1
        for s in self.dims:
            n *= s
        return n

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def radix(self) -> int:
        return self._radix

    @property
    def diameter(self) -> int:
        return sum(1 for s in self.dims if s > 1)

    @property
    def has_link_type_restrictions(self) -> bool:
        # Under DOR the dimensions are traversed in a fixed order; with a
        # single populated dimension there is nothing to order.
        return any(s > 1 for s in self.dims[1:])

    @property
    def canonical_minimal_sequence(self) -> HopSequence:
        return (L,) + (G,) * sum(1 for s in self.dims[1:] if s > 1)

    # -- coordinates ------------------------------------------------------------
    def coords(self, router: int) -> Tuple[int, ...]:
        self._check_router(router)
        return tuple(
            (router // self._strides[d]) % self.dims[d] for d in range(len(self.dims))
        )

    def router_at(self, *coords: int) -> int:
        if len(coords) != len(self.dims):
            raise ValueError(f"expected {len(self.dims)} coordinates, got {len(coords)}")
        router = 0
        for d, (x, s) in enumerate(zip(coords, self.dims)):
            if not 0 <= x < s:
                raise ValueError(f"coordinate {x} out of range for dimension {d}")
            router += x * self._strides[d]
        return router

    def _port_dim(self, port: int) -> int:
        """Dimension a port belongs to."""
        self._check_port(port)
        for d in range(len(self.dims) - 1, -1, -1):
            if port >= self._port_base[d]:
                return d
        raise AssertionError("unreachable")  # pragma: no cover

    def _port_target(self, own: int, rel: int) -> int:
        """Target coordinate of the ``rel``-th port of a dimension."""
        return rel if rel < own else rel + 1

    def _port_for(self, d: int, own: int, target: int) -> int:
        """Port reaching coordinate ``target`` of dimension ``d``."""
        return self._port_base[d] + (target if target < own else target - 1)

    # -- Topology interface ------------------------------------------------------
    def link_type(self, router: int, port: int) -> LinkType:
        return LinkType.LOCAL if self._port_dim(port) == 0 else LinkType.GLOBAL

    def ports(self, router: int) -> Sequence[PortInfo]:
        coords = self.coords(router)
        infos: List[PortInfo] = []
        for d, s in enumerate(self.dims):
            own = coords[d]
            stride = self._strides[d]
            link_type = LinkType.LOCAL if d == 0 else LinkType.GLOBAL
            for rel in range(s - 1):
                target = self._port_target(own, rel)
                infos.append(
                    PortInfo(
                        port=self._port_base[d] + rel,
                        neighbor=router + (target - own) * stride,
                        link_type=link_type,
                    )
                )
        return infos

    def neighbor(self, router: int, port: int) -> int:
        coords = self.coords(router)
        d = self._port_dim(port)
        own = coords[d]
        target = self._port_target(own, port - self._port_base[d])
        return router + (target - own) * self._strides[d]

    def port_to(self, router: int, neighbor: int) -> Optional[int]:
        if router == neighbor:
            return None
        a, b = self.coords(router), self.coords(neighbor)
        differing = [d for d in range(len(self.dims)) if a[d] != b[d]]
        if len(differing) != 1:
            return None
        d = differing[0]
        return self._port_for(d, a[d], b[d])

    # -- minimal (DOR) routing ----------------------------------------------------
    def min_next_port(self, src_router: int, dst_router: int) -> Optional[int]:
        if src_router == dst_router:
            self._check_router(src_router)
            self._check_router(dst_router)
            return None
        src, dst = self.coords(src_router), self.coords(dst_router)
        for d in range(len(self.dims)):
            if src[d] != dst[d]:
                return self._port_for(d, src[d], dst[d])
        raise AssertionError("unreachable")  # pragma: no cover

    def min_next_ports_to(self, dst_router: int) -> Sequence[int]:
        """Closed-form batch of :meth:`min_next_port` for one destination.

        Walks the router ids in order while maintaining their mixed-radix
        coordinates incrementally (dimension 0 fastest), so each source costs
        a first-differing-dimension scan instead of a fresh divmod chain.
        """
        self._check_router(dst_router)
        dims = self.dims
        ndim = len(dims)
        dst = self.coords(dst_router)
        port_base = self._port_base
        ports = array("i", [-1]) * self.num_routers
        coords = [0] * ndim
        for src in range(self.num_routers):
            if src != dst_router:
                for d in range(ndim):
                    own = coords[d]
                    target = dst[d]
                    if own != target:
                        ports[src] = port_base[d] + (
                            target if target < own else target - 1
                        )
                        break
            for d in range(ndim):
                coords[d] += 1
                if coords[d] < dims[d]:
                    break
                coords[d] = 0
        return ports

    def min_hop_sequence(self, src_router: int, dst_router: int) -> HopSequence:
        src, dst = self.coords(src_router), self.coords(dst_router)
        return tuple(
            L if d == 0 else G
            for d in range(len(self.dims))
            if src[d] != dst[d]
        )

    # -- groups / saturation --------------------------------------------------------
    def _compute_router_groups(self) -> List[List[int]]:
        # Dimension-0 rows; with dimension 0 fastest these are contiguous.
        s0 = self.dims[0]
        return [
            list(range(base, base + s0))
            for base in range(0, self.num_routers, s0)
        ]

    def num_global_ports(self, router: int) -> int:
        return self._radix - (self.dims[0] - 1)

    def global_port_index(self, router: int, port: int) -> int:
        if port < self.dims[0] - 1:
            raise ValueError(f"port {port} of router {router} is not a global port")
        self._check_port(port)
        return port - (self.dims[0] - 1)

    # -- misc -------------------------------------------------------------------------
    def describe(self) -> str:
        dims = "x".join(str(s) for s in self.dims)
        return (
            f"HyperX(S={dims}, p={self.p}): {self.num_routers} routers, "
            f"{self.num_nodes} nodes, radix {self.radix}"
        )

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.radix:
            raise ValueError(f"port {port} out of range [0, {self.radix})")


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HyperXParams:
    """HyperX(L, S, K) parameters.

    ``s`` is the per-dimension size vector (its length is L); a scalar ``s``
    with ``l`` builds the regular S^L lattice.  Only ``k = 1`` (no link
    trunking) is modeled.
    """

    s: Union[int, Tuple[int, ...]] = (4, 4)
    l: Optional[int] = None
    k: int = 1
    nodes_per_router: int = 2

    def dims(self) -> Tuple[int, ...]:
        if isinstance(self.s, int):
            return (self.s,) * (self.l if self.l is not None else 2)
        return tuple(self.s)

    def validate(self) -> None:
        if self.k != 1:
            raise ValueError("only HyperX K=1 (no link trunking) is modeled")
        if self.l is not None and self.l < 1:
            raise ValueError("HyperX L must be >= 1")
        if not isinstance(self.s, int) and self.l is not None \
                and self.l != len(tuple(self.s)):
            raise ValueError("HyperX L does not match the length of S")
        dims = self.dims()
        if not dims or dims[0] < 2 or any(x < 1 for x in dims):
            raise ValueError(f"invalid HyperX dimension sizes {dims}")
        if self.nodes_per_router < 1:
            raise ValueError("nodes_per_router must be >= 1")


@register_topology(
    "hyperx",
    HyperXParams,
    description="HyperX(L, S, K=1): L fully-connected dimensions under "
                "dimension-order routing",
)
def _build_hyperx(params: HyperXParams) -> HyperX:
    return HyperX(dims=params.dims(), p=params.nodes_per_router)
