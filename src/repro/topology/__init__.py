"""Low-diameter topologies: Dragonfly and Flattened Butterfly."""

from .base import PortInfo, Topology
from .dragonfly import Dragonfly
from .flattened_butterfly import FlattenedButterfly2D
from .graph_utils import (
    bfs_distances,
    degree_histogram,
    is_connected,
    measured_diameter,
    to_networkx,
    verify_bidirectional,
)

__all__ = [
    "Topology",
    "PortInfo",
    "Dragonfly",
    "FlattenedButterfly2D",
    "bfs_distances",
    "degree_histogram",
    "is_connected",
    "measured_diameter",
    "to_networkx",
    "verify_bidirectional",
]
