"""Low-diameter topologies behind a pluggable registry.

Importing this package registers the built-in topologies (Dragonfly,
Flattened Butterfly, HyperX, Megafly) with :data:`TOPOLOGIES`; third-party
code adds its own with :func:`register_topology`.
"""

from .base import PortInfo, Topology
from .dragonfly import Dragonfly, DragonflyParams
from .flattened_butterfly import FlattenedButterfly2D, FlattenedButterflyParams
from .graph_utils import (
    bfs_distances,
    degree_histogram,
    is_connected,
    measured_diameter,
    to_networkx,
    verify_bidirectional,
)
from .hyperx import HyperX, HyperXParams
from .megafly import Megafly, MegaflyParams
from .registry import TOPOLOGIES, TopologyRegistry, TopologySpec, register_topology

__all__ = [
    "Topology",
    "PortInfo",
    "Dragonfly",
    "DragonflyParams",
    "FlattenedButterfly2D",
    "FlattenedButterflyParams",
    "HyperX",
    "HyperXParams",
    "Megafly",
    "MegaflyParams",
    "TOPOLOGIES",
    "TopologyRegistry",
    "TopologySpec",
    "register_topology",
    "bfs_distances",
    "degree_histogram",
    "is_connected",
    "measured_diameter",
    "to_networkx",
    "verify_bidirectional",
]
