"""Topology interface shared by all low-diameter networks in this package."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..core.link_types import HopSequence, LinkType


@dataclass(frozen=True)
class PortInfo:
    """Description of a router network port."""

    port: int
    neighbor: int
    link_type: LinkType


class Topology(ABC):
    """Abstract direct-network topology.

    A topology knows its routers, the nodes attached to each router, the
    router-to-router links (with their :class:`LinkType`), and how to compute
    minimal next hops and minimal hop-type sequences — everything routing
    algorithms and VC policies need.

    Router network ports are numbered ``0 .. radix-1`` per router; injection
    and ejection are handled by the router model, not by the topology.
    """

    # -- size ----------------------------------------------------------------
    @property
    @abstractmethod
    def num_routers(self) -> int:
        """Number of routers in the network."""

    @property
    @abstractmethod
    def nodes_per_router(self) -> int:
        """Number of compute nodes attached to each router (``p``)."""

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.nodes_per_router

    @property
    @abstractmethod
    def radix(self) -> int:
        """Number of network (router-to-router) ports per router."""

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Maximum minimal path length, in router-to-router hops."""

    @property
    @abstractmethod
    def has_link_type_restrictions(self) -> bool:
        """True when links are typed and traversed in a fixed order (Dragonfly)."""

    # -- node/router mapping ---------------------------------------------------
    def router_of_node(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_router

    def nodes_of_router(self, router: int) -> range:
        self._check_router(router)
        p = self.nodes_per_router
        return range(router * p, (router + 1) * p)

    # -- connectivity -----------------------------------------------------------
    @abstractmethod
    def ports(self, router: int) -> Sequence[PortInfo]:
        """All network ports of ``router``."""

    @abstractmethod
    def port_to(self, router: int, neighbor: int) -> Optional[int]:
        """Port of ``router`` directly connected to ``neighbor`` (None if not adjacent)."""

    @abstractmethod
    def link_type(self, router: int, port: int) -> LinkType:
        """Link type of network port ``port`` of ``router``."""

    @abstractmethod
    def neighbor(self, router: int, port: int) -> int:
        """Router at the far end of ``port``."""

    def neighbors(self, router: int) -> Iterator[int]:
        for info in self.ports(router):
            yield info.neighbor

    # -- routing helpers ---------------------------------------------------------
    @abstractmethod
    def min_next_port(self, src_router: int, dst_router: int) -> Optional[int]:
        """First port of a minimal path ``src_router -> dst_router``.

        Returns ``None`` when source and destination are the same router.
        For topologies with link-type restrictions the returned hop respects
        the canonical traversal order (e.g. l-g-l in a Dragonfly).
        """

    @abstractmethod
    def min_hop_sequence(self, src_router: int, dst_router: int) -> HopSequence:
        """Hop-type sequence of the minimal path ``src_router -> dst_router``."""

    def min_distance(self, src_router: int, dst_router: int) -> int:
        return len(self.min_hop_sequence(src_router, dst_router))

    # -- misc ----------------------------------------------------------------------
    def link_latency(self, link_type: LinkType, local: int, global_: int) -> int:
        """Latency of a link of ``link_type`` given per-type latencies."""
        return local if link_type == LinkType.LOCAL else global_

    # -- validation helpers ----------------------------------------------------------
    def _check_router(self, router: int) -> None:
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range [0, {self.num_routers})")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
