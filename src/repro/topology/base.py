"""Topology interface shared by all low-diameter networks in this package."""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..core.link_types import HopSequence, LinkType, hop_counts


@dataclass(frozen=True)
class PortInfo:
    """Description of a router network port."""

    port: int
    neighbor: int
    link_type: LinkType


class Topology(ABC):
    """Abstract direct-network topology.

    A topology knows its routers, the nodes attached to each router, the
    router-to-router links (with their :class:`LinkType`), and how to compute
    minimal next hops and minimal hop-type sequences — everything routing
    algorithms and VC policies need.

    Router network ports are numbered ``0 .. radix-1`` per router; injection
    and ejection are handled by the router model, not by the topology.

    Beyond connectivity, a topology *declares* the routing-relevant shape the
    rest of the stack consumes generically (no implementation may special-case
    a topology by name or type):

    * :attr:`canonical_minimal_sequence` — the worst-case minimal hop-type
      sequence between node-attached routers, from which reference paths and
      VC requirements for MIN/VAL/PAR are derived;
    * :attr:`worst_escape_sequence` — the worst-case minimal continuation
      from an *arbitrary* router (longer than the canonical sequence only
      when transit-only routers exist, e.g. Megafly spines);
    * :meth:`router_groups` — the sets of routers connected through LOCAL
      links, used for adversarial traffic and Piggyback saturation boards;
    * :meth:`valiant_routers` — the routers eligible as Valiant
      intermediates (``None`` = all routers).
    """

    # -- size ----------------------------------------------------------------
    @property
    @abstractmethod
    def num_routers(self) -> int:
        """Number of routers in the network."""

    @property
    @abstractmethod
    def nodes_per_router(self) -> int:
        """Compute nodes attached to each node-bearing router (``p``)."""

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.nodes_per_router

    @property
    @abstractmethod
    def radix(self) -> int:
        """Number of network (router-to-router) ports per router."""

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Maximum minimal path length, in router-to-router hops."""

    @property
    @abstractmethod
    def has_link_type_restrictions(self) -> bool:
        """True when links are typed and traversed in a fixed order (Dragonfly)."""

    # -- declared routing shape -------------------------------------------------
    @property
    @abstractmethod
    def canonical_minimal_sequence(self) -> HopSequence:
        """Worst-case minimal hop-type sequence between node-attached routers.

        E.g. ``(L, G, L)`` for a Dragonfly, ``(L, G)`` for a 2D Flattened
        Butterfly, ``(L,) * diameter`` for untyped networks.
        """

    @property
    def worst_escape_sequence(self) -> HopSequence:
        """Worst-case minimal continuation from an arbitrary router."""
        return self.canonical_minimal_sequence

    def max_min_hop_counts(self) -> tuple[int, int]:
        """Worst-case ``(local, global)`` hops of a minimal path."""
        return hop_counts(self.canonical_minimal_sequence)

    def valiant_routers(self) -> Optional[Sequence[int]]:
        """Routers eligible as Valiant intermediates (``None`` = all)."""
        return None

    # -- node/router mapping ---------------------------------------------------
    def router_of_node(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_router

    def nodes_of_router(self, router: int) -> Sequence[int]:
        self._check_router(router)
        p = self.nodes_per_router
        return range(router * p, (router + 1) * p)

    @property
    def has_uniform_node_mapping(self) -> bool:
        """True when every router carries ``nodes_per_router`` contiguous nodes."""
        return True

    # -- connectivity -----------------------------------------------------------
    @abstractmethod
    def ports(self, router: int) -> Sequence[PortInfo]:
        """All network ports of ``router``."""

    @abstractmethod
    def port_to(self, router: int, neighbor: int) -> Optional[int]:
        """Port of ``router`` directly connected to ``neighbor`` (None if not adjacent)."""

    @abstractmethod
    def link_type(self, router: int, port: int) -> LinkType:
        """Link type of network port ``port`` of ``router``."""

    @abstractmethod
    def neighbor(self, router: int, port: int) -> int:
        """Router at the far end of ``port``."""

    def neighbors(self, router: int) -> Iterator[int]:
        for info in self.ports(router):
            yield info.neighbor

    # -- groups (LOCAL-connected router sets) -------------------------------------
    def router_groups(self) -> List[List[int]]:
        """Routers partitioned into LOCAL-connected components, sorted by id.

        For a Dragonfly these are its groups, for a HyperX/Flattened
        Butterfly the dimension-0 rows, for a Megafly the leaf+spine groups.
        Subclasses may override with a closed form; the default computes the
        components by traversal (cached).
        """
        cached = self.__dict__.get("_router_groups")
        if cached is None:
            cached = self._compute_router_groups()
            self.__dict__["_router_groups"] = cached
        return cached

    def _compute_router_groups(self) -> List[List[int]]:
        seen = [False] * self.num_routers
        groups: List[List[int]] = []
        for start in range(self.num_routers):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for info in self.ports(current):
                    if info.link_type == LinkType.LOCAL and not seen[info.neighbor]:
                        seen[info.neighbor] = True
                        component.append(info.neighbor)
                        frontier.append(info.neighbor)
            component.sort()
            groups.append(component)
        return groups

    def group_slot(self, router: int) -> tuple[int, int]:
        """``(group_index, position_within_group)`` of ``router``."""
        slots = self.__dict__.get("_group_slots")
        if slots is None:
            slots = [(-1, -1)] * self.num_routers
            for gid, members in enumerate(self.router_groups()):
                for position, member in enumerate(members):
                    slots[member] = (gid, position)
            self.__dict__["_group_slots"] = slots
        return slots[router]

    # -- global-port indexing (saturation boards) ------------------------------------
    def _global_port_row(self, router: int) -> dict:
        """Cached ``port -> global-port index`` mapping of one router.

        Route-table construction asks :meth:`global_port_index` for every
        GLOBAL hop it propagates, so the per-call O(radix) rescan of
        ``ports(router)`` is paid once per router here and every later call
        is a dict lookup.  Closed-form topologies (Dragonfly, Megafly,
        HyperX) override the public methods and never touch this cache.
        """
        rows = self.__dict__.get("_global_port_rows")
        if rows is None:
            rows = self.__dict__["_global_port_rows"] = {}
        row = rows.get(router)
        if row is None:
            row = {}
            for info in self.ports(router):
                if info.link_type == LinkType.GLOBAL:
                    row[info.port] = len(row)
            rows[router] = row
        return row

    def num_global_ports(self, router: int) -> int:
        """Number of GLOBAL-typed network ports of ``router``."""
        return len(self._global_port_row(router))

    def global_port_index(self, router: int, port: int) -> int:
        """Index of GLOBAL port ``port`` among the router's global ports."""
        index = self._global_port_row(router).get(port)
        if index is None:
            # Out-of-range ports raise the topology's own link_type error,
            # matching the pre-cache behaviour.
            self.link_type(router, port)
            raise ValueError(f"port {port} of router {router} is not a global port")
        return index

    # -- routing helpers ---------------------------------------------------------
    @abstractmethod
    def min_next_port(self, src_router: int, dst_router: int) -> Optional[int]:
        """First port of a minimal path ``src_router -> dst_router``.

        Returns ``None`` when source and destination are the same router.
        For topologies with link-type restrictions the returned hop respects
        the canonical traversal order (e.g. l-g-l in a Dragonfly).
        """

    def min_next_ports_to(self, dst_router: int) -> Sequence[int]:
        """First minimal-hop port towards ``dst_router`` for *every* source.

        Returns a dense length-``num_routers`` integer sequence with ``-1``
        at ``dst_router`` itself (no hop needed).  This is the batch form of
        :meth:`min_next_port` that per-destination route-column construction
        consumes; the generic fallback calls :meth:`min_next_port` once per
        source, and closed-form topologies override it to derive the shared
        ingredients (gateway router, destination coordinates) once per
        column instead of once per pair.  Overrides must agree with
        :meth:`min_next_port` entry for entry (locked by tests).
        """
        self._check_router(dst_router)
        ports = array("i", [-1]) * self.num_routers
        min_next_port = self.min_next_port
        for src in range(self.num_routers):
            if src == dst_router:
                continue
            port = min_next_port(src, dst_router)
            ports[src] = -1 if port is None else port
        return ports

    def min_hop_sequence(self, src_router: int, dst_router: int) -> HopSequence:
        """Hop-type sequence of the minimal path ``src_router -> dst_router``.

        The default walks :meth:`min_next_port`; subclasses may override with
        a closed form.  (The hot path never calls either — it reads the
        precomputed :class:`~repro.routing.route_table.RouteTable`.)
        """
        return self._walk_min_sequence(src_router, dst_router)

    def _walk_min_sequence(self, src_router: int, dst_router: int) -> HopSequence:
        seq: list[LinkType] = []
        current = src_router
        limit = self.num_routers
        while current != dst_router:
            port = self.min_next_port(current, dst_router)
            if port is None or len(seq) > limit:
                raise RuntimeError(
                    f"minimal route {src_router}->{dst_router} does not converge"
                )
            seq.append(self.link_type(current, port))
            current = self.neighbor(current, port)
        return tuple(seq)

    def min_distance(self, src_router: int, dst_router: int) -> int:
        return len(self.min_hop_sequence(src_router, dst_router))

    # -- misc ----------------------------------------------------------------------
    def link_latency(self, link_type: LinkType, local: int, global_: int) -> int:
        """Latency of a link of ``link_type`` given per-type latencies."""
        return local if link_type == LinkType.LOCAL else global_

    def describe(self) -> str:
        """Human-readable summary of the configuration."""
        return (
            f"{type(self).__name__}: {self.num_routers} routers, "
            f"{self.num_nodes} nodes, radix {self.radix}"
        )

    # -- validation helpers ----------------------------------------------------------
    def _check_router(self, router: int) -> None:
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range [0, {self.num_routers})")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
