"""Routing algorithms: MIN, Valiant, PAR and Piggyback."""

from __future__ import annotations

import random

from ..config import RoutingConfig
from ..core.arrangement import VcArrangement
from ..core.vc_policy import VcPolicy
from ..core.vc_selection import VcSelection
from ..topology.base import Topology
from .base import CandidateHop, EjectionRequest, Plan, RoutingAlgorithm
from .minimal import MinimalRouting
from .par import ProgressiveAdaptiveRouting
from .piggyback import PiggybackRouting
from .route_table import LazyRouteTable, RouteTable, make_route_table
from .valiant import ValiantRouting

_ALGORITHMS = {
    "min": MinimalRouting,
    "val": ValiantRouting,
    "par": ProgressiveAdaptiveRouting,
    "pb": PiggybackRouting,
}


def make_routing(
    topology: Topology,
    policy: VcPolicy,
    selection: VcSelection,
    config: RoutingConfig,
    arrangement: VcArrangement,
    rng: random.Random,
    route_table=None,
) -> RoutingAlgorithm:
    """Instantiate the routing algorithm named in ``config.algorithm``.

    ``route_table`` shares one precomputed route table (:class:`RouteTable`
    or :class:`LazyRouteTable`) across consumers; when omitted the algorithm
    builds its own via :func:`make_route_table`.
    """
    try:
        cls = _ALGORITHMS[config.algorithm]
    except KeyError as exc:
        raise ValueError(f"unknown routing algorithm {config.algorithm!r}") from exc
    return cls(topology, policy, selection, config, arrangement, rng, route_table)


__all__ = [
    "RoutingAlgorithm",
    "CandidateHop",
    "EjectionRequest",
    "Plan",
    "MinimalRouting",
    "ValiantRouting",
    "ProgressiveAdaptiveRouting",
    "PiggybackRouting",
    "RouteTable",
    "LazyRouteTable",
    "make_route_table",
    "make_routing",
]
