"""Routing algorithms: MIN, Valiant, PAR and Piggyback."""

from __future__ import annotations

import random
from typing import Optional

from ..config import RoutingConfig
from ..core.arrangement import VcArrangement
from ..core.vc_policy import VcPolicy
from ..core.vc_selection import VcSelection
from ..topology.base import Topology
from .base import CandidateHop, EjectionRequest, Plan, RoutingAlgorithm
from .minimal import MinimalRouting
from .par import ProgressiveAdaptiveRouting
from .piggyback import PiggybackRouting
from .route_table import RouteTable
from .valiant import ValiantRouting

_ALGORITHMS = {
    "min": MinimalRouting,
    "val": ValiantRouting,
    "par": ProgressiveAdaptiveRouting,
    "pb": PiggybackRouting,
}


def make_routing(
    topology: Topology,
    policy: VcPolicy,
    selection: VcSelection,
    config: RoutingConfig,
    arrangement: VcArrangement,
    rng: random.Random,
    route_table: Optional[RouteTable] = None,
) -> RoutingAlgorithm:
    """Instantiate the routing algorithm named in ``config.algorithm``.

    ``route_table`` shares one precomputed :class:`RouteTable` across
    consumers; when omitted the algorithm builds its own.
    """
    try:
        cls = _ALGORITHMS[config.algorithm]
    except KeyError as exc:
        raise ValueError(f"unknown routing algorithm {config.algorithm!r}") from exc
    return cls(topology, policy, selection, config, arrangement, rng, route_table)


__all__ = [
    "RoutingAlgorithm",
    "CandidateHop",
    "EjectionRequest",
    "Plan",
    "MinimalRouting",
    "ValiantRouting",
    "ProgressiveAdaptiveRouting",
    "PiggybackRouting",
    "RouteTable",
    "make_routing",
]
