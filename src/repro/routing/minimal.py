"""Minimal (MIN) oblivious routing."""

from __future__ import annotations

from .base import RoutingAlgorithm


class MinimalRouting(RoutingAlgorithm):
    """Shortest-path routing: optimal under uniform traffic, pathological under
    adversarial patterns (the single inter-group link saturates)."""

    name = "min"

    # Minimal routing needs no injection-time or in-transit decisions: the
    # defaults of :class:`RoutingAlgorithm` already route every packet along
    # its minimal path.
