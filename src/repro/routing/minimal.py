"""Minimal (MIN) oblivious routing."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.link_types import LinkType
from ..packet import Packet
from .base import EjectionRequest, Plan, RoutingAlgorithm, _MEMO_CAP

if TYPE_CHECKING:  # pragma: no cover
    from ..router.router import Router


class MinimalRouting(RoutingAlgorithm):
    """Shortest-path routing: optimal under uniform traffic, pathological under
    adversarial patterns (the single inter-group link saturates)."""

    name = "min"

    # Minimal routing needs no injection-time or in-transit decisions: the
    # defaults of :class:`RoutingAlgorithm` already route every packet along
    # its minimal path.

    def plan(
        self,
        router: "Router",
        packet: Packet,
        input_type: Optional[LinkType],
        input_vc: int,
    ) -> Plan:
        """Hot-path specialization of :meth:`RoutingAlgorithm.plan`.

        MIN packets never carry Valiant/PAR state, so the generic method's
        decision hooks and detour branches are dead; dropping them keeps the
        per-head cost at a memo lookup.  Behaviour-identical to the base
        implementation (the route_decided stamp is preserved for parity).
        """
        here = router.router_id
        dst_router = packet.dst_router
        if dst_router < 0:
            dst_router = self.topology.router_of_node(packet.dst_node)
            packet.dst_router = dst_router
        if dst_router == here:
            eject_key = (packet.dst_node, packet.msg_class)
            ejection = self._ejection_memo.get(eject_key)
            if ejection is None:
                ejection = EjectionRequest(
                    node=packet.dst_node, msg_class=packet.msg_class
                )
                self._ejection_memo[eject_key] = ejection
            return ejection
        packet.route_decided = True
        phase_local = packet.phase_local
        phase_global = packet.phase_global
        phase_position = packet.phase_position
        phase_global_taken = packet.phase_global_taken
        if (0 <= phase_local < 16 and 0 <= phase_global < 16
                and 0 <= phase_position < 32
                and 0 <= phase_global_taken < 16 and -1 <= input_vc < 15):
            key = (here * self._key_routers + dst_router) * 2 + packet.msg_class
            key = key * 3 + (0 if input_type is None else input_type + 1)
            key = (key * 16 + input_vc + 1) * 16 + phase_local
            key = ((key * 16 + phase_global) * 32 + phase_position) * 16 \
                + phase_global_taken
        else:  # pragma: no cover - beyond any canonical reference shape
            key = (
                here, dst_router, packet.msg_class, input_type, input_vc,
                phase_local, phase_global, phase_position, phase_global_taken,
            )
        cached = self._plan_memo.get(key)
        if cached is None:
            direct = self._candidate_towards(
                router, packet, dst_router, input_type, input_vc, is_detour=False
            )
            cached = [direct] if direct is not None else []
            if len(self._plan_memo) >= _MEMO_CAP:
                self._plan_memo.clear()
            self._plan_memo[key] = cached
        return cached
