"""Progressive Adaptive Routing (PAR) — in-transit adaptive routing.

PAR (Jiang, Kim & Dally) starts every packet on its minimal path and may
switch it to a Valiant path after a minimal hop, once better congestion
information is available.  The paper provisions 5/2 VCs for PAR under
distance-based deadlock avoidance (reference path l0-l1-g2-l3-l4-g5-l6) and
shows in Table III how FlexVC supports it opportunistically with as few as
3/2 VCs; its simulation results are omitted from the paper "for brevity", so
PAR here is exercised by tests and examples rather than by a figure
benchmark.

Decision rule: when the packet reaches its second router (or immediately at
injection when the source router already owns the minimal global link), PAR
compares the local credit occupancy of the minimal continuation against a
candidate Valiant continuation, UGAL-style, and diverts when the minimal
queue looks congested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..packet import Packet, RouteKind
from .base import RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from ..router.router import Router


class ProgressiveAdaptiveRouting(RoutingAlgorithm):
    """In-transit adaptive routing with a single MIN->VAL diversion point."""

    name = "par"

    def decide_at_injection(self, router: "Router", packet: Packet) -> None:
        # PAR normally waits for one minimal hop; if the source router already
        # owns the minimal global link there is no earlier decision point, so
        # it decides right away (equivalent to UGAL-L at injection).
        dst_router = self.topology.router_of_node(packet.dst_node)
        first_hop = self.route.column(dst_router).next_port(router.router_id)
        if first_hop is None:
            packet.par_decided = True
            return
        from ..core.link_types import LinkType

        if self.topology.link_type(router.router_id, first_hop) == LinkType.GLOBAL:
            self._evaluate(router, packet)

    def maybe_divert_in_transit(self, router: "Router", packet: Packet) -> None:
        if packet.par_decided or packet.hops == 0:
            return
        dst_router = self.topology.router_of_node(packet.dst_node)
        if self.topology.router_of_node(packet.dst_node) == router.router_id:
            packet.par_decided = True
            return
        # Only divert while the packet is still routed minimally and has not
        # yet crossed a global link.
        if packet.route_kind == RouteKind.VALIANT or packet.phase_global_taken:
            packet.par_decided = True
            return
        self._evaluate(router, packet)
        _ = dst_router

    # -- decision -----------------------------------------------------------
    def _evaluate(self, router: "Router", packet: Packet) -> None:
        packet.par_decided = True
        dst_router = self.topology.router_of_node(packet.dst_node)
        intermediate = self._pick_intermediate(packet, router.router_id, dst_router)
        q_min = self._local_queue_metric(router, dst_router)
        q_nonmin = self._local_queue_metric(router, intermediate)
        threshold = self.config.pb_threshold * packet.size_phits
        if q_min > 2 * q_nonmin + threshold:
            packet.mark_valiant(intermediate)
            # The pre-diversion minimal hops consumed the first reference slot;
            # the Valiant detour starts at the next slot window.
            if packet.hops > 0:
                packet.begin_phase((min(packet.hops, 1), 0))
                packet.intermediate_reached = False
