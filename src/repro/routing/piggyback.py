"""Piggyback (PB) source-adaptive routing with remote congestion sensing.

PB (Jiang, Kim & Dally, ISCA 2009) is the source-adaptive mechanism evaluated
in Section V-C.  Every router measures the credit occupancy of its global
ports, marks as *saturated* those whose occupancy exceeds the router's average
by 50%, and piggybacks these bits to the other routers of its group (the
topology's LOCAL-connected router set — a Dragonfly group, a HyperX
dimension-0 row, a Megafly leaf/spine group).  At injection, the source
router combines the saturation bit of the first global link on the minimal
path with a local UGAL-style credit comparison to decide between the minimal
path and a Valiant detour.

The first-global-link lookup reads the precomputed
:class:`~repro.routing.route_table.RouteTable`; the bit is only available
when that link is owned by a router of the source's own group (always true in
a Dragonfly, where it is the classic "gateway router"), so no code here
depends on the concrete topology.

Sensing variants (Figure 8):

* **per-port** — the saturation metric is the total occupancy of all VCs of
  the global port;
* **per-VC** — only the first VC of the port (the VC minimal traffic uses
  under distance-based management; with request-reply traffic, the first VC
  of each sub-path) is considered;
* **minCred** (``pb_min_credits_only``) — FlexVC-minCred: only credits held by
  minimally-routed packets are counted, restoring the pattern-identification
  ability that FlexVC's buffer sharing blurs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.link_types import LinkType, MessageClass
from ..packet import Packet
from .base import RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from ..router.router import Router


class PiggybackRouting(RoutingAlgorithm):
    """UGAL-style source-adaptive routing driven by piggybacked saturation bits."""

    name = "pb"

    # -- sensing helpers -------------------------------------------------------
    def sensing_vc(self, msg_class: MessageClass) -> int:
        """First VC of the message class's sub-path (per-VC sensing)."""
        if msg_class == MessageClass.REPLY and self.arrangement.is_reactive:
            return self.arrangement.request_global if self.arrangement.request_global > 0 else 0
        return 0

    def _queue_metric(self, router: "Router", target_router: int,
                      msg_class: MessageClass) -> int:
        out_port = self.route.column(target_router).next_port(router.router_id)
        if out_port is None:
            return 0
        tracker = router.output_ports[out_port].credits
        per_vc = self.config.pb_sensing == "vc"
        vc = min(self.sensing_vc(msg_class), tracker.num_vcs - 1)
        return tracker.occupancy_metric(per_vc, vc, self.config.pb_min_credits_only)

    def _min_global_saturated(self, router: "Router", packet: Packet,
                              dst_col) -> bool:
        """Saturation bit of the first global link on the packet's minimal path."""
        board = router.saturation_board
        if board is None:
            return False
        link = dst_col.first_global_link(router.router_id)
        if link is None:
            return False  # all-local path: no global link to protect
        owner, gport = link
        topo = self.topology
        src_group, _ = topo.group_slot(router.router_id)
        owner_group, owner_position = topo.group_slot(owner)
        if owner_group != src_group:
            # The minimal path enters its first global link outside the
            # source's group: no piggybacked information is available.
            return False
        class_index = 1 if (packet.msg_class == MessageClass.REPLY
                            and self.arrangement.is_reactive
                            and self.config.pb_sensing == "vc") else 0
        return board.is_saturated(owner_position, gport, class_index)

    # -- injection decision ---------------------------------------------------------
    def decide_at_injection(self, router: "Router", packet: Packet) -> None:
        src_router = router.router_id
        dst_router = self.topology.router_of_node(packet.dst_node)
        if dst_router == src_router:
            return
        # One destination-column view serves the sequence test and the
        # first-global-link sensing below (a single lazy column fill).
        dst_col = self.route.column(dst_router)
        seq = dst_col.hop_sequence(src_router)
        if LinkType.GLOBAL not in seq:
            # Intra-group traffic: always minimal (no global link to protect).
            return
        intermediate = self._pick_intermediate(packet, src_router, dst_router)
        saturated = self._min_global_saturated(router, packet, dst_col)
        q_min = self._queue_metric(router, dst_router, packet.msg_class)
        q_nonmin = self._queue_metric(router, intermediate, packet.msg_class)
        threshold = self.config.pb_threshold * packet.size_phits
        if saturated or q_min > 2 * q_nonmin + threshold:
            packet.mark_valiant(intermediate)
