"""Routing algorithm interface and shared forwarding machinery.

A routing algorithm answers one question per head packet per router: *where
should this packet go next, and which virtual channels may it use?*  The
answer is a prioritized list of :class:`CandidateHop` objects (or an
:class:`EjectionRequest` when the packet has reached its destination router).

The shared machinery in :class:`RoutingAlgorithm` handles everything that is
common to MIN, Valiant, PAR and Piggyback:

* computing the intended remaining hop-type sequence and the minimal escape
  path from the next router (the inputs of the VC policy);
* tracking the packet's routing *phase* so the distance-based baseline can
  align hops onto its reference path;
* offering the safe escape (minimal continuation) as a fallback candidate for
  opportunistic hops, per Section III-A ("packets revert to the corresponding
  safe path as an escape path" when the opportunistic buffer has no room).

Concrete algorithms only implement the decision hooks: what to do at
injection (:meth:`decide_at_injection`) and, for in-transit adaptive routing,
whether to divert mid-path (:meth:`maybe_divert_in_transit`).
"""

from __future__ import annotations

import random
from abc import ABC
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

from ..config import RoutingConfig
from ..core.arrangement import VcArrangement
from ..core.link_types import HopSequence, LinkType, MessageClass
from ..core.vc_policy import HopContext, HopKind, VcPolicy, VcRange
from ..core.vc_selection import VcSelection
from ..packet import Packet, RouteKind
from ..topology.base import Topology
from .route_table import make_route_table

if TYPE_CHECKING:  # pragma: no cover
    from ..router.router import Router

#: bound on the plan/candidate memo dictionaries: the key population grows
#: with the distinct (here, dst, phase-state) situations actually traversed
#: — effectively O(n²) under uniform traffic at 10^5-endpoint scale — so
#: each memo is cleared wholesale when it reaches this many entries.  The
#: constructions are pure (no RNG; randomness lives in the per-packet
#: injection decisions), so a rebuilt entry is identical and the clear is
#: invisible in results.  ~262k entries keep worst-case memo memory around
#: 70 MB; canonical paper-scale runs stay far below the cap, and at system
#: scale rebuilding after a clear costs well under a cycle's worth of work.
_MEMO_CAP = 1 << 18


@dataclass(slots=True)
class CandidateHop:
    """One admissible forwarding option for a head packet."""

    out_port: int
    next_router: int
    out_type: LinkType
    vc_range: VcRange
    opportunistic: bool = False
    #: granting this hop lands the packet on its Valiant intermediate router.
    reaches_intermediate: bool = False
    #: granting this hop abandons the remaining detour (escape fallback).
    abandons_detour: bool = False
    #: flattened copies of ``vc_range.lo`` / ``vc_range.hi`` so the allocator
    #: inner loop reads plain ints (filled in ``__post_init__``).
    vc_lo: int = -1
    vc_hi: int = -1
    #: packed router-resolved evaluation record — ``(out_port, vc_lo, vc_hi,
    #: out_state_base, credit_free_base, out_buffer_capacity,
    #: pending_releases, credit_fail_mask)``.  Candidates are memoized per
    #: router (the cache key includes the router id), so the router-local
    #: slab indices and references can be burned in at construction; the
    #: allocator then evaluates a candidate with a single attribute load
    #: plus flat reads.  Filled by RoutingAlgorithm._build_candidate;
    #: hand-built candidates (tests) keep the 3-field prefix form.
    hot: tuple = ()
    #: grant-time fast-path flags: a *simple* hop updates only the packet's
    #: hop/phase counters, so the router inlines it; detour-affecting hops
    #: go through RoutingAlgorithm.on_hop_taken.
    is_global_hop: bool = False
    simple_hop: bool = False

    def __post_init__(self) -> None:
        self.vc_lo = self.vc_range.lo
        self.vc_hi = self.vc_range.hi
        self.hot = (self.out_port, self.vc_lo, self.vc_hi)
        self.is_global_hop = self.out_type == LinkType.GLOBAL
        self.simple_hop = not (self.reaches_intermediate or self.abandons_detour)


@dataclass(slots=True)
class EjectionRequest:
    """The packet has reached its destination router and awaits consumption."""

    node: int
    msg_class: MessageClass
    #: flat ejection-port slot on the destination router (``2 * local_node +
    #: msg_class``), filled lazily by the first allocator evaluation.  Safe to
    #: cache on this shared memoized object because only the (unique)
    #: destination router of ``node`` ever plans an ejection for it.
    slot: int = -1


Plan = Union[EjectionRequest, List[CandidateHop]]


class RoutingAlgorithm(ABC):
    """Base class of MIN / VAL / PAR / Piggyback routing."""

    #: human-readable name, overridden by subclasses.
    name = "abstract"

    def __init__(
        self,
        topology: Topology,
        policy: VcPolicy,
        selection: VcSelection,
        config: RoutingConfig,
        arrangement: VcArrangement,
        rng: random.Random,
        route_table=None,
    ) -> None:
        self.topology = topology
        self.policy = policy
        self.selection = selection
        self.config = config
        self.arrangement = arrangement
        self.rng = rng
        #: precomputed minimal-route tables (dense or lazy column shards —
        #: identical answers); every minimal next-port / hop-sequence query
        #: on the hot path reads these instead of the topology's per-pair
        #: computations.
        self.route = (
            route_table if route_table is not None else make_route_table(topology)
        )
        #: reference-slot contribution of one minimal segment (phase), used to
        #: advance the baseline's slot offsets between phases.
        if topology.has_link_type_restrictions:
            self.phase_ref = topology.max_min_hop_counts()
        else:
            self.phase_ref = (max(2, topology.diameter), 0)
        #: routers eligible as Valiant intermediates (None = all routers).
        self._valiant_pool = topology.valiant_routers()
        #: memoized candidate hops — the construction is a pure function of
        #: (location, target, destination, class, input, phase state), and
        #: :class:`CandidateHop` objects are immutable in practice, so the
        #: same instance is shared by every packet in the same situation.
        #: Both memos are *bounded*: keys scale with (here, dst) pairs
        #: actually traversed, which approaches O(n²) under uniform traffic
        #: at system scale — an unbounded memo would quietly reintroduce
        #: the dense table's quadratic memory.  At :data:`_MEMO_CAP`
        #: entries the memo is cleared wholesale (purity makes the rebuild
        #: answer-identical, and plan lists held by callers stay valid);
        #: canonical paper-scale runs never reach the cap, so goldens see
        #: zero behaviour change.
        self._candidate_cache: dict = {}
        #: memoized whole plans for the minimal branch (same purity argument;
        #: plan lists are shared and never mutated), and ejection requests.
        self._plan_memo: dict = {}
        # devtools: unbounded-ok(keyed by (dst router, msg class): at most 2n entries)
        self._ejection_memo: dict = {}
        #: packed-int plan-memo keys: every component is a small bounded
        #: non-negative int (after the +1 shifts), so the key packs into one
        #: integer — int hashing is much cheaper than hashing a 9-tuple.
        #: Out-of-range phase state (never produced by the canonical
        #: reference shapes) falls back to tuple keys, which cannot collide
        #: with ints in the same dict.
        self._key_routers = topology.num_routers
        #: hook elision: algorithms that keep the base-class no-op hooks
        #: (e.g. MIN/VAL never divert in transit) skip the virtual call on
        #: every plan computation.
        self._has_injection_hook = (
            type(self).decide_at_injection is not RoutingAlgorithm.decide_at_injection
        )
        self._has_transit_hook = (
            type(self).maybe_divert_in_transit
            is not RoutingAlgorithm.maybe_divert_in_transit
        )

    # ------------------------------------------------------------------
    # Fault support
    # ------------------------------------------------------------------
    def invalidate_route_caches(self) -> None:
        """Flush every memo that bakes in route-table answers.

        Called by the fault controller after re-table-ing: plans and
        candidates (including their burned-in ``hot`` tuples) embed next
        ports read from the mutated columns.  The ejection memo survives —
        ejection requests depend only on the (static) node attachment.
        """
        self._plan_memo.clear()
        self._candidate_cache.clear()

    # ------------------------------------------------------------------
    # Decision hooks
    # ------------------------------------------------------------------
    def decide_at_injection(self, router: "Router", packet: Packet) -> None:
        """Choose MIN vs Valiant for a packet about to leave its source router.

        The default (minimal routing) does nothing.
        """

    def maybe_divert_in_transit(self, router: "Router", packet: Packet) -> None:
        """In-transit adaptive hook (PAR).  Default: never divert."""

    # ------------------------------------------------------------------
    # Plan computation
    # ------------------------------------------------------------------
    def plan(
        self,
        router: "Router",
        packet: Packet,
        input_type: Optional[LinkType],
        input_vc: int,
    ) -> Plan:
        """Forwarding plan for ``packet`` currently heading a queue at ``router``."""
        here = router.router_id
        dst_router = packet.dst_router
        if dst_router < 0:
            dst_router = self.topology.router_of_node(packet.dst_node)
            packet.dst_router = dst_router
        if dst_router == here:
            eject_key = (packet.dst_node, packet.msg_class)
            ejection = self._ejection_memo.get(eject_key)
            if ejection is None:
                ejection = EjectionRequest(node=packet.dst_node, msg_class=packet.msg_class)
                self._ejection_memo[eject_key] = ejection
            return ejection

        if not packet.route_decided:
            if self._has_injection_hook:
                self.decide_at_injection(router, packet)
            packet.route_decided = True
        if self._has_transit_hook:
            self.maybe_divert_in_transit(router, packet)

        if packet.route_kind == RouteKind.VALIANT and not packet.intermediate_reached:
            if packet.intermediate_router == here:
                # Landed on the intermediate without taking a hop (possible when
                # the intermediate equals the source router's neighbourhood).
                self._enter_second_phase(packet)

        if packet.route_kind == RouteKind.VALIANT and not packet.intermediate_reached:
            candidates: List[CandidateHop] = []
            detour = self._candidate_towards(
                router, packet, packet.intermediate_router, input_type, input_vc,
                is_detour=True,
            )
            if detour is not None:
                candidates.append(detour)
                if detour.opportunistic:
                    escape = self._candidate_towards(
                        router, packet, dst_router, input_type, input_vc,
                        is_detour=False, abandons_detour=True,
                    )
                    if escape is not None:
                        candidates.append(escape)
            return candidates

        # Minimal continuation (MIN packets, and Valiant packets past their
        # intermediate — both take the same minimal path from here): the whole
        # plan is a pure function of this key, so memoize it.
        phase_local = packet.phase_local
        phase_global = packet.phase_global
        phase_position = packet.phase_position
        phase_global_taken = packet.phase_global_taken
        if (0 <= phase_local < 16 and 0 <= phase_global < 16
                and 0 <= phase_position < 32
                and 0 <= phase_global_taken < 16 and -1 <= input_vc < 15):
            key = (here * self._key_routers + dst_router) * 2 + packet.msg_class
            key = key * 3 + (0 if input_type is None else input_type + 1)
            key = (key * 16 + input_vc + 1) * 16 + phase_local
            key = ((key * 16 + phase_global) * 32 + phase_position) * 16 \
                + phase_global_taken
        else:  # pragma: no cover - beyond any canonical reference shape
            key = (
                here, dst_router, packet.msg_class, input_type, input_vc,
                phase_local, phase_global, phase_position, phase_global_taken,
            )
        cached = self._plan_memo.get(key)
        if cached is None:
            direct = self._candidate_towards(
                router, packet, dst_router, input_type, input_vc, is_detour=False
            )
            cached = [direct] if direct is not None else []
            if len(self._plan_memo) >= _MEMO_CAP:
                self._plan_memo.clear()
            self._plan_memo[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Candidate construction helpers
    # ------------------------------------------------------------------
    def _candidate_towards(
        self,
        router: "Router",
        packet: Packet,
        target_router: int,
        input_type: Optional[LinkType],
        input_vc: int,
        is_detour: bool,
        abandons_detour: bool = False,
    ) -> Optional[CandidateHop]:
        """Candidate for the next minimal hop towards ``target_router`` (memoized).

        ``plan`` only requests detours towards ``packet.intermediate_router``,
        so the cache key below captures every packet attribute the
        construction reads.
        """
        here = router.router_id
        dst_router = packet.dst_router  # resolved by plan() before this point
        phase_local = packet.phase_local
        phase_global = packet.phase_global
        phase_position = packet.phase_position
        phase_global_taken = packet.phase_global_taken
        if (0 <= phase_local < 16 and 0 <= phase_global < 16
                and 0 <= phase_position < 32
                and 0 <= phase_global_taken < 16 and -1 <= input_vc < 15):
            n = self._key_routers
            key = (here * n + target_router) * n + dst_router
            key = key * 2 + packet.msg_class
            key = key * 3 + (0 if input_type is None else input_type + 1)
            key = (key * 16 + input_vc + 1) * 16 + phase_local
            key = ((key * 16 + phase_global) * 32 + phase_position) * 16 \
                + phase_global_taken
            key = (key * 2 + is_detour) * 2 + abandons_detour
        else:  # pragma: no cover - beyond any canonical reference shape
            key = (
                here, target_router, dst_router, packet.msg_class,
                input_type, input_vc, phase_local, phase_global,
                phase_position, phase_global_taken, is_detour, abandons_detour,
            )
        try:
            return self._candidate_cache[key]
        except KeyError:
            candidate = self._build_candidate(
                here, dst_router, packet, target_router, input_type, input_vc,
                is_detour, abandons_detour,
            )
            if candidate is not None:
                candidate.hot = router.resolve_candidate(candidate)
            if len(self._candidate_cache) >= _MEMO_CAP:
                self._candidate_cache.clear()
            self._candidate_cache[key] = candidate
            return candidate

    def _build_candidate(
        self,
        here: int,
        dst_router: int,
        packet: Packet,
        target_router: int,
        input_type: Optional[LinkType],
        input_vc: int,
        is_detour: bool,
        abandons_detour: bool,
    ) -> Optional[CandidateHop]:
        # Column views: one route-table column lookup per destination keeps
        # every per-source query below a single flat index, which is what
        # lets the lazy front-end touch (and possibly fill) each needed
        # column exactly once per candidate construction.
        target_col = self.route.column(target_router)
        out_port = target_col.next_port(here)
        if out_port is None:
            return None
        next_router = self.route.neighbor(here, out_port)
        out_type = self.route.link_type(here, out_port)
        dst_col = (
            target_col if target_router == dst_router
            else self.route.column(dst_router)
        )
        intended = self._intended_remaining(here, packet, target_router,
                                            target_col, dst_col, abandons_detour)
        escape = dst_col.hop_sequence(next_router)
        ctx = HopContext(
            msg_class=packet.msg_class,
            out_type=out_type,
            intended_remaining=intended,
            escape_from_next=escape,
            input_type=input_type,
            input_vc=input_vc,
            phase_offsets=packet.phase_offsets,
            phase_position=packet.phase_position,
            phase_global_taken=packet.phase_global_taken,
        )
        vc_range, kind = self.policy.evaluate(ctx)
        if vc_range is None:
            return None
        opportunistic = kind == HopKind.OPPORTUNISTIC
        reaches_intermediate = (
            is_detour and next_router == packet.intermediate_router
        )
        return CandidateHop(
            out_port=out_port,
            next_router=next_router,
            out_type=out_type,
            vc_range=vc_range,
            opportunistic=opportunistic,
            reaches_intermediate=reaches_intermediate,
            abandons_detour=abandons_detour,
        )

    def _intended_remaining(
        self,
        here: int,
        packet: Packet,
        target_router: int,
        target_col,
        dst_col,
        abandons_detour: bool,
    ) -> HopSequence:
        """Hop-type sequence of the packet's intended route from ``here``."""
        if abandons_detour or packet.route_kind == RouteKind.MINIMAL \
                or packet.intermediate_reached:
            return dst_col.hop_sequence(here)
        first_leg = target_col.hop_sequence(here)
        second_leg = dst_col.hop_sequence(target_router)
        return first_leg + second_leg

    # ------------------------------------------------------------------
    # State updates on grant
    # ------------------------------------------------------------------
    def on_hop_taken(self, packet: Packet, candidate: CandidateHop) -> None:
        """Update the packet's routing/phase state after a granted hop."""
        packet.hops += 1
        packet.phase_position += 1
        if candidate.out_type == LinkType.GLOBAL:
            packet.phase_global_taken += 1
        if candidate.abandons_detour:
            # The packet reverts to its safe minimal continuation.
            packet.intermediate_reached = True
            self._enter_second_phase(packet)
        elif candidate.reaches_intermediate:
            packet.intermediate_reached = True
            self._enter_second_phase(packet)
        # No plan-cache invalidation needed here: the hop's grant popped the
        # packet from its input VC, which cleared the port's head-plan entry.

    def _enter_second_phase(self, packet: Packet) -> None:
        packet.begin_phase((packet.phase_local + self.phase_ref[0],
                            packet.phase_global + self.phase_ref[1]))
        packet.intermediate_reached = True

    # ------------------------------------------------------------------
    # Shared decision utilities (used by VAL / PAR / PB)
    # ------------------------------------------------------------------
    def _pick_intermediate(self, packet: Packet, src_router: int, dst_router: int) -> int:
        """Uniformly random eligible intermediate distinct from source and destination.

        Topologies restrict the pool through
        :meth:`~repro.topology.base.Topology.valiant_routers` (e.g. Megafly
        limits it to node-attached leaf routers); the default pool is every
        router.
        """
        pool = self._valiant_pool
        if pool is None:
            n = self.topology.num_routers
            if n <= 2:
                return dst_router
            while True:
                candidate = self.rng.randrange(n)
                if candidate != src_router and candidate != dst_router:
                    return candidate
        m = len(pool)
        if m <= 1:
            return dst_router
        for _ in range(4 * m):
            candidate = pool[self.rng.randrange(m)]
            if candidate != src_router and candidate != dst_router:
                return candidate
        return dst_router  # pragma: no cover - degenerate pools only

    def _local_queue_metric(self, router: "Router", target_router: int) -> int:
        """Credit occupancy of the output port on the minimal path to ``target_router``."""
        out_port = self.route.column(target_router).next_port(router.router_id)
        if out_port is None:
            return 0
        minimal_only = self.config.pb_min_credits_only
        per_vc = self.config.pb_sensing == "vc"
        tracker = router.output_ports[out_port].credits
        return tracker.occupancy_metric(per_vc, 0, minimal_only)
