"""Dense precomputed minimal-route tables.

Routing algorithms ask three questions on every forwarding decision: *which
port starts the minimal path to router X*, *what hop-type sequence remains
from router Y*, and (for Piggyback) *which global link does the minimal path
cross first*.  All three are pure functions of ``(src, dst)`` on a static
topology, so instead of memoizing them per algorithm instance in dictionaries
keyed by tuples, a :class:`RouteTable` precomputes them once per simulation
into dense ``array``/``bytes``-backed tables indexed by ``src * n + dst``:

* ``next_port`` — ``array('i')`` of first-hop ports (-1 on the diagonal);
* ``hop sequences`` — a ``bytes`` table of ids into the (small) set of
  distinct hop-type sequences, so lookups return shared tuples;
* ``first global link`` — ``array('i')`` pairs (owning router, global-port
  index) of the first GLOBAL hop of each minimal path (-1 when the path
  crosses none), which generalizes the Dragonfly "gateway router" that
  Piggyback's remote-saturation sensing reads.

Construction follows the topology's own :meth:`min_next_port` relation (not
generic shortest paths), walking each not-yet-known pair until it merges into
an already-filled suffix — O(n²) total work.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from ..core.link_types import HopSequence, LinkType
from ..topology.base import Topology

#: sentinel sequence id marking a not-yet-computed pair during construction.
_UNKNOWN = 0xFF


class RouteTable:
    """Precomputed minimal next-hop ports and hop-type sequences."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        n = topology.num_routers
        self._n = n
        next_port = array("i", [-1]) * (n * n)
        first_global = array("i", [-1]) * (2 * n * n)
        seq_ids = bytearray([_UNKNOWN]) * (n * n)
        sequences: List[HopSequence] = [()]
        seq_index: Dict[HopSequence, int] = {(): 0}

        for dst in range(n):
            diagonal = dst * n + dst
            next_port[diagonal] = -1
            seq_ids[diagonal] = 0
            for src in range(n):
                if seq_ids[src * n + dst] != _UNKNOWN:
                    continue
                # Walk towards dst until hitting an already-known suffix.
                path: List[Tuple[int, int, LinkType]] = []
                current = src
                while seq_ids[current * n + dst] == _UNKNOWN:
                    port = topology.min_next_port(current, dst)
                    if port is None or len(path) > n:
                        raise RuntimeError(
                            f"minimal route {src}->{dst} does not converge"
                        )
                    path.append((current, port, topology.link_type(current, port)))
                    current = topology.neighbor(current, port)
                tail_index = current * n + dst
                tail_seq = sequences[seq_ids[tail_index]]
                tail_fg_router = first_global[2 * tail_index]
                tail_fg_port = first_global[2 * tail_index + 1]
                for router, port, link_type in reversed(path):
                    tail_seq = (link_type,) + tail_seq
                    seq_id = seq_index.get(tail_seq)
                    if seq_id is None:
                        seq_id = len(sequences)
                        if seq_id >= _UNKNOWN:
                            raise RuntimeError(
                                "route table overflow: more than 255 distinct "
                                "hop-type sequences"
                            )
                        sequences.append(tail_seq)
                        seq_index[tail_seq] = seq_id
                    if link_type == LinkType.GLOBAL:
                        tail_fg_router = router
                        tail_fg_port = topology.global_port_index(router, port)
                    index = router * n + dst
                    next_port[index] = port
                    seq_ids[index] = seq_id
                    first_global[2 * index] = tail_fg_router
                    first_global[2 * index + 1] = tail_fg_port

        self._next_port = next_port
        self._seq_ids = bytes(seq_ids)
        self._sequences: Tuple[HopSequence, ...] = tuple(sequences)
        self._first_global = first_global

    # -- queries -------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self._n

    @property
    def sequences(self) -> Tuple[HopSequence, ...]:
        """The distinct minimal hop-type sequences of the topology."""
        return self._sequences

    def next_port(self, src: int, dst: int) -> Optional[int]:
        """First port of the minimal path (None when ``src == dst``)."""
        port = self._next_port[src * self._n + dst]
        return None if port < 0 else port

    def hop_sequence(self, src: int, dst: int) -> HopSequence:
        """Hop-type sequence of the minimal path (shared tuple instances)."""
        return self._sequences[self._seq_ids[src * self._n + dst]]

    def distance(self, src: int, dst: int) -> int:
        return len(self._sequences[self._seq_ids[src * self._n + dst]])

    def first_global_link(self, src: int, dst: int) -> Optional[Tuple[int, int]]:
        """(owning router, global-port index) of the minimal path's first
        GLOBAL hop, or None when the path stays on LOCAL links."""
        index = 2 * (src * self._n + dst)
        router = self._first_global[index]
        if router < 0:
            return None
        return router, self._first_global[index + 1]
