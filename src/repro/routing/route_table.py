"""Precomputed minimal-route tables: dense and lazily-sharded front-ends.

Routing algorithms ask three questions on every forwarding decision: *which
port starts the minimal path to router X*, *what hop-type sequence remains
from router Y*, and (for Piggyback) *which global link does the minimal path
cross first*.  All three are pure functions of ``(src, dst)`` on a static
topology.

The construction is naturally *per destination column*: filling every
``(src, dst)`` answer for one fixed ``dst`` is an O(n) suffix-merge walk over
the topology's :meth:`min_next_port` relation.  That walk lives in
:meth:`_RouteTableCore.fill_column` and is shared by two front-ends:

* :class:`RouteTable` — the dense table: every column materialized eagerly
  into flat ``array``/``bytes`` tables indexed ``src * n + dst`` (O(n²)
  memory, O(1) queries, bit-identical to the historical eager builder).
  The right default below :data:`DENSE_ROUTER_THRESHOLD` routers.
* :class:`LazyRouteTable` — column shards computed on first touch and held
  in a bounded LRU keyed by ``dst`` (O(capacity · n) memory).  Identical
  answers — evicted columns recompute deterministically because the
  hop-sequence interning survives eviction — which makes 10^5-endpoint
  networks constructible without the ~GB dense tables.  Resident columns
  are lean (~2 bytes per source: one-byte ports plus interned seq ids,
  with the first-global row deferred to its sole consumer), and the
  default capacity is derived from :data:`DEFAULT_LAZY_STATE_BUDGET` so
  that up to ~60k routers *every* column stays resident — uniform traffic
  touches all destinations, where a smaller LRU would thrash.

Batch port computation goes through
:meth:`~repro.topology.base.Topology.min_next_ports_to`, whose generic
fallback calls ``min_next_port`` per source and which closed-form topologies
(Dragonfly, Megafly, HyperX) override with one gateway/coordinate derivation
per group instead of per pair.

Hop sequences are interned: the ``seq_ids`` bytes index into the (small,
≤255-entry) table of distinct hop-type sequences, so lookups return shared
tuples.  ``first_global`` stores ``(owning router, global-port index)`` pairs
of the first GLOBAL hop of each minimal path (-1 when the path crosses
none), generalizing the Dragonfly "gateway router" that Piggyback's
remote-saturation sensing reads.
"""

from __future__ import annotations

import sys
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cache import BoundedLRU
from ..core.link_types import HopSequence, LinkType
from ..faults import NetworkPartitionedError
from ..topology.base import Topology

#: sentinel sequence id marking a not-yet-computed pair during construction.
_UNKNOWN = 0xFF

#: ``auto`` mode builds the dense table up to this many routers and switches
#: to lazy column shards above it (where the dense O(n²) arrays would cross
#: the ~0.2 GB line and construction time stops being sweep-friendly).
DENSE_ROUTER_THRESHOLD = 4096

#: byte budget that sizes the lazy front-end's default column capacity.
#: A resident lazy column costs ~2n bytes (one next-port byte and one
#: seq-id byte per source; the first-global row is deferred until a
#: consumer actually asks, see :class:`RouteColumn`), so the default
#: capacity is ``budget // (2n + overhead)`` clamped to ``[1, n]``.  Up to
#: n ≈ 60k routers every column fits resident — uniform traffic touches
#: *all* destination columns every few cycles, so an LRU smaller than the
#: working set would thrash with worst-case (cyclic) misses — while the
#: worst-case resident route state stays bounded by the budget at any n.
DEFAULT_LAZY_STATE_BUDGET = 256 * 1024 * 1024

#: per-column constant overhead (column object, LRU entry, buffer headers)
#: used when translating the byte budget into a column count.
_COLUMN_OVERHEAD_BYTES = 512

#: accepted ``route_table_mode`` values across the stack.
ROUTE_TABLE_MODES = ("auto", "dense", "lazy")


class PhaseVcTable:
    """Precomputed ``(phase_offsets, phase_position, link class) -> VC slot``.

    The distance-based baseline aligns every hop onto a reference-path slot
    through small integer arithmetic over the packet's phase state
    (:meth:`repro.core.baseline.DistanceBasedPolicy.slot_for`).  All inputs
    are tiny bounded integers, so the whole function is enumerated once into
    a dense flat table and each per-hop evaluation becomes a single indexed
    lookup.  Inputs outside the enumerated bounds fall back to the closed
    form (the caller checks :meth:`in_bounds`).

    Index layout (row-major):
    ``(((((g?*L + lo)*G + go)*T + gt)*P + pos)*2 + has_global_remaining)``
    with ``g?`` the output link class.
    """

    #: enumeration bounds: local/global offsets, globals-taken, position.
    MAX_OFFSET = 8
    MAX_TAKEN = 8
    MAX_POSITION = 16

    #: process-wide memo of ``slot_fn -> PhaseVcTable`` (see :meth:`shared`).
    _SHARED: Dict[object, "PhaseVcTable"] = {}

    @classmethod
    def shared(cls, slot_fn: Callable[..., int]) -> "PhaseVcTable":
        """Memoized table for ``slot_fn`` (one enumeration per process).

        The table is a pure function of ``slot_fn``; every
        :class:`~repro.core.baseline.DistanceBasedPolicy` instance uses the
        same static closed form, so enumerating the ~65k-entry table once per
        *simulation* (the pre-cache behaviour) wasted several milliseconds of
        every sweep job.  Keyed by the underlying function (bound methods are
        unwrapped via ``__func__``), so a different closed form — e.g. a
        subclass override, whether static or a plain method — gets exactly
        one table per class, never one per policy instance.

        Contract: the closed form must be *pure in its arguments* — the
        whole premise of enumerating it into a table.  An override that
        reads per-instance state would be shared per class here and must
        build its table with ``PhaseVcTable(fn)`` directly instead.
        """
        key = getattr(slot_fn, "__func__", slot_fn)
        table = cls._SHARED.get(key)
        if table is None:
            table = cls._SHARED[key] = cls(slot_fn)
        return table

    def __init__(self, slot_fn: Callable[..., int]) -> None:
        L = G = self.MAX_OFFSET
        T = self.MAX_TAKEN
        P = self.MAX_POSITION
        table: List[int] = []
        for out_is_global in (0, 1):
            for lo in range(L):
                for go in range(G):
                    for gt in range(T):
                        for pos in range(P):
                            for has_global in (0, 1):
                                table.append(
                                    slot_fn(out_is_global, lo, go, gt, pos,
                                            has_global)
                                )
        self._table = table

    def in_bounds(self, lo: int, go: int, gt: int, pos: int) -> bool:
        return (0 <= lo < self.MAX_OFFSET and 0 <= go < self.MAX_OFFSET
                and 0 <= gt < self.MAX_TAKEN and 0 <= pos < self.MAX_POSITION)

    def lookup(self, out_is_global: int, lo: int, go: int, gt: int,
               pos: int, has_global: int) -> int:
        index = out_is_global
        index = index * self.MAX_OFFSET + lo
        index = index * self.MAX_OFFSET + go
        index = index * self.MAX_TAKEN + gt
        index = index * self.MAX_POSITION + pos
        return self._table[index * 2 + has_global]


class RouteColumn:
    """One destination's route answers: ``src``-indexed compact arrays.

    The unit of lazy construction and the column view handed to routing
    algorithms: every query is a single flat index into an n-sized array.
    ``sequences`` references the owning table's *live* interning list —
    sequence ids are stable for the table's lifetime, so views stay valid as
    the list grows.

    Storage is deliberately lean — at system scale the full column set is
    resident (see :data:`DEFAULT_LAZY_STATE_BUDGET`):

    * ``ports`` is one byte per source (sentinel 255 = no port) whenever the
      topology's radix allows it, falling back to ``array('i')`` (-1) above
      254 ports per router;
    * the first-global row is built on the first :meth:`first_global_link`
      call only — Piggyback's remote-saturation sensing is its sole
      consumer, so min/val/par runs never pay its 8n bytes per column.
    """

    __slots__ = ("dst", "ports", "seq_ids", "sequences", "_no_port",
                 "_first_global", "_core")

    def __init__(self, dst: int, ports: Sequence[int], seq_ids: bytearray,
                 no_port: int, sequences: List[HopSequence],
                 core: "_RouteTableCore") -> None:
        self.dst = dst
        self.ports = ports
        self.seq_ids = seq_ids
        self._no_port = no_port
        self.sequences = sequences
        self._first_global: Optional[array] = None
        self._core = core

    def next_port(self, src: int) -> Optional[int]:
        port = self.ports[src]
        return None if port == self._no_port else port

    def hop_sequence(self, src: int) -> HopSequence:
        return self.sequences[self.seq_ids[src]]

    def distance(self, src: int) -> int:
        return len(self.sequences[self.seq_ids[src]])

    @property
    def first_global(self) -> array:
        """First-global row, ``(router, global-port index)`` pairs at
        ``[2*src, 2*src+1]`` (-1 = path crosses no GLOBAL link).  Built on
        first access by re-walking this column's stored ports."""
        fg = self._first_global
        if fg is None:
            fg = self._first_global = self._core.build_first_global_column(
                self.dst, self.ports, self._no_port
            )
        return fg

    def first_global_link(self, src: int) -> Optional[Tuple[int, int]]:
        fg = self.first_global
        router = fg[2 * src]
        if router < 0:
            return None
        return router, fg[2 * src + 1]

    def nbytes(self) -> int:
        """Approximate payload bytes of this column's arrays."""
        ports = self.ports
        ports_bytes = (ports.itemsize * len(ports)
                       if isinstance(ports, array) else len(ports))
        fg = self._first_global
        fg_bytes = fg.itemsize * len(fg) if fg is not None else 0
        return ports_bytes + len(self.seq_ids) + fg_bytes


class _DenseColumnView:
    """Column view over the dense table's flat arrays (shared storage)."""

    __slots__ = ("_table", "dst")

    def __init__(self, table: "RouteTable", dst: int) -> None:
        self._table = table
        self.dst = dst

    def next_port(self, src: int) -> Optional[int]:
        return self._table.next_port(src, self.dst)

    def hop_sequence(self, src: int) -> HopSequence:
        return self._table.hop_sequence(src, self.dst)

    def distance(self, src: int) -> int:
        return self._table.distance(src, self.dst)

    def first_global_link(self, src: int) -> Optional[Tuple[int, int]]:
        return self._table.first_global_link(src, self.dst)


class _RouteTableCore:
    """Shared construction machinery of the dense and lazy front-ends.

    Holds the dense adjacency view (O(n · radix), shared by both front-ends
    and by the candidate builders), the persistent hop-sequence interning
    state, and the per-destination suffix-merge column fill.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        n = topology.num_routers
        self._n = n
        #: interned distinct hop-type sequences; ids are assigned in column
        #: discovery order and never reused, so they survive lazy evictions.
        self._sequence_list: List[HopSequence] = [()]
        self._seq_index: Dict[HopSequence, int] = {(): 0}
        #: prepend memo: ``(link type << 8) | tail sequence id -> sequence
        #: id`` of ``(link_type,) + sequences[tail_id]``.  The pair uniquely
        #: determines the tuple (and vice versa), so consulting the memo
        #: assigns exactly the ids — in exactly the discovery order — that
        #: interning the full tuples would, without building a tuple or
        #: hashing it on the (hot) already-seen path.
        self._seq_step: Dict[int, int] = {}
        self._lt_members = {member.value: member for member in LinkType}

        # Dense adjacency view: neighbor router and link type per
        # (router, port), so column fills and candidate construction never
        # re-derive them from the topology's arithmetic.
        max_port = 0
        port_lists = []
        for router in range(n):
            infos = list(topology.ports(router))
            port_lists.append(infos)
            for info in infos:
                if info.port >= max_port:
                    max_port = info.port + 1
        self._ports_per_router = max_port
        neighbor = array("i", [-1]) * (n * max_port)
        link_types = bytearray(n * max_port)
        for router, infos in enumerate(port_lists):
            base = router * max_port
            for info in infos:
                neighbor[base + info.port] = info.neighbor
                link_types[base + info.port] = info.link_type
        self._neighbor = neighbor
        self._link_types = bytes(link_types)

        # -- fault state (empty on pristine networks; see repro.faults) ----
        #: directed (router, port) links currently dead; column fills route
        #: around them via the BFS detour batch of :meth:`_fault_ports_to`.
        self._dead_links: frozenset = frozenset()
        self._dead_routers: frozenset = frozenset()
        #: columns whose resident fill was computed under a non-empty fault
        #: state (re-invalidated on recovery to restore the pristine fill).
        self._fault_dirty: set = set()
        self._back_port_map: Optional[array] = None

    # -- column construction -------------------------------------------------
    def fill_column(self, dst: int, next_port: Optional[array],
                    seq_ids: bytearray, first_global: Optional[array],
                    stride: int, offset: int,
                    ports: Optional[array] = None) -> None:
        """Fill every ``(src, dst)`` answer for one fixed destination.

        Writes into caller-owned buffers at index ``src * stride + offset``
        (``first_global`` at twice that), so the dense front-end fills its
        row-major O(n²) tables in place (stride ``n``, offset ``dst``) and
        the lazy front-end fills compact n-sized columns (stride 1, offset
        0) — same walk, same interning, bit-identical answers.

        The walk follows each source's minimal next hop (one batch
        :meth:`~repro.topology.base.Topology.min_next_ports_to` call per
        column, or a caller-supplied ``ports`` batch) until it merges into
        an already-known suffix of this column, then unwinds the path
        backwards, interning hop-type sequences and propagating the
        first-GLOBAL-hop link.

        ``next_port`` may be ``None`` when the caller keeps the ``ports``
        batch itself as the column's port storage, and ``first_global`` may
        be ``None`` to defer the first-global row entirely (see
        :meth:`build_first_global_column`); ``seq_ids`` is always filled
        and drives the suffix-merge bookkeeping.
        """
        n = self._n
        topology = self.topology
        if ports is None:
            ports = topology.min_next_ports_to(dst)
        seq_step = self._seq_step
        global_value = int(LinkType.GLOBAL)
        neighbor = self._neighbor
        link_types = self._link_types
        per_router = self._ports_per_router
        diagonal = dst * stride + offset
        if next_port is not None:
            next_port[diagonal] = -1
        seq_ids[diagonal] = 0
        track_fg = first_global is not None
        step_get = seq_step.get
        for src in range(n):
            index = src * stride + offset
            if seq_ids[index] != _UNKNOWN:
                continue
            port = ports[src]
            if port < 0:
                if src in self._dead_routers:
                    # Dead source: no packet can be resident there, so the
                    # entry is a harmless no-route placeholder.
                    seq_ids[index] = 0
                    if next_port is not None:
                        next_port[index] = -1
                    if track_fg:
                        first_global[2 * index] = -1
                        first_global[2 * index + 1] = -1
                    continue
                if self._dead_links or self._dead_routers:
                    raise NetworkPartitionedError(
                        f"no route {src}->{dst} around the current faults"
                    )
                raise RuntimeError(
                    f"minimal route {src}->{dst} does not converge"
                )
            base = src * per_router + port
            nxt = neighbor[base]
            tail_index = nxt * stride + offset
            tail_id = seq_ids[tail_index]
            if tail_id != _UNKNOWN:
                # Fast path: the next hop is already resolved (the common
                # case once the column's suffix tree starts filling in), so
                # this source merges without path bookkeeping.
                link_type = link_types[base]
                seq_id = step_get(link_type << 8 | tail_id)
                if seq_id is None:
                    seq_id = self._intern_step(link_type, tail_id)
                if next_port is not None:
                    next_port[index] = port
                seq_ids[index] = seq_id
                if track_fg:
                    if link_type == global_value:
                        first_global[2 * index] = src
                        first_global[2 * index + 1] = (
                            topology.global_port_index(src, port)
                        )
                    else:
                        first_global[2 * index] = first_global[2 * tail_index]
                        first_global[2 * index + 1] = (
                            first_global[2 * tail_index + 1]
                        )
                continue
            # Walk towards dst until hitting an already-known suffix.
            path: List[Tuple[int, int, int]] = [(src, port, link_types[base])]
            current = nxt
            while seq_ids[current * stride + offset] == _UNKNOWN:
                port = ports[current]
                if port < 0 or len(path) > n:
                    raise RuntimeError(
                        f"minimal route {src}->{dst} does not converge"
                    )
                base = current * per_router + port
                path.append((current, port, link_types[base]))
                current = neighbor[base]
            tail_index = current * stride + offset
            tail_id = seq_ids[tail_index]
            if track_fg:
                tail_fg_router = first_global[2 * tail_index]
                tail_fg_port = first_global[2 * tail_index + 1]
            for router, port, link_type in reversed(path):
                seq_id = step_get(link_type << 8 | tail_id)
                if seq_id is None:
                    seq_id = self._intern_step(link_type, tail_id)
                index = router * stride + offset
                if next_port is not None:
                    next_port[index] = port
                seq_ids[index] = seq_id
                tail_id = seq_id
                if track_fg:
                    if link_type == global_value:
                        tail_fg_router = router
                        tail_fg_port = topology.global_port_index(router, port)
                    first_global[2 * index] = tail_fg_router
                    first_global[2 * index + 1] = tail_fg_port

    def _intern_step(self, link_type: int, tail_id: int) -> int:
        """Intern ``(link_type,) + sequences[tail_id]`` and memo the step.

        Cold path of the prepend memo in :meth:`fill_column` — runs at most
        once per distinct ``(link type, tail sequence)`` pair per table.
        """
        sequences = self._sequence_list
        tail_seq = (self._lt_members[link_type],) + sequences[tail_id]
        seq_id = self._seq_index.get(tail_seq)
        if seq_id is None:
            seq_id = len(sequences)
            if seq_id >= _UNKNOWN:
                raise RuntimeError(
                    "route table overflow: more than 255 distinct "
                    "hop-type sequences"
                )
            sequences.append(tail_seq)
            self._seq_index[tail_seq] = seq_id
        self._seq_step[link_type << 8 | tail_id] = seq_id
        return seq_id

    def build_first_global_column(self, dst: int, ports: Sequence[int],
                                  no_port: int) -> array:
        """First-global row for one destination from its stored ports.

        The same suffix-merge walk as :meth:`fill_column` restricted to the
        first-GLOBAL-hop propagation, re-run on demand from a column's
        compact port storage (``ports[src]`` with ``no_port`` at the
        diagonal).  Sentinel -2 marks not-yet-walked sources; the returned
        row uses -1 for "path crosses no GLOBAL link", matching the dense
        table's encoding.
        """
        n = self._n
        topology = self.topology
        neighbor = self._neighbor
        link_types = self._link_types
        per_router = self._ports_per_router
        global_value = int(LinkType.GLOBAL)
        fg = array("i", [-2]) * (2 * n)
        fg[2 * dst] = -1
        fg[2 * dst + 1] = -1
        for src in range(n):
            if fg[2 * src] != -2:
                continue
            if ports[src] == no_port:
                # No-route placeholder (a source that was dead when this
                # column was filled): report "no GLOBAL link" — the entry
                # is never queried for a resident packet.
                fg[2 * src] = -1
                fg[2 * src + 1] = -1
                continue
            path: List[Tuple[int, int, int]] = []
            current = src
            while fg[2 * current] == -2:
                port = ports[current]
                if port == no_port or len(path) > n:
                    raise RuntimeError(
                        f"minimal route {src}->{dst} does not converge"
                    )
                base = current * per_router + port
                path.append((current, port, link_types[base]))
                current = neighbor[base]
            tail_fg_router = fg[2 * current]
            tail_fg_port = fg[2 * current + 1]
            for router, port, link_type in reversed(path):
                if link_type == global_value:
                    tail_fg_router = router
                    tail_fg_port = topology.global_port_index(router, port)
                fg[2 * router] = tail_fg_router
                fg[2 * router + 1] = tail_fg_port
        return fg

    # -- fault support (repro.faults) ----------------------------------------
    def set_fault_state(self, dead_links: frozenset,
                        dead_routers: frozenset) -> None:
        """Install the dead-element sets consulted by column (re)builds.

        ``dead_links`` holds *directed* ``(router, port)`` keys (both
        directions of a failed physical link); subsequent
        :meth:`invalidate` calls and lazy column builds detour around them.
        """
        self._dead_links = dead_links
        self._dead_routers = dead_routers

    def _back_ports(self) -> array:
        """``(router, port) -> port on the neighbor facing back`` map.

        Built once on first use from the dense adjacency: ports between
        each ordered router pair are matched index-by-index in ascending
        port order, which pairs parallel links deterministically and
        mirrors the symmetric wiring the simulation itself asserts.
        """
        back = self._back_port_map
        if back is not None:
            return back
        n = self._n
        per = self._ports_per_router
        neighbor = self._neighbor
        pairs: Dict[Tuple[int, int], List[int]] = {}
        for router in range(n):
            base = router * per
            for port in range(per):
                other = neighbor[base + port]
                if other >= 0:
                    pairs.setdefault((router, other), []).append(port)
        back = array("i", [-1]) * (n * per)
        for (router, other), ports in pairs.items():
            other_ports = pairs[(other, router)]
            base = router * per
            for i, port in enumerate(ports):
                back[base + port] = other_ports[i]
        self._back_port_map = back
        return back

    def _fault_ports_to(self, dst: int) -> Optional[array]:
        """Detour next-port batch for ``dst`` around the dead elements.

        Returns None when no faults are active — or when ``dst`` itself is
        a dead router (sink-hole rule: the column keeps its pristine fill
        and packets drop at the dead-link boundary).  Otherwise runs a
        deterministic BFS from ``dst`` over the live graph, preferring the
        pristine minimal port wherever it is still live and distance-tied
        (unaffected pairs keep their canonical routes), and raises
        :class:`~repro.faults.NetworkPartitionedError` when any live source
        has no route left.
        """
        dead_links = self._dead_links
        dead_routers = self._dead_routers
        if not dead_links and not dead_routers:
            return None
        if dst in dead_routers:
            return None
        n = self._n
        per = self._ports_per_router
        neighbor = self._neighbor
        back = self._back_ports()
        dist = array("i", [-1]) * n
        ports = array("i", [-1]) * n
        dist[dst] = 0
        frontier = [dst]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                base = u * per
                for q in range(per):
                    w = neighbor[base + q]
                    if w < 0 or dist[w] >= 0 or w in dead_routers:
                        continue
                    qw = back[base + q]
                    # The detour forwards from w over its port qw onto the
                    # (bidirectionally-failed) link w<->u.
                    if (w, qw) in dead_links:
                        continue
                    dist[w] = dist[u] + 1
                    ports[w] = qw
                    nxt.append(w)
            frontier = nxt
        unreachable = [
            src for src in range(n)
            if dist[src] < 0 and src not in dead_routers
        ]
        if unreachable:
            raise NetworkPartitionedError(
                f"no route to router {dst} from {len(unreachable)} live "
                f"router(s) (first: {unreachable[0]}) around the current "
                f"faults"
            )
        pristine = self.topology.min_next_ports_to(dst)
        for src in range(n):
            if src == dst or src in dead_routers:
                continue
            port = pristine[src]
            if port < 0 or (src, port) in dead_links:
                continue
            w = neighbor[src * per + port]
            if w >= 0 and w not in dead_routers and dist[w] == dist[src] - 1:
                ports[src] = port
        return ports

    def _mark_fault_fill(self, dst: int) -> None:
        """Track whether ``dst``'s resident fill was computed under faults."""
        if self._dead_links or self._dead_routers:
            self._fault_dirty.add(dst)
        else:
            self._fault_dirty.discard(dst)

    # -- shared queries ------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self._n

    def neighbor(self, router: int, port: int) -> int:
        """Neighbor router across ``port`` (dense adjacency lookup)."""
        return self._neighbor[router * self._ports_per_router + port]

    def link_type(self, router: int, port: int) -> LinkType:
        """Link type of ``port`` (dense adjacency lookup)."""
        return LinkType(self._link_types[router * self._ports_per_router + port])

    def _adjacency_bytes(self) -> int:
        return (self._neighbor.itemsize * len(self._neighbor)
                + len(self._link_types))


class RouteTable(_RouteTableCore):
    """Dense precomputed minimal next-hop ports and hop-type sequences.

    Every destination column is materialized eagerly into flat tables
    indexed ``src * n + dst`` — O(n²) memory, the fastest queries, and the
    default below :data:`DENSE_ROUTER_THRESHOLD` routers.
    """

    mode = "dense"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        n = self._n
        next_port = array("i", [-1]) * (n * n)
        first_global = array("i", [-1]) * (2 * n * n)
        seq_ids = bytearray([_UNKNOWN]) * (n * n)
        for dst in range(n):
            self.fill_column(dst, next_port, seq_ids, first_global, n, dst)
        self._next_port = next_port
        self._seq_ids = bytes(seq_ids)
        self._sequences: Tuple[HopSequence, ...] = tuple(self._sequence_list)
        self._first_global = first_global

    # -- queries -------------------------------------------------------------
    @property
    def sequences(self) -> Tuple[HopSequence, ...]:
        """The distinct minimal hop-type sequences of the topology."""
        return self._sequences

    def column(self, dst: int) -> _DenseColumnView:
        """Column view for destination ``dst`` (shared dense storage)."""
        return _DenseColumnView(self, dst)

    # -- fault re-table-ing --------------------------------------------------
    def invalidate(self, dst: int) -> None:
        """Eagerly rebuild destination ``dst``'s column in place.

        Under an active fault state (:meth:`set_fault_state`) the refill
        routes around the dead elements via the BFS detour batch; with no
        faults it re-runs the pristine fill — the persistent sequence
        interning makes the rebuilt column byte-identical to the original.
        """
        n = self._n
        if isinstance(self._seq_ids, bytes):
            # The pristine build freezes seq ids to bytes; the first
            # invalidation switches back to a mutable view for good.
            self._seq_ids = bytearray(self._seq_ids)
        seq_ids = self._seq_ids
        next_port = self._next_port
        first_global = self._first_global
        for src in range(n):
            index = src * n + dst
            seq_ids[index] = _UNKNOWN
            next_port[index] = -1
            first_global[2 * index] = -1
            first_global[2 * index + 1] = -1
        ports = self._fault_ports_to(dst)
        self.fill_column(dst, next_port, seq_ids, first_global, n, dst,
                         ports=ports)
        self._sequences = tuple(self._sequence_list)
        self._mark_fault_fill(dst)

    def columns_via(self, router: int, port: int) -> List[int]:
        """Destinations whose current route from ``router`` leaves via
        ``port`` (the invalidation set of a failed directed link)."""
        n = self._n
        base = router * n
        next_port = self._next_port
        return [dst for dst in range(n) if next_port[base + dst] == port]

    def next_port(self, src: int, dst: int) -> Optional[int]:
        """First port of the minimal path (None when ``src == dst``)."""
        port = self._next_port[src * self._n + dst]
        return None if port < 0 else port

    def hop_sequence(self, src: int, dst: int) -> HopSequence:
        """Hop-type sequence of the minimal path (shared tuple instances)."""
        return self._sequences[self._seq_ids[src * self._n + dst]]

    def distance(self, src: int, dst: int) -> int:
        return len(self._sequences[self._seq_ids[src * self._n + dst]])

    def first_global_link(self, src: int, dst: int) -> Optional[Tuple[int, int]]:
        """(owning router, global-port index) of the minimal path's first
        GLOBAL hop, or None when the path stays on LOCAL links."""
        index = 2 * (src * self._n + dst)
        router = self._first_global[index]
        if router < 0:
            return None
        return router, self._first_global[index + 1]

    # -- accounting ----------------------------------------------------------
    def route_state_bytes(self) -> int:
        """Approximate bytes held by route state (tables + adjacency)."""
        return (self._next_port.itemsize * len(self._next_port)
                + len(self._seq_ids)
                + self._first_global.itemsize * len(self._first_global)
                + self._adjacency_bytes())

    def table_stats(self) -> Dict[str, object]:
        """Provenance-ready summary of this table's mode and footprint."""
        return {
            "mode": self.mode,
            "routers": self._n,
            "columns_resident": self._n,
            "route_state_bytes": self.route_state_bytes(),
        }


class LazyRouteTable(_RouteTableCore):
    """Per-destination route columns computed on first touch, LRU-bounded.

    Same answers as :class:`RouteTable` for every query (locked by the
    lazy-vs-dense equality tests): a missing column is filled by the shared
    :meth:`~_RouteTableCore.fill_column` walk and cached; beyond
    ``capacity`` resident columns the least recently used one is evicted
    and transparently recomputed on its next touch.  Recomputation is
    deterministic — the sequence-interning state persists across evictions,
    so a rebuilt column is byte-identical to its first build.

    Memory is O(capacity · n) instead of O(n²), which is what makes
    10^5-endpoint networks constructible (see DESIGN.md §9).
    """

    mode = "lazy"

    def __init__(self, topology: Topology,
                 capacity: Optional[int] = None) -> None:
        super().__init__(topology)
        if capacity is None:
            capacity = DEFAULT_LAZY_STATE_BUDGET // (
                2 * self._n + _COLUMN_OVERHEAD_BYTES
            )
        self.capacity = max(1, min(int(capacity), self._n))
        self._columns: BoundedLRU = BoundedLRU(self.capacity)
        self.hits = 0
        self.misses = 0
        self.columns_built = 0

    # -- column management ---------------------------------------------------
    def column(self, dst: int) -> RouteColumn:
        """The (computed-on-demand) column of destination ``dst``."""
        col = self._columns.get(dst)
        if col is not None:
            self.hits += 1
            return col
        self.misses += 1
        col = self._build_column(dst)
        self._columns.put(dst, col)
        return col

    # -- fault re-table-ing --------------------------------------------------
    def invalidate(self, dst: int) -> None:
        """Evict destination ``dst``'s column; the next touch rebuilds it
        against the current fault state (detours via ``fill_column``)."""
        self._columns.pop(dst)
        self._fault_dirty.discard(dst)

    def columns_via(self, router: int, port: int) -> List[int]:
        """Resident destinations whose route from ``router`` leaves via
        ``port``.  Non-resident columns need no invalidation — their next
        build consults the fault state anyway."""
        out: List[int] = []
        for dst, col in self._columns._entries.items():
            stored = col.ports[router]
            if stored != col._no_port and stored == port:
                out.append(dst)
        return sorted(out)

    def _build_column(self, dst: int) -> RouteColumn:
        n = self._n
        # min_next_ports_to already produces exactly the column's port
        # storage (-1 at the diagonal), so the walk reads it in place and
        # only the seq-id row is filled here; the first-global row is
        # deferred until a consumer asks (see RouteColumn).
        port_batch = self._fault_ports_to(dst)
        if port_batch is None:
            port_batch = self.topology.min_next_ports_to(dst)
        self._mark_fault_fill(dst)
        seq_ids = bytearray([_UNKNOWN]) * n
        self.fill_column(dst, None, seq_ids, None, 1, 0, ports=port_batch)
        if self._ports_per_router < 255:
            # Narrow to one byte per source: every port value fits in
            # [0, 254] and the -1 sentinel's low byte is 255.  Slicing the
            # raw buffer picks each item's least-significant byte at C
            # speed.
            if not isinstance(port_batch, array):
                port_batch = array("i", port_batch)
            step = port_batch.itemsize
            low = 0 if sys.byteorder == "little" else step - 1
            ports = port_batch.tobytes()[low::step]
            no_port = 0xFF
        else:
            ports = port_batch
            no_port = -1
        self.columns_built += 1
        return RouteColumn(dst, ports, seq_ids, no_port,
                           self._sequence_list, self)

    @property
    def evictions(self) -> int:
        return self.columns_built - len(self._columns)

    # -- queries (column-indirected, same answers as the dense table) --------
    @property
    def sequences(self) -> Tuple[HopSequence, ...]:
        """Distinct hop-type sequences discovered so far (grows lazily)."""
        return tuple(self._sequence_list)

    def next_port(self, src: int, dst: int) -> Optional[int]:
        """First port of the minimal path (None when ``src == dst``)."""
        return self.column(dst).next_port(src)

    def hop_sequence(self, src: int, dst: int) -> HopSequence:
        """Hop-type sequence of the minimal path (shared tuple instances)."""
        return self._sequence_list[self.column(dst).seq_ids[src]]

    def distance(self, src: int, dst: int) -> int:
        return len(self._sequence_list[self.column(dst).seq_ids[src]])

    def first_global_link(self, src: int, dst: int) -> Optional[Tuple[int, int]]:
        """(owning router, global-port index) of the minimal path's first
        GLOBAL hop, or None when the path stays on LOCAL links."""
        return self.column(dst).first_global_link(src)

    # -- accounting ----------------------------------------------------------
    def route_state_bytes(self) -> int:
        """Approximate bytes held by resident columns + adjacency."""
        resident = sum(
            col.nbytes() for col in self._columns._entries.values()
        )
        return resident + self._adjacency_bytes()

    def table_stats(self) -> Dict[str, object]:
        """Provenance-ready summary of this table's mode and LRU behaviour."""
        return {
            "mode": self.mode,
            "routers": self._n,
            "capacity": self.capacity,
            "columns_built": self.columns_built,
            "columns_resident": len(self._columns),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "route_state_bytes": self.route_state_bytes(),
        }


def resolve_route_table_mode(mode: str, num_routers: int) -> str:
    """Resolve ``auto`` against the dense-size threshold; validate the rest."""
    if mode == "auto":
        return "dense" if num_routers <= DENSE_ROUTER_THRESHOLD else "lazy"
    if mode in ("dense", "lazy"):
        return mode
    raise ValueError(
        f"route table mode must be one of {ROUTE_TABLE_MODES}, got {mode!r}"
    )


def make_route_table(
    topology: Topology,
    mode: str = "auto",
    *,
    capacity: Optional[int] = None,
) -> "RouteTable | LazyRouteTable":
    """Build the route table front-end selected by ``mode``.

    ``auto`` picks dense up to :data:`DENSE_ROUTER_THRESHOLD` routers (the
    historical behaviour, bit-identical) and lazy columns above; ``capacity``
    bounds the lazy front-end's resident columns (ignored for dense).
    """
    resolved = resolve_route_table_mode(mode, topology.num_routers)
    if resolved == "dense":
        return RouteTable(topology)
    return LazyRouteTable(topology, capacity=capacity)
