"""Dense precomputed minimal-route tables.

Routing algorithms ask three questions on every forwarding decision: *which
port starts the minimal path to router X*, *what hop-type sequence remains
from router Y*, and (for Piggyback) *which global link does the minimal path
cross first*.  All three are pure functions of ``(src, dst)`` on a static
topology, so instead of memoizing them per algorithm instance in dictionaries
keyed by tuples, a :class:`RouteTable` precomputes them once per simulation
into dense ``array``/``bytes``-backed tables indexed by ``src * n + dst``:

* ``next_port`` — ``array('i')`` of first-hop ports (-1 on the diagonal);
* ``hop sequences`` — a ``bytes`` table of ids into the (small) set of
  distinct hop-type sequences, so lookups return shared tuples;
* ``first global link`` — ``array('i')`` pairs (owning router, global-port
  index) of the first GLOBAL hop of each minimal path (-1 when the path
  crosses none), which generalizes the Dragonfly "gateway router" that
  Piggyback's remote-saturation sensing reads.

Construction follows the topology's own :meth:`min_next_port` relation (not
generic shortest paths), walking each not-yet-known pair until it merges into
an already-filled suffix — O(n²) total work.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from ..core.link_types import HopSequence, LinkType
from ..topology.base import Topology

#: sentinel sequence id marking a not-yet-computed pair during construction.
_UNKNOWN = 0xFF


class PhaseVcTable:
    """Precomputed ``(phase_offsets, phase_position, link class) -> VC slot``.

    The distance-based baseline aligns every hop onto a reference-path slot
    through small integer arithmetic over the packet's phase state
    (:meth:`repro.core.baseline.DistanceBasedPolicy.slot_for`).  All inputs
    are tiny bounded integers, so the whole function is enumerated once into
    a dense flat table and each per-hop evaluation becomes a single indexed
    lookup.  Inputs outside the enumerated bounds fall back to the closed
    form (the caller checks :meth:`in_bounds`).

    Index layout (row-major):
    ``(((((g?*L + lo)*G + go)*T + gt)*P + pos)*2 + has_global_remaining)``
    with ``g?`` the output link class.
    """

    #: enumeration bounds: local/global offsets, globals-taken, position.
    MAX_OFFSET = 8
    MAX_TAKEN = 8
    MAX_POSITION = 16

    #: process-wide memo of ``slot_fn -> PhaseVcTable`` (see :meth:`shared`).
    _SHARED: Dict[object, "PhaseVcTable"] = {}

    @classmethod
    def shared(cls, slot_fn) -> "PhaseVcTable":
        """Memoized table for ``slot_fn`` (one enumeration per process).

        The table is a pure function of ``slot_fn``; every
        :class:`~repro.core.baseline.DistanceBasedPolicy` instance uses the
        same static closed form, so enumerating the ~65k-entry table once per
        *simulation* (the pre-cache behaviour) wasted several milliseconds of
        every sweep job.  Keyed by the underlying function (bound methods are
        unwrapped via ``__func__``), so a different closed form — e.g. a
        subclass override, whether static or a plain method — gets exactly
        one table per class, never one per policy instance.

        Contract: the closed form must be *pure in its arguments* — the
        whole premise of enumerating it into a table.  An override that
        reads per-instance state would be shared per class here and must
        build its table with ``PhaseVcTable(fn)`` directly instead.
        """
        key = getattr(slot_fn, "__func__", slot_fn)
        table = cls._SHARED.get(key)
        if table is None:
            table = cls._SHARED[key] = cls(slot_fn)
        return table

    def __init__(self, slot_fn) -> None:
        L = G = self.MAX_OFFSET
        T = self.MAX_TAKEN
        P = self.MAX_POSITION
        table: List[int] = []
        for out_is_global in (0, 1):
            for lo in range(L):
                for go in range(G):
                    for gt in range(T):
                        for pos in range(P):
                            for has_global in (0, 1):
                                table.append(
                                    slot_fn(out_is_global, lo, go, gt, pos,
                                            has_global)
                                )
        self._table = table

    def in_bounds(self, lo: int, go: int, gt: int, pos: int) -> bool:
        return (0 <= lo < self.MAX_OFFSET and 0 <= go < self.MAX_OFFSET
                and 0 <= gt < self.MAX_TAKEN and 0 <= pos < self.MAX_POSITION)

    def lookup(self, out_is_global: int, lo: int, go: int, gt: int,
               pos: int, has_global: int) -> int:
        index = out_is_global
        index = index * self.MAX_OFFSET + lo
        index = index * self.MAX_OFFSET + go
        index = index * self.MAX_TAKEN + gt
        index = index * self.MAX_POSITION + pos
        return self._table[index * 2 + has_global]


class RouteTable:
    """Precomputed minimal next-hop ports and hop-type sequences."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        n = topology.num_routers
        self._n = n
        next_port = array("i", [-1]) * (n * n)
        first_global = array("i", [-1]) * (2 * n * n)
        seq_ids = bytearray([_UNKNOWN]) * (n * n)
        sequences: List[HopSequence] = [()]
        seq_index: Dict[HopSequence, int] = {(): 0}

        for dst in range(n):
            diagonal = dst * n + dst
            next_port[diagonal] = -1
            seq_ids[diagonal] = 0
            for src in range(n):
                if seq_ids[src * n + dst] != _UNKNOWN:
                    continue
                # Walk towards dst until hitting an already-known suffix.
                path: List[Tuple[int, int, LinkType]] = []
                current = src
                while seq_ids[current * n + dst] == _UNKNOWN:
                    port = topology.min_next_port(current, dst)
                    if port is None or len(path) > n:
                        raise RuntimeError(
                            f"minimal route {src}->{dst} does not converge"
                        )
                    path.append((current, port, topology.link_type(current, port)))
                    current = topology.neighbor(current, port)
                tail_index = current * n + dst
                tail_seq = sequences[seq_ids[tail_index]]
                tail_fg_router = first_global[2 * tail_index]
                tail_fg_port = first_global[2 * tail_index + 1]
                for router, port, link_type in reversed(path):
                    tail_seq = (link_type,) + tail_seq
                    seq_id = seq_index.get(tail_seq)
                    if seq_id is None:
                        seq_id = len(sequences)
                        if seq_id >= _UNKNOWN:
                            raise RuntimeError(
                                "route table overflow: more than 255 distinct "
                                "hop-type sequences"
                            )
                        sequences.append(tail_seq)
                        seq_index[tail_seq] = seq_id
                    if link_type == LinkType.GLOBAL:
                        tail_fg_router = router
                        tail_fg_port = topology.global_port_index(router, port)
                    index = router * n + dst
                    next_port[index] = port
                    seq_ids[index] = seq_id
                    first_global[2 * index] = tail_fg_router
                    first_global[2 * index + 1] = tail_fg_port

        self._next_port = next_port
        self._seq_ids = bytes(seq_ids)
        self._sequences: Tuple[HopSequence, ...] = tuple(sequences)
        self._first_global = first_global

        # Dense adjacency view: neighbor router and link type per
        # (router, port), so candidate construction never re-derives them
        # from the topology's arithmetic.
        max_port = 0
        port_lists = []
        for router in range(n):
            infos = list(topology.ports(router))
            port_lists.append(infos)
            for info in infos:
                if info.port >= max_port:
                    max_port = info.port + 1
        self._ports_per_router = max_port
        neighbor = array("i", [-1]) * (n * max_port)
        link_types = bytearray(n * max_port)
        for router, infos in enumerate(port_lists):
            base = router * max_port
            for info in infos:
                neighbor[base + info.port] = info.neighbor
                link_types[base + info.port] = info.link_type
        self._neighbor = neighbor
        self._link_types = bytes(link_types)

    # -- queries -------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self._n

    @property
    def sequences(self) -> Tuple[HopSequence, ...]:
        """The distinct minimal hop-type sequences of the topology."""
        return self._sequences

    def next_port(self, src: int, dst: int) -> Optional[int]:
        """First port of the minimal path (None when ``src == dst``)."""
        port = self._next_port[src * self._n + dst]
        return None if port < 0 else port

    def hop_sequence(self, src: int, dst: int) -> HopSequence:
        """Hop-type sequence of the minimal path (shared tuple instances)."""
        return self._sequences[self._seq_ids[src * self._n + dst]]

    def distance(self, src: int, dst: int) -> int:
        return len(self._sequences[self._seq_ids[src * self._n + dst]])

    def neighbor(self, router: int, port: int) -> int:
        """Neighbor router across ``port`` (dense adjacency lookup)."""
        return self._neighbor[router * self._ports_per_router + port]

    def link_type(self, router: int, port: int) -> LinkType:
        """Link type of ``port`` (dense adjacency lookup)."""
        return LinkType(self._link_types[router * self._ports_per_router + port])

    def first_global_link(self, src: int, dst: int) -> Optional[Tuple[int, int]]:
        """(owning router, global-port index) of the minimal path's first
        GLOBAL hop, or None when the path stays on LOCAL links."""
        index = 2 * (src * self._n + dst)
        router = self._first_global[index]
        if router < 0:
            return None
        return router, self._first_global[index + 1]
