"""Valiant (VAL) oblivious routing.

"Real" Valiant / Valiant-node routing: every packet is first sent minimally to
a uniformly random intermediate *router* and then minimally to its
destination.  This spreads any admissible traffic pattern uniformly over the
network at the cost of doubling the path length (and hence halving the
theoretical peak throughput).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..packet import Packet
from .base import RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from ..router.router import Router


class ValiantRouting(RoutingAlgorithm):
    """Oblivious Valiant-node routing."""

    name = "val"

    def decide_at_injection(self, router: "Router", packet: Packet) -> None:
        src_router = router.router_id
        dst_router = self.topology.router_of_node(packet.dst_node)
        if dst_router == src_router:
            return  # consumed locally, nothing to randomize
        intermediate = self._pick_intermediate(packet, src_router, dst_router)
        packet.mark_valiant(intermediate)
