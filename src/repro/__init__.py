"""repro: a reproduction of "FlexVC: Flexible Virtual Channel Management in
Low-Diameter Networks" (Fuentes, Vallejo, Beivide, Minkenberg, Valero —
IPDPS 2017).

The package contains two layers:

* :mod:`repro.core` — the paper's contribution in isolation: VC arrangements,
  the distance-based baseline policy, FlexVC (safe/opportunistic hops,
  request-reply handling, link-type restrictions), FlexVC-minCred accounting
  and the analytical feasibility tables (Tables I-IV).
* the simulation substrate — Dragonfly / Flattened Butterfly topologies, a
  cycle-level virtual cut-through router model (credits, separable
  allocation, static/DAMQ buffers), MIN/VAL/PAR/Piggyback routing, synthetic
  traffic (UN, ADV, BURSTY-UN, request-reply) and the experiment harness that
  regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import SimulationConfig, VcArrangement, run_simulation
    from dataclasses import replace

    config = SimulationConfig()                        # scaled Dragonfly, MIN, baseline
    flex = replace(config,
                   routing=replace(config.routing, vc_policy="flexvc"),
                   arrangement=VcArrangement.single_class(4, 2))
    print(run_simulation(config))
    print(run_simulation(flex))

Phased execution with live telemetry (see ``DESIGN.md`` §5)::

    from repro import Session, TimeSeriesProbe

    session = Session(config, probes=[TimeSeriesProbe(100)])
    session.warmup(); session.measure(); session.drain()
    record = session.record()          # RunRecord v2: summary + channels
"""

from .config import (
    NetworkConfig,
    RouterConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
)
from .core import (
    DistanceBasedPolicy,
    FlexVcPolicy,
    HopContext,
    HopKind,
    LinkType,
    MessageClass,
    PathSupport,
    VcArrangement,
    VcRange,
    classify,
    classify_request_reply,
    flexvc,
    make_policy,
    table1,
    table2,
    table3,
    table4,
)
from .metrics import LatencyHistogram, MetricsCollector, SimulationResult
from .packet import Packet, RouteKind
from .probes import (
    PROBES,
    AllocStallProbe,
    LatencyHistogramProbe,
    LinkUtilizationProbe,
    Probe,
    TimeSeriesProbe,
    VcOccupancyProbe,
    make_probes,
)
from .record import RunRecord
from .routing import LazyRouteTable, RouteTable, make_route_table
from .session import ConvergenceSettings, Session
from .simulation import (
    Simulation,
    SimulationArtifacts,
    average_results,
    build_artifacts,
    build_topology,
    run_seeds,
    run_simulation,
)
from .topology import (
    TOPOLOGIES,
    Dragonfly,
    FlattenedButterfly2D,
    HyperX,
    Megafly,
    register_topology,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "NetworkConfig",
    "RouterConfig",
    "RoutingConfig",
    "TrafficConfig",
    # core FlexVC
    "VcArrangement",
    "FlexVcPolicy",
    "DistanceBasedPolicy",
    "HopContext",
    "HopKind",
    "VcRange",
    "LinkType",
    "MessageClass",
    "PathSupport",
    "classify",
    "classify_request_reply",
    "flexvc",
    "make_policy",
    "table1",
    "table2",
    "table3",
    "table4",
    # simulation
    "Simulation",
    "SimulationArtifacts",
    "build_artifacts",
    "run_simulation",
    "run_seeds",
    "average_results",
    "build_topology",
    "SimulationResult",
    "MetricsCollector",
    "LatencyHistogram",
    "Packet",
    "RouteKind",
    # sessions, probes, records
    "Session",
    "ConvergenceSettings",
    "Probe",
    "TimeSeriesProbe",
    "LinkUtilizationProbe",
    "VcOccupancyProbe",
    "LatencyHistogramProbe",
    "AllocStallProbe",
    "PROBES",
    "make_probes",
    "RunRecord",
    # topologies
    "Dragonfly",
    "FlattenedButterfly2D",
    "HyperX",
    "Megafly",
    "TOPOLOGIES",
    "register_topology",
    "RouteTable",
    "LazyRouteTable",
    "make_route_table",
]
