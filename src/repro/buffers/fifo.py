"""Statically partitioned per-VC FIFO buffers (the paper's simple organization)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .base import BufferOrganization

#: Interned per-VC capacity vectors.  A network instantiates one buffer per
#: port (hundreds of thousands at system scale) but only a handful of distinct
#: capacity shapes exist (local vs global ports, request vs reply).  The
#: vector is never mutated after ``__init__`` — allocate/release only touch
#: ``_occupancy`` — so every buffer with the same shape can share one tuple
#: instead of carrying a private list (~90 B each).
# devtools: unbounded-ok(one entry per distinct capacity shape; configs define a handful)
_CAPACITY_MEMO: Dict[Tuple[int, ...], Tuple[int, ...]] = {}


class StaticallyPartitionedBuffer(BufferOrganization):
    """Each VC owns a fixed, private slice of the port memory.

    Parameters
    ----------
    num_vcs:
        Virtual channels in the port.
    capacity_per_vc:
        Either a single capacity (phits) applied to every VC or one value per
        VC.
    """

    __slots__ = ("_capacity", "_occupancy")

    def __init__(self, num_vcs: int, capacity_per_vc: int | Sequence[int]) -> None:
        super().__init__(num_vcs)
        if isinstance(capacity_per_vc, int):
            capacities = [capacity_per_vc] * num_vcs
        else:
            capacities = list(capacity_per_vc)
            if len(capacities) != num_vcs:
                raise ValueError(
                    f"expected {num_vcs} per-VC capacities, got {len(capacities)}"
                )
        for cap in capacities:
            if cap < 1:
                raise ValueError(f"per-VC capacity must be >= 1 phit, got {cap}")
        key = tuple(capacities)
        shared = _CAPACITY_MEMO.get(key)
        if shared is None:
            shared = _CAPACITY_MEMO[key] = key
        self._capacity = shared
        self._occupancy = [0] * num_vcs

    # -- queries -----------------------------------------------------------
    # The phit-accounting checks below stay, but upper-bound VC validation is
    # not repeated on the allocator's per-cycle paths (an out-of-range index
    # fails loudly as IndexError).  Negative indices would silently alias the
    # last VC, so those are still rejected explicitly — current_vc/input_vc
    # use -1 as an "at injection" sentinel elsewhere in the codebase.
    def free_for(self, vc: int) -> int:
        if vc < 0:
            raise ValueError(f"VC {vc} out of range")
        return self._capacity[vc] - self._occupancy[vc]

    def occupancy(self, vc: int) -> int:
        self._check_vc(vc)
        return self._occupancy[vc]

    def capacity_for(self, vc: int) -> int:
        self._check_vc(vc)
        return self._capacity[vc]

    @property
    def total_capacity(self) -> int:
        return sum(self._capacity)

    # -- mutations -----------------------------------------------------------
    def allocate(self, vc: int, phits: int) -> None:
        if vc < 0:
            raise ValueError(f"VC {vc} out of range")
        occupancy = self._occupancy[vc] + phits
        if occupancy > self._capacity[vc]:
            raise ValueError(
                f"VC {vc} overflow: occupancy {self._occupancy[vc]} + {phits} "
                f"> capacity {self._capacity[vc]}"
            )
        self._occupancy[vc] = occupancy
        slab = self._free_slab
        if slab is not None:
            slab[self._free_base + vc] = self._capacity[vc] - occupancy

    def release(self, vc: int, phits: int) -> None:
        if vc < 0:
            raise ValueError(f"VC {vc} out of range")
        occupancy = self._occupancy[vc] - phits
        if occupancy < 0:
            raise ValueError(
                f"VC {vc} underflow: releasing {phits} with occupancy {self._occupancy[vc]}"
            )
        self._occupancy[vc] = occupancy
        slab = self._free_slab
        if slab is not None:
            slab[self._free_base + vc] = self._capacity[vc] - occupancy
