"""Buffer organization interface.

A *buffer organization* governs how the memory of an input port is shared
among its virtual channels.  The same abstraction is used in two places:

* at the **downstream** input port, to account the phits actually stored; and
* at the **upstream** output port, as the credit mirror that decides whether a
  packet may be forwarded (virtual cut-through requires space for the whole
  packet before the transfer starts).

Keeping both sides on the same class guarantees the credit view can never
diverge structurally from the real buffer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence


class BufferOrganization(ABC):
    """Space accounting for the VCs of one port.

    Slotted (as are the stock subclasses): two instances exist per port —
    the buffer proper and the upstream credit mirror — so per-instance
    dicts are measurable at 10^5-endpoint scale."""

    __slots__ = ("num_vcs", "_free_slab", "_free_base")

    def __init__(self, num_vcs: int) -> None:
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.num_vcs = num_vcs
        #: optional flat hot-state view: when bound, ``slab[base + vc]``
        #: mirrors ``free_for(vc)`` after every mutation, so the allocator
        #: inner loop reads plain ints instead of calling methods.
        self._free_slab: list | None = None
        self._free_base = 0

    # -- hot-state binding -----------------------------------------------------
    def bind_free_slab(self, slab: list, base: int) -> None:
        """Mirror per-VC free space into ``slab[base + vc]`` from now on.

        The slab is a flat, preallocated per-router list indexed by a single
        ``(port, vc)`` integer; the buffer keeps its own accounting as the
        source of truth and pushes the derived free-space values on every
        :meth:`allocate`/:meth:`release`.
        """
        self._free_slab = slab
        self._free_base = base
        self._sync_free_slab()

    def _sync_free_slab(self) -> None:
        """Rewrite every bound slab entry (default: one query per VC)."""
        slab = self._free_slab
        if slab is not None:
            base = self._free_base
            for vc in range(self.num_vcs):
                slab[base + vc] = self.free_for(vc)

    # -- queries -----------------------------------------------------------
    @abstractmethod
    def free_for(self, vc: int) -> int:
        """Phits currently available to ``vc`` (private + any shared pool)."""

    @abstractmethod
    def occupancy(self, vc: int) -> int:
        """Phits currently held by ``vc``."""

    @abstractmethod
    def capacity_for(self, vc: int) -> int:
        """Maximum phits ``vc`` could hold if it had the port to itself."""

    @property
    @abstractmethod
    def total_capacity(self) -> int:
        """Total phits of memory in the port."""

    def total_occupancy(self) -> int:
        return sum(self.occupancy(vc) for vc in range(self.num_vcs))

    def can_accept(self, vc: int, phits: int) -> bool:
        """Virtual cut-through admission check for a whole packet."""
        return self.free_for(vc) >= phits

    # -- mutations -----------------------------------------------------------
    @abstractmethod
    def allocate(self, vc: int, phits: int) -> None:
        """Reserve ``phits`` for ``vc``.  Raises if the space is not available."""

    @abstractmethod
    def release(self, vc: int, phits: int) -> None:
        """Return ``phits`` previously allocated to ``vc``."""

    # -- introspection ---------------------------------------------------------
    def occupancies(self) -> Sequence[int]:
        return [self.occupancy(vc) for vc in range(self.num_vcs)]

    def _check_vc(self, vc: int) -> None:
        if not 0 <= vc < self.num_vcs:
            raise ValueError(f"VC {vc} out of range [0, {self.num_vcs})")

    def _check_phits(self, phits: int) -> None:
        if phits < 0:
            raise ValueError(f"phits must be non-negative, got {phits}")
