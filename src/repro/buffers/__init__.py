"""Buffer organizations: statically partitioned FIFOs and DAMQs."""

from .base import BufferOrganization
from .damq import DamqBuffer
from .fifo import StaticallyPartitionedBuffer

__all__ = ["BufferOrganization", "StaticallyPartitionedBuffer", "DamqBuffer"]
