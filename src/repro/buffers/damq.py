"""Dynamically Allocated Multi-Queue (DAMQ) buffers with per-VC reservation.

DAMQs (Tamir & Frazier) share a memory pool among the VCs of a port.  The
paper's DAMQ comparison point reserves a fraction of the port memory privately
per VC (75% private / 25% shared by default, the best configuration found in
Section VI-C) because a fully shared pool deadlocks under distance-based
deadlock avoidance: one VC can absorb the whole pool and starve the escape
VCs (Figure 10).

Occupancy accounting: a VC first consumes its private slice; anything beyond
spills into the shared pool.  The computation is order-independent (it is a
function of the per-VC occupancy only), so allocation and release can happen
in any order.
"""

from __future__ import annotations

from typing import Sequence

from .base import BufferOrganization


class DamqBuffer(BufferOrganization):
    """Shared-pool buffer with optional per-VC private reservation.

    .. note:: slotted; see :class:`BufferOrganization`.

    Parameters
    ----------
    num_vcs:
        Virtual channels sharing the port memory.
    total_capacity:
        Total port memory in phits.
    private_per_vc:
        Phits privately reserved for each VC (a single value or one per VC).
        ``sum(private) <= total_capacity``; the remainder is the shared pool.
    """

    __slots__ = ("_total_capacity", "_private", "_shared_capacity",
                 "_occupancy", "_shared_used")

    def __init__(
        self,
        num_vcs: int,
        total_capacity: int,
        private_per_vc: int | Sequence[int],
    ) -> None:
        super().__init__(num_vcs)
        if total_capacity < 1:
            raise ValueError("total_capacity must be >= 1 phit")
        if isinstance(private_per_vc, int):
            private = [private_per_vc] * num_vcs
        else:
            private = list(private_per_vc)
            if len(private) != num_vcs:
                raise ValueError(f"expected {num_vcs} private reservations, got {len(private)}")
        for value in private:
            if value < 0:
                raise ValueError("private reservation must be non-negative")
        if sum(private) > total_capacity:
            raise ValueError(
                f"private reservations ({sum(private)}) exceed total capacity ({total_capacity})"
            )
        self._total_capacity = total_capacity
        self._private = private
        self._shared_capacity = total_capacity - sum(private)
        self._occupancy = [0] * num_vcs
        #: phits of the shared pool currently in use, maintained incrementally
        #: (a pure function of the per-VC occupancies, so allocation/release
        #: order still does not matter).
        self._shared_used = 0

    @classmethod
    def from_fraction(
        cls, num_vcs: int, total_capacity: int, private_fraction: float
    ) -> "DamqBuffer":
        """Build a DAMQ reserving ``private_fraction`` of the memory per VC.

        The private share is divided evenly among the VCs (rounded down to
        whole phits), mirroring the paper's "75% private" configurations.
        """
        if not 0.0 <= private_fraction <= 1.0:
            raise ValueError("private_fraction must be within [0, 1]")
        private_total = int(total_capacity * private_fraction)
        per_vc = private_total // num_vcs
        return cls(num_vcs, total_capacity, per_vc)

    # -- internals -----------------------------------------------------------
    def shared_free(self) -> int:
        """Phits currently free in the shared pool."""
        return self._shared_capacity - self._shared_used

    def _sync_free_slab(self) -> None:
        # One mutation can move the shared pool and therefore the free space
        # of *every* VC, so the whole port view is rewritten (num_vcs is
        # small, and this only runs on bound — router-owned — buffers).
        slab = self._free_slab
        if slab is not None:
            base = self._free_base
            shared_free = self._shared_capacity - self._shared_used
            occupancy = self._occupancy
            private = self._private
            for vc in range(self.num_vcs):
                private_free = private[vc] - occupancy[vc]
                if private_free < 0:
                    private_free = 0
                slab[base + vc] = private_free + shared_free

    @property
    def shared_capacity(self) -> int:
        return self._shared_capacity

    def private_capacity(self, vc: int) -> int:
        self._check_vc(vc)
        return self._private[vc]

    # -- queries -----------------------------------------------------------
    def free_for(self, vc: int) -> int:
        self._check_vc(vc)
        private_free = max(0, self._private[vc] - self._occupancy[vc])
        return private_free + self.shared_free()

    def occupancy(self, vc: int) -> int:
        self._check_vc(vc)
        return self._occupancy[vc]

    def capacity_for(self, vc: int) -> int:
        self._check_vc(vc)
        return self._private[vc] + self._shared_capacity

    @property
    def total_capacity(self) -> int:
        return self._total_capacity

    # -- mutations -----------------------------------------------------------
    def allocate(self, vc: int, phits: int) -> None:
        self._check_vc(vc)
        self._check_phits(phits)
        if phits > self.free_for(vc):
            raise ValueError(
                f"VC {vc} overflow: requested {phits}, available {self.free_for(vc)}"
            )
        occ = self._occupancy[vc]
        new = occ + phits
        self._occupancy[vc] = new
        priv = self._private[vc]
        self._shared_used += (new - priv if new > priv else 0) - (
            occ - priv if occ > priv else 0
        )
        if self._free_slab is not None:
            self._sync_free_slab()

    def release(self, vc: int, phits: int) -> None:
        self._check_vc(vc)
        self._check_phits(phits)
        occ = self._occupancy[vc]
        if phits > occ:
            raise ValueError(
                f"VC {vc} underflow: releasing {phits} with occupancy {occ}"
            )
        new = occ - phits
        self._occupancy[vc] = new
        priv = self._private[vc]
        self._shared_used += (new - priv if new > priv else 0) - (
            occ - priv if occ > priv else 0
        )
        if self._free_slab is not None:
            self._sync_free_slab()
