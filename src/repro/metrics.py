"""Steady-state statistics: latency, throughput, misrouting, progress tracking.

The paper reports average packet latency and accepted load (phits/node/cycle)
measured in steady state after a warm-up period.  :class:`MetricsCollector`
implements that methodology: packets generated before the measurement window
opens are excluded from latency statistics, and throughput is the number of
phits delivered inside the window divided by ``nodes x window``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional

from .packet import Packet


class ResidentLedger:
    """Network-wide count of packets resident in router input buffers.

    One ledger is shared by all routers of a simulation; ``receive_network``
    increments it and popping a network input port decrements it, which makes
    ``Simulation.total_resident_packets`` (and the deadlock heuristic) O(1)
    instead of a sum over every router.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    offered_load: float
    accepted_load: float
    average_latency: float
    latency_p99: float
    packets_delivered: int
    packets_generated: int
    phits_delivered: int
    measured_cycles: int
    num_nodes: int
    misrouted_fraction: float
    deadlock_suspected: bool
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"offered={self.offered_load:.3f} accepted={self.accepted_load:.3f} "
            f"latency={self.average_latency:.1f}cy delivered={self.packets_delivered}"
        )

    # -- persistence (orchestrator result store) --------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation used by the experiment result store."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        return cls(**data)


class MetricsCollector:
    """Accumulates per-packet statistics and produces a :class:`SimulationResult`."""

    def __init__(self, num_nodes: int, packet_size: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.packet_size = packet_size
        self.measurement_start: Optional[int] = None
        self.measurement_end: Optional[int] = None
        self.reset()

    def reset(self) -> None:
        self.packets_generated = 0
        self.packets_delivered_total = 0
        self.packets_delivered_window = 0
        self.phits_delivered_window = 0
        self.phits_generated_window = 0
        self.latencies: List[int] = []
        self.misrouted_measured = 0
        self.measured_delivered = 0
        self.last_delivery_cycle = -1

    # -- window control ---------------------------------------------------------
    def open_window(self, start_cycle: int, end_cycle: int) -> None:
        """Define the steady-state measurement window ``[start, end)``."""
        if end_cycle <= start_cycle:
            raise ValueError("measurement window must be non-empty")
        self.measurement_start = start_cycle
        self.measurement_end = end_cycle

    def in_window(self, cycle: int) -> bool:
        return (
            self.measurement_start is not None
            and self.measurement_end is not None
            and self.measurement_start <= cycle < self.measurement_end
        )

    # -- recording ----------------------------------------------------------------
    def record_generation(self, packet: Packet, cycle: int) -> None:
        self.packets_generated += 1
        packet.measured = self.in_window(cycle)
        if packet.measured:
            self.phits_generated_window += packet.size_phits

    def record_delivery(self, packet: Packet, cycle: int) -> None:
        self.packets_delivered_total += 1
        self.last_delivery_cycle = cycle
        if self.in_window(cycle):
            self.packets_delivered_window += 1
            self.phits_delivered_window += packet.size_phits
        if packet.measured:
            self.measured_delivered += 1
            self.latencies.append(packet.latency)
            if not packet.is_minimal:
                self.misrouted_measured += 1

    # -- results ------------------------------------------------------------------------
    def _percentile(self, values: List[int], fraction: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return float(ordered[index])

    def result(self, offered_load: float, deadlock_suspected: bool = False) -> SimulationResult:
        if self.measurement_start is None or self.measurement_end is None:
            raise ValueError("measurement window was never opened")
        window = self.measurement_end - self.measurement_start
        accepted = self.phits_delivered_window / (self.num_nodes * window)
        average_latency = (
            sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
        )
        misrouted_fraction = (
            self.misrouted_measured / self.measured_delivered
            if self.measured_delivered else 0.0
        )
        return SimulationResult(
            offered_load=offered_load,
            accepted_load=accepted,
            average_latency=average_latency,
            latency_p99=self._percentile(self.latencies, 0.99),
            packets_delivered=self.packets_delivered_window,
            packets_generated=self.packets_generated,
            phits_delivered=self.phits_delivered_window,
            measured_cycles=window,
            num_nodes=self.num_nodes,
            misrouted_fraction=misrouted_fraction,
            deadlock_suspected=deadlock_suspected,
        )
