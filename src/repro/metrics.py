"""Steady-state statistics: latency, throughput, misrouting, progress tracking.

The paper reports average packet latency and accepted load (phits/node/cycle)
measured in steady state after a warm-up period.  :class:`MetricsCollector`
implements that methodology: packets generated before the measurement window
opens are excluded from latency statistics, and throughput is the number of
phits delivered inside the window divided by ``nodes x window``.

Latencies are accumulated in a :class:`LatencyHistogram` — a bounded bucketed
histogram with an exact fine region — instead of a store-every-latency list,
so PAPER-scale runs (tens of millions of measured packets) take O(1) memory
per packet.  The mean is exact (running integer sum); percentiles are exact
for latencies below :attr:`LatencyHistogram.FINE_LIMIT` cycles and carry a
documented <= 12.5% relative bucket error above it.

Sessions may open several measurement windows per run: ``close_window``
snapshots the window's :class:`SimulationResult` and resets the window-scoped
counters, and an internal epoch counter keeps late deliveries of a previous
window's packets from polluting the next window's statistics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from .packet import Packet


class ResidentLedger:
    """Network-wide count of packets resident in router input buffers.

    One ledger is shared by all routers of a simulation; ``receive_network``
    increments it and popping a network input port decrements it, which makes
    ``Simulation.total_resident_packets`` (and the deadlock heuristic) O(1)
    instead of a sum over every router.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class LatencyHistogram:
    """Bounded-memory latency distribution with an exact fine region.

    Latencies below :attr:`FINE_LIMIT` land in width-1 buckets, so their
    counts, mean and percentiles are *exact* — identical to keeping the full
    sorted list.  Latencies at or above the limit land in logarithmic buckets
    (8 sub-buckets per power of two), whose representative value is the
    bucket's lower edge: the relative error of a percentile that falls in the
    coarse region is bounded by 1/8 (12.5%) of the true value.  The mean is
    always exact — it is computed from a running integer sum, not from bucket
    representatives.

    Memory is O(FINE_LIMIT + 8 * log2(max latency)) regardless of how many
    packets are recorded.
    """

    #: upper bound (exclusive) of the exact width-1 bucket region.
    FINE_LIMIT = 1 << 14  # 16,384 cycles
    #: log2 of the number of sub-buckets per octave in the coarse region.
    COARSE_SUBBITS = 3

    __slots__ = ("fine", "coarse", "count", "total", "max_value")

    def __init__(self) -> None:
        #: width-1 buckets, grown lazily to the largest fine latency seen.
        self.fine: List[int] = []
        #: coarse bucket key -> count (key encodes octave and sub-bucket).
        self.coarse: Dict[int, int] = {}
        self.count = 0
        #: exact running sum of every recorded latency.
        self.total = 0
        self.max_value = -1

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if 0 <= value < self.FINE_LIMIT:
            fine = self.fine
            if value >= len(fine):
                fine.extend([0] * (value + 1 - len(fine)))
            fine[value] += 1
        else:
            octave = value.bit_length() - 1
            sub = (value >> (octave - self.COARSE_SUBBITS)) & (
                (1 << self.COARSE_SUBBITS) - 1
            )
            key = (octave << self.COARSE_SUBBITS) | sub
            self.coarse[key] = self.coarse.get(key, 0) + 1

    def _coarse_lower(self, key: int) -> int:
        """Smallest latency mapping into coarse bucket ``key`` (its edge)."""
        octave = key >> self.COARSE_SUBBITS
        sub = key & ((1 << self.COARSE_SUBBITS) - 1)
        return (1 << octave) | (sub << (octave - self.COARSE_SUBBITS))

    # -- statistics -----------------------------------------------------------
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Value at rank ``round(fraction * (count - 1))``.

        The rank formula matches indexing into the full sorted latency list,
        so fine-region percentiles are bit-identical to the list-based
        implementation this histogram replaced.
        """
        if not self.count:
            return 0.0
        rank = min(self.count - 1, int(round(fraction * (self.count - 1))))
        cumulative = 0
        for value, bucket in enumerate(self.fine):
            if bucket:
                cumulative += bucket
                if cumulative > rank:
                    return float(value)
        for key in sorted(self.coarse):
            cumulative += self.coarse[key]
            if cumulative > rank:
                return float(self._coarse_lower(key))
        return float(self.max_value)  # pragma: no cover - defensive

    def values(self) -> List[int]:
        """Recorded latencies in ascending order (coarse values approximated).

        Materializes ``count`` elements — meant for tests and small runs, not
        for PAPER-scale results (use the bucket accessors instead).
        """
        out: List[int] = []
        for value, bucket in enumerate(self.fine):
            if bucket:
                out.extend([value] * bucket)
        for key in sorted(self.coarse):
            out.extend([self._coarse_lower(key)] * self.coarse[key])
        return out

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON payload: sparse ``[value, count]`` bucket list."""
        buckets = [[value, bucket] for value, bucket in enumerate(self.fine) if bucket]
        buckets.extend(
            [self._coarse_lower(key), self.coarse[key]] for key in sorted(self.coarse)
        )
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max_value,
            "fine_limit": self.FINE_LIMIT,
            "coarse_relative_error": 1 / (1 << self.COARSE_SUBBITS),
            "buckets": buckets,
        }


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    offered_load: float
    accepted_load: float
    average_latency: float
    latency_p99: float
    packets_delivered: int
    packets_generated: int
    phits_delivered: int
    measured_cycles: int
    num_nodes: int
    misrouted_fraction: float
    deadlock_suspected: bool
    extra: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = " DEADLOCK-SUSPECTED" if self.deadlock_suspected else ""
        return (
            f"offered={self.offered_load:.3f} accepted={self.accepted_load:.3f} "
            f"latency={self.average_latency:.1f}cy delivered={self.packets_delivered}"
            f"{flag}"
        )

    # -- persistence (orchestrator result store) --------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation used by the experiment result store."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationResult":
        return cls(**data)


class MetricsCollector:
    """Accumulates per-packet statistics and produces a :class:`SimulationResult`."""

    def __init__(self, num_nodes: int, packet_size: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.packet_size = packet_size
        self.measurement_start: Optional[int] = None
        self.measurement_end: Optional[int] = None
        self.reset()

    def reset(self) -> None:
        self.packets_generated = 0
        self.packets_delivered_total = 0
        self.packets_delivered_window = 0
        self.phits_delivered_window = 0
        self.phits_generated_window = 0
        self.latency_histogram = LatencyHistogram()
        self.misrouted_measured = 0
        self.measured_delivered = 0
        self.last_delivery_cycle = -1
        #: measurement epoch: packets are stamped with the epoch of the window
        #: they were generated in, so a packet from window N delivered after
        #: window N closed never pollutes window N+1's statistics.  Epoch 1
        #: compares equal to the legacy boolean ``measured=True`` stamp.
        self._epoch = 1

    @property
    def latencies(self) -> List[int]:
        """Measured latencies in ascending order (compatibility accessor)."""
        return self.latency_histogram.values()

    # -- window control ---------------------------------------------------------
    def open_window(self, start_cycle: int, end_cycle: int) -> None:
        """Define the steady-state measurement window ``[start, end)``."""
        if end_cycle <= start_cycle:
            raise ValueError("measurement window must be non-empty")
        self.measurement_start = start_cycle
        self.measurement_end = end_cycle

    def close_window(
        self, offered_load: float, deadlock_suspected: bool = False
    ) -> SimulationResult:
        """Snapshot the open window's result and reset window-scoped state.

        After closing, a new window may be opened on the same collector
        (multi-window sessions); cumulative counters (``packets_generated``,
        ``packets_delivered_total``) keep accumulating across windows.
        """
        result = self.result(offered_load, deadlock_suspected=deadlock_suspected)
        self.measurement_start = None
        self.measurement_end = None
        self._epoch += 1
        self.packets_delivered_window = 0
        self.phits_delivered_window = 0
        self.phits_generated_window = 0
        self.latency_histogram = LatencyHistogram()
        self.misrouted_measured = 0
        self.measured_delivered = 0
        return result

    def in_window(self, cycle: int) -> bool:
        return (
            self.measurement_start is not None
            and self.measurement_end is not None
            and self.measurement_start <= cycle < self.measurement_end
        )

    # -- recording ----------------------------------------------------------------
    def record_generation(self, packet: Packet, cycle: int) -> None:
        self.packets_generated += 1
        packet.measured = self._epoch if self.in_window(cycle) else 0
        if packet.measured:
            self.phits_generated_window += packet.size_phits

    def record_delivery(self, packet: Packet, cycle: int) -> None:
        self.packets_delivered_total += 1
        self.last_delivery_cycle = cycle
        if self.in_window(cycle):
            self.packets_delivered_window += 1
            self.phits_delivered_window += packet.size_phits
        if packet.measured == self._epoch:
            self.measured_delivered += 1
            self.latency_histogram.add(packet.latency)
            if not packet.is_minimal:
                self.misrouted_measured += 1

    # -- results ------------------------------------------------------------------------
    def result(self, offered_load: float, deadlock_suspected: bool = False) -> SimulationResult:
        if self.measurement_start is None or self.measurement_end is None:
            raise ValueError("measurement window was never opened")
        window = self.measurement_end - self.measurement_start
        accepted = self.phits_delivered_window / (self.num_nodes * window)
        histogram = self.latency_histogram
        average_latency = histogram.mean()
        misrouted_fraction = (
            self.misrouted_measured / self.measured_delivered
            if self.measured_delivered else 0.0
        )
        return SimulationResult(
            offered_load=offered_load,
            accepted_load=accepted,
            average_latency=average_latency,
            latency_p99=histogram.percentile(0.99),
            packets_delivered=self.packets_delivered_window,
            packets_generated=self.packets_generated,
            phits_delivered=self.phits_delivered_window,
            measured_cycles=window,
            num_nodes=self.num_nodes,
            misrouted_fraction=misrouted_fraction,
            deadlock_suspected=deadlock_suspected,
        )
