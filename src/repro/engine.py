"""Event-driven simulation engine.

The engine owns simulated time.  Components schedule callbacks on a
two-level calendar (packet arrivals, credit returns, output-buffer
releases, delivery notifications); each cycle the engine first fires the
events due at that cycle, then lets the traffic sources generate new packets
and finally steps the routers that declared themselves *active*.

Calendar layout
---------------
Almost every event a network schedules lands within a few link latencies of
the current cycle, so the calendar is split into a **near-term ring** — a
circular buffer of ``RING_SPAN`` per-cycle buckets appended to and drained
with plain list operations — and a **far wheel** (dict of cycle -> bucket
plus a min-heap of cycles) that only sees the rare events scheduled further
out than the ring span.  This removes the heap churn of wake/transmit
scheduling from the hot path while keeping ``run_until``'s idle fast-forward
O(1) when the ring is empty.

Within one cycle, events fire in scheduling order.  The split preserves
this: an event is "far" only while the cycle is at least ``RING_SPAN`` away,
and simulated time only moves forward, so every far event of a cycle was
scheduled before every near event of that cycle.  Firing the far bucket
first, and routing near appends into an existing far bucket, therefore
reproduces the exact single-calendar insertion order.

Events are stored as ``(fn, args)`` pairs and fired as ``fn(*args)``:
:meth:`schedule_call` lets hot callers (links, credit channels, ejection
completions) pass precomputed argument tuples instead of allocating one
closure per packet.

Activity tracking replaces the seed's per-cycle scan of every router: a
router registers as active when it gains work (a packet arrives, a source
enqueues, a credit returns) via :meth:`Engine.activate` and is deregistered
by the engine once its :meth:`has_work` check fails at the top of a cycle.
The active set is iterated in registration order so the shared RNG stream —
and therefore every simulation result — is bit-identical to stepping all
busy routers in router-id order.

When no router is active and every traffic source reports itself quiescent
(see ``quiescent()`` on :class:`~repro.traffic.base.TrafficGenerator`),
:meth:`run_until` fast-forwards straight to the next scheduled event instead
of ticking through empty cycles.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Tuple

Event = Callable[[int], None]

#: number of near-term per-cycle buckets (power of two; must exceed the
#: longest common scheduling distance — link latency + serialization — for
#: the ring to absorb the traffic, though any value is *correct*).
RING_SPAN = 256
_RING_MASK = RING_SPAN - 1


def _noop_pump(now: int) -> bool:
    """Pump of a batch-managed router (stepped by the kernel, never here)."""
    return False


class Engine:
    """Ring + heap event calendar plus the activity-tracked cycle loop."""

    def __init__(self) -> None:
        self.now = 0
        #: near-term calendar: one bucket of (fn, args) pairs per cycle in
        #: [now, now + RING_SPAN), indexed by ``cycle & _RING_MASK``.
        self._ring: List[list] = [[] for _ in range(RING_SPAN)]
        self._ring_events = 0
        #: far calendar: cycle -> bucket, plus a min-heap of those cycles.
        self._wheel: Dict[int, List[Tuple[Callable, tuple]]] = {}
        self._event_cycles: List[int] = []
        self._steppers: List[object] = []
        #: per-stepper merged has_work+step entry points (see register_router).
        self._pumps: List[Callable[[int], bool]] = []
        self._generators: List[object] = []
        #: indices (into ``_steppers``) of routers that may have work.
        self._active: set[int] = set()
        #: timed router wake-ups (cheaper than events: a set union, no calls).
        #: Near wakes ride a ring of index-sets; far wakes use a dict + heap.
        self._wake_ring: List[Optional[set]] = [None] * RING_SPAN
        self._wake_ring_count = 0
        self._wake_wheel: Dict[int, set] = {}
        self._wake_cycles: List[int] = []
        self.events_processed = 0
        #: cycles skipped by idle fast-forward (diagnostics / benchmarks).
        self.idle_cycles_skipped = 0
        #: optional batch stepper (the vectorized kernel) advancing all of
        #: its routers per cycle in one call; the routers it manages are
        #: removed from the pump loop via :meth:`neutralize_stepper`.
        self._batch: Optional[object] = None

    # -- registration -----------------------------------------------------------
    def register_router(self, router: object) -> None:
        """Register an object exposing ``step(now)`` and ``has_work()``.

        Routers start active; they are dropped from the active set once
        ``has_work()`` returns False and must re-activate themselves (via
        :meth:`activate`) when they gain new work.
        """
        index = len(self._steppers)
        self._steppers.append(router)
        # One bound call per active router per cycle: routers expose a merged
        # ``pump(now) -> bool`` (has_work + step); plain steppers get a
        # wrapper so the cycle loop stays uniform.
        pump = getattr(router, "pump", None)
        if pump is None:
            def pump(now: int, _router: object = router) -> bool:
                if _router.has_work():
                    _router.step(now)
                    return True
                return False
        self._pumps.append(pump)
        self._active.add(index)
        # Routers use these handles to signal activity without indirection.
        try:
            router.engine_index = index
            router.engine_activate = self._active.add
        except AttributeError:  # pragma: no cover - read-only test doubles
            pass

    def register_traffic(self, generator: object) -> None:
        """Register an object exposing ``tick(now)`` called once per cycle."""
        self._generators.append(generator)

    def install_batch(self, batch: object) -> None:
        """Install a batch stepper called once per cycle (``batch.step(now)``).

        The batch runs after traffic generation and before the remaining
        per-router pumps; while ``batch.busy()`` the engine never
        fast-forwards across cycles.
        """
        self._batch = batch

    def neutralize_stepper(self, index: int) -> None:
        """Remove stepper ``index`` from the pump loop (batch-managed)."""
        self._pumps[index] = _noop_pump
        self._active.discard(index)

    def activate(self, router: object) -> None:
        """Mark a registered router as having (potential) work."""
        self._active.add(router.engine_index)

    def active_count(self) -> int:
        return len(self._active)

    # -- event scheduling ----------------------------------------------------------
    def schedule_call(self, cycle: int, fn: Callable, args: tuple) -> None:
        """Run ``fn(*args)`` at ``cycle`` (the closure-free hot-path form)."""
        now = self.now
        if cycle < now:
            raise ValueError(f"cannot schedule event at {cycle}, current cycle is {now}")
        wheel = self._wheel
        if wheel:
            bucket = wheel.get(cycle)
            if bucket is not None:
                # A far bucket exists for this cycle; appending keeps the
                # exact single-calendar insertion order (module docstring).
                bucket.append((fn, args))
                return
        if cycle - now < RING_SPAN:
            self._ring[cycle & _RING_MASK].append((fn, args))
            self._ring_events += 1
        else:
            wheel[cycle] = [(fn, args)]
            heapq.heappush(self._event_cycles, cycle)

    def schedule(self, cycle: int, event: Event) -> None:
        """Run ``event(cycle)`` at the given absolute cycle (must not be in the past)."""
        self.schedule_call(cycle, event, (cycle,))

    def schedule_in(self, delay: int, event: Event) -> None:
        self.schedule(self.now + delay, event)

    def schedule_wake(self, cycle: int, index: int) -> None:
        """Re-activate stepper ``index`` at ``cycle`` (timed router sleep)."""
        if cycle <= self.now:
            # The current cycle's ring slot is drained at the top of tick(),
            # so a due-now (or overdue) wake must go straight to the active
            # set — a ring insert would silently fire RING_SPAN cycles late.
            self._active.add(index)
            return
        if cycle - self.now < RING_SPAN:
            slot = cycle & _RING_MASK
            bucket = self._wake_ring[slot]
            if bucket is None:
                self._wake_ring[slot] = {index}
                self._wake_ring_count += 1
            else:
                bucket.add(index)
        else:
            bucket = self._wake_wheel.get(cycle)
            if bucket is None:
                self._wake_wheel[cycle] = {index}
                heapq.heappush(self._wake_cycles, cycle)
            else:
                bucket.add(index)

    # -- execution ---------------------------------------------------------------------
    def _fire_events(self, cycle: int) -> None:
        fired = 0
        heap = self._event_cycles
        while heap and heap[0] == cycle:
            heapq.heappop(heap)
            for fn, args in self._wheel.pop(cycle):
                fn(*args)
                fired += 1
        ring = self._ring
        slot = cycle & _RING_MASK
        bucket = ring[slot]
        while bucket:
            # Events fired now may schedule more work for this same cycle;
            # swap in a fresh bucket so they are picked up by the next pass.
            ring[slot] = []
            self._ring_events -= len(bucket)
            for fn, args in bucket:
                fn(*args)
            fired += len(bucket)
            bucket = ring[slot]
        if fired:
            self.events_processed += fired

    def tick(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.now
        slot = cycle & _RING_MASK
        wakes = self._wake_ring[slot]
        if wakes is not None:
            self._wake_ring[slot] = None
            self._wake_ring_count -= 1
            self._active |= wakes
        if self._wake_cycles and self._wake_cycles[0] <= cycle:
            while self._wake_cycles and self._wake_cycles[0] <= cycle:
                self._active |= self._wake_wheel.pop(heapq.heappop(self._wake_cycles))
        self._fire_events(cycle)
        for generator in self._generators:
            generator.tick(cycle)
        batch = self._batch
        if batch is not None:
            batch.step(cycle)
        active = self._active
        if active:
            pumps = self._pumps
            for index in sorted(active):
                if not pumps[index](cycle):
                    active.discard(index)
        self.now = cycle + 1

    def _quiescent(self) -> bool:
        """True when no router is active and no traffic source can emit."""
        if self._active:
            return False
        if self._batch is not None and self._batch.busy():
            # Batch-managed routers never sit in the active set; any packet
            # resident in one blocks fast-forward exactly like an active
            # router would.
            return False
        for generator in self._generators:
            quiescent = getattr(generator, "quiescent", None)
            if quiescent is None or not quiescent():
                return False
        return True

    def _next_event_cycle(self) -> Optional[int]:
        """Next cycle with a scheduled event or timed router wake."""
        best: Optional[int] = None
        if self._ring_events or self._wake_ring_count:
            # Bounded scan of the near-term ring; the first hit is the answer
            # for the ring (buckets are unique per cycle within the span).
            ring = self._ring
            wake_ring = self._wake_ring
            now = self.now
            for cycle in range(now, now + RING_SPAN):
                slot = cycle & _RING_MASK
                if ring[slot] or wake_ring[slot] is not None:
                    best = cycle
                    break
        events = self._event_cycles
        wakes = self._wake_cycles
        if events and (best is None or events[0] < best):
            best = events[0]
        if wakes and (best is None or wakes[0] < best):
            best = wakes[0]
        return best

    def run(self, cycles: int, callback: Optional[Callable[[int], None]] = None) -> None:
        """Run ``cycles`` additional cycles, optionally invoking ``callback`` each cycle."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.run_until(self.now + cycles, callback)

    def run_until(self, cycle: int, callback: Optional[Callable[[int], None]] = None) -> None:
        """Advance time to ``cycle``, fast-forwarding across idle gaps.

        A gap is skippable only when no router is active and every traffic
        source is quiescent, so skipping never changes simulation results.
        Per-cycle ``callback`` invocation disables skipping.
        """
        while self.now < cycle:
            if callback is None and self._quiescent():
                next_event = self._next_event_cycle()
                target = cycle if next_event is None else min(next_event, cycle)
                if target > self.now:
                    self.idle_cycles_skipped += target - self.now
                    self.now = target
                    continue
            self.tick()
            if callback is not None:
                callback(self.now)

    # -- introspection --------------------------------------------------------------------
    def next_event_cycle(self) -> Optional[int]:
        """Public view of the next scheduled event/wake cycle (None if empty).

        Sessions use this to fast-forward drain phases event by event instead
        of polling idle cycles.
        """
        return self._next_event_cycle()

    def pending_events(self) -> int:
        return self._ring_events + sum(len(events) for events in self._wheel.values())

    def routers(self) -> Iterable[object]:
        return tuple(self._steppers)
