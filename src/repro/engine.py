"""Event-driven simulation engine.

The engine owns simulated time.  Components schedule callbacks on a
heap-backed calendar (packet arrivals, credit returns, output-buffer
releases, delivery notifications); each cycle the engine first fires the
events due at that cycle, then lets the traffic sources generate new packets
and finally steps the routers that declared themselves *active*.

Activity tracking replaces the seed's per-cycle scan of every router: a
router registers as active when it gains work (a packet arrives, a source
enqueues, a credit returns) via :meth:`Engine.activate` and is deregistered
by the engine once its :meth:`has_work` check fails at the top of a cycle.
The active set is iterated in registration order so the shared RNG stream —
and therefore every simulation result — is bit-identical to stepping all
busy routers in router-id order.

When no router is active and every traffic source reports itself quiescent
(see ``quiescent()`` on :class:`~repro.traffic.base.TrafficGenerator`),
:meth:`run_until` fast-forwards straight to the next scheduled event instead
of ticking through empty cycles.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional

Event = Callable[[int], None]


class Engine:
    """Heap-backed event calendar plus the activity-tracked cycle loop."""

    def __init__(self) -> None:
        self.now = 0
        self._wheel: Dict[int, List[Event]] = {}
        #: min-heap of cycles that have at least one pending event.
        self._event_cycles: List[int] = []
        self._steppers: List[object] = []
        self._generators: List[object] = []
        #: indices (into ``_steppers``) of routers that may have work.
        self._active: set[int] = set()
        #: timed router wake-ups: cycle -> set of stepper indices.  Cheaper
        #: than generic events (a set union at the cycle, no callables).
        self._wake_wheel: Dict[int, set] = {}
        self._wake_cycles: List[int] = []
        self.events_processed = 0
        #: cycles skipped by idle fast-forward (diagnostics / benchmarks).
        self.idle_cycles_skipped = 0

    # -- registration -----------------------------------------------------------
    def register_router(self, router: object) -> None:
        """Register an object exposing ``step(now)`` and ``has_work()``.

        Routers start active; they are dropped from the active set once
        ``has_work()`` returns False and must re-activate themselves (via
        :meth:`activate`) when they gain new work.
        """
        index = len(self._steppers)
        self._steppers.append(router)
        self._active.add(index)
        # Routers use these handles to signal activity without indirection.
        try:
            router.engine_index = index
            router.engine_activate = self._active.add
        except AttributeError:  # pragma: no cover - read-only test doubles
            pass

    def register_traffic(self, generator: object) -> None:
        """Register an object exposing ``tick(now)`` called once per cycle."""
        self._generators.append(generator)

    def activate(self, router: object) -> None:
        """Mark a registered router as having (potential) work."""
        self._active.add(router.engine_index)

    def active_count(self) -> int:
        return len(self._active)

    # -- event scheduling ----------------------------------------------------------
    def schedule(self, cycle: int, event: Event) -> None:
        """Run ``event(cycle)`` at the given absolute cycle (must not be in the past)."""
        if cycle < self.now:
            raise ValueError(f"cannot schedule event at {cycle}, current cycle is {self.now}")
        bucket = self._wheel.get(cycle)
        if bucket is None:
            self._wheel[cycle] = [event]
            heapq.heappush(self._event_cycles, cycle)
        else:
            bucket.append(event)

    def schedule_in(self, delay: int, event: Event) -> None:
        self.schedule(self.now + delay, event)

    def schedule_wake(self, cycle: int, index: int) -> None:
        """Re-activate stepper ``index`` at ``cycle`` (timed router sleep)."""
        bucket = self._wake_wheel.get(cycle)
        if bucket is None:
            self._wake_wheel[cycle] = {index}
            heapq.heappush(self._wake_cycles, cycle)
        else:
            bucket.add(index)

    # -- execution ---------------------------------------------------------------------
    def _fire_events(self, cycle: int) -> None:
        while self._event_cycles and self._event_cycles[0] == cycle:
            heapq.heappop(self._event_cycles)
            events = self._wheel.pop(cycle)
            self.events_processed += len(events)
            for event in events:
                event(cycle)

    def tick(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.now
        if self._wake_cycles and self._wake_cycles[0] <= cycle:
            while self._wake_cycles and self._wake_cycles[0] <= cycle:
                self._active |= self._wake_wheel.pop(heapq.heappop(self._wake_cycles))
        self._fire_events(cycle)
        for generator in self._generators:
            generator.tick(cycle)
        active = self._active
        if active:
            steppers = self._steppers
            for index in sorted(active):
                router = steppers[index]
                if router.has_work():
                    router.step(cycle)
                else:
                    active.discard(index)
        self.now = cycle + 1

    def _quiescent(self) -> bool:
        """True when no router is active and no traffic source can emit."""
        if self._active:
            return False
        for generator in self._generators:
            quiescent = getattr(generator, "quiescent", None)
            if quiescent is None or not quiescent():
                return False
        return True

    def _next_event_cycle(self) -> Optional[int]:
        """Next cycle with a scheduled event or timed router wake."""
        events = self._event_cycles
        wakes = self._wake_cycles
        if events and wakes:
            return min(events[0], wakes[0])
        if events:
            return events[0]
        return wakes[0] if wakes else None

    def run(self, cycles: int, callback: Optional[Callable[[int], None]] = None) -> None:
        """Run ``cycles`` additional cycles, optionally invoking ``callback`` each cycle."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.run_until(self.now + cycles, callback)

    def run_until(self, cycle: int, callback: Optional[Callable[[int], None]] = None) -> None:
        """Advance time to ``cycle``, fast-forwarding across idle gaps.

        A gap is skippable only when no router is active and every traffic
        source is quiescent, so skipping never changes simulation results.
        Per-cycle ``callback`` invocation disables skipping.
        """
        while self.now < cycle:
            if callback is None and self._quiescent():
                next_event = self._next_event_cycle()
                target = cycle if next_event is None else min(next_event, cycle)
                if target > self.now:
                    self.idle_cycles_skipped += target - self.now
                    self.now = target
                    continue
            self.tick()
            if callback is not None:
                callback(self.now)

    # -- introspection --------------------------------------------------------------------
    def next_event_cycle(self) -> Optional[int]:
        """Public view of the next scheduled event/wake cycle (None if empty).

        Sessions use this to fast-forward drain phases event by event instead
        of polling idle cycles.
        """
        return self._next_event_cycle()

    def pending_events(self) -> int:
        return sum(len(events) for events in self._wheel.values())

    def routers(self) -> Iterable[object]:
        return tuple(self._steppers)
