"""Cycle-driven simulation engine.

The engine owns simulated time.  Components schedule callbacks on an event
wheel (packet arrivals, credit returns, output-buffer releases, delivery
notifications); each cycle the engine first fires the events due at that
cycle, then lets the traffic sources generate new packets and finally steps
every active router.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional

Event = Callable[[int], None]


class Engine:
    """Event wheel plus the top-level cycle loop."""

    def __init__(self) -> None:
        self.now = 0
        self._wheel: Dict[int, List[Event]] = defaultdict(list)
        self._steppers: List[object] = []
        self._generators: List[object] = []
        self.events_processed = 0

    # -- registration -----------------------------------------------------------
    def register_router(self, router: object) -> None:
        """Register an object exposing ``step(now)`` and ``has_work()``."""
        self._steppers.append(router)

    def register_traffic(self, generator: object) -> None:
        """Register an object exposing ``tick(now)`` called once per cycle."""
        self._generators.append(generator)

    # -- event scheduling ----------------------------------------------------------
    def schedule(self, cycle: int, event: Event) -> None:
        """Run ``event(cycle)`` at the given absolute cycle (must not be in the past)."""
        if cycle < self.now:
            raise ValueError(f"cannot schedule event at {cycle}, current cycle is {self.now}")
        self._wheel[cycle].append(event)

    def schedule_in(self, delay: int, event: Event) -> None:
        self.schedule(self.now + delay, event)

    # -- execution ---------------------------------------------------------------------
    def _fire_events(self, cycle: int) -> None:
        events = self._wheel.pop(cycle, None)
        if not events:
            return
        for event in events:
            event(cycle)
            self.events_processed += 1

    def tick(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.now
        self._fire_events(cycle)
        for generator in self._generators:
            generator.tick(cycle)
        for router in self._steppers:
            if router.has_work():
                router.step(cycle)
        self.now = cycle + 1

    def run(self, cycles: int, callback: Optional[Callable[[int], None]] = None) -> None:
        """Run ``cycles`` additional cycles, optionally invoking ``callback`` each cycle."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            self.tick()
            if callback is not None:
                callback(self.now)

    def run_until(self, cycle: int) -> None:
        while self.now < cycle:
            self.tick()

    # -- introspection --------------------------------------------------------------------
    def pending_events(self) -> int:
        return sum(len(events) for events in self._wheel.values())

    def routers(self) -> Iterable[object]:
        return tuple(self._steppers)
