"""Core lint framework: findings, rules, module analysis, suppressions.

The framework is deliberately small.  A rule is a subclass of :class:`Rule`
with an ``id``, a one-paragraph ``doc``, and a ``check(module)`` generator
that yields :class:`Finding` objects.  :class:`ModuleInfo` wraps one parsed
source file and caches the expensive shared analyses — AST parent links,
comment-based suppressions, and a conservative "is this expression a set?"
type inference — so individual rules stay short.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
]


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location.

    ``fingerprint`` intentionally omits the line number so that a committed
    baseline survives unrelated edits above the finding.
    """

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        return f"{self.path}::{self.rule}::{self.snippet.strip()}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------

# ``# devtools: ignore[rule-id] <reason>`` — generic suppression.
_IGNORE_RE = re.compile(
    r"#\s*devtools:\s*ignore\[(?P<rules>[a-z0-9_,\-\s]+)\]\s*(?P<reason>.*)$"
)
# ``# devtools: unbounded-ok(<reason>)`` — sugar for mem-unbounded-memo.
_UNBOUNDED_RE = re.compile(
    r"#\s*devtools:\s*unbounded-ok\((?P<reason>[^)]*)\)"
)


@dataclass(frozen=True)
class Suppression:
    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str, line: int) -> bool:
        # A suppression applies to its own line and to the line directly
        # below it (comment-above style).
        return rule_id in self.rules and line in (self.line, self.line + 1)


def parse_suppressions(lines: List[str]) -> List[Suppression]:
    out: List[Suppression] = []
    for lineno, text in enumerate(lines, start=1):
        m = _IGNORE_RE.search(text)
        if m:
            rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
            out.append(Suppression(lineno, rules, m.group("reason").strip()))
            continue
        m = _UNBOUNDED_RE.search(text)
        if m:
            out.append(
                Suppression(lineno, ("mem-unbounded-memo",), m.group("reason").strip())
            )
    return out


# --------------------------------------------------------------------------
# Module analysis
# --------------------------------------------------------------------------

_SET_CALLS = {"set", "frozenset"}
# Methods on sets that return sets.
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


class ModuleInfo:
    """One parsed source file plus the shared analyses rules rely on."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.suppressions: List[Suppression] = parse_suppressions(self.lines)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._set_names_cache: Optional[Dict[int, Set[str]]] = None
        self._set_attr_cache: Optional[Set[str]] = None

    # -- generic helpers ---------------------------------------------------

    @classmethod
    def from_path(cls, path: Path, display_path: Optional[str] = None) -> "ModuleInfo":
        return cls(path, display_path or str(path), path.read_text(encoding="utf-8"))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 0),
            message=message,
            snippet=self.snippet(node),
        )

    def suppressed(self, rule_id: str, line: int) -> Optional[Suppression]:
        for sup in self.suppressions:
            if sup.covers(rule_id, line):
                return sup
        return None

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/module node (class bodies fall through
        to the module: class-level names are not function locals)."""
        cur: Optional[ast.AST] = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return cur
            cur = self.parent(cur)
        return self.tree

    # -- set-type inference ------------------------------------------------

    def _scoped_set_names(self) -> Dict[int, Set[str]]:
        """Map id(scope node) -> names known to be bound to sets in it.

        Conservative one-pass inference: a name counts as a set if every
        textual binding we can see assigns it a set-typed expression, and is
        dropped as soon as any binding assigns something else (or something
        we cannot classify).
        """
        if self._set_names_cache is not None:
            return self._set_names_cache
        sets_by_scope: Dict[int, Set[str]] = {}
        poisoned_by_scope: Dict[int, Set[str]] = {}

        def record(scope: ast.AST, name: str, is_set: bool) -> None:
            key = id(scope)
            if is_set:
                sets_by_scope.setdefault(key, set()).add(name)
            else:
                poisoned_by_scope.setdefault(key, set()).add(name)

        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Parameters annotated as sets count as set-typed locals.
                args = node.args
                for arg in (
                    list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                ):
                    if arg.annotation is not None and _annotation_is_set(arg.annotation):
                        record(node, arg.arg, True)
                continue
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value, annotation = [node.target], node.value, node.annotation
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], None
            else:
                continue
            scope = self.enclosing_scope(node)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(node, ast.AugAssign):
                    continue  # |= etc. does not change an existing verdict
                if annotation is not None and _annotation_is_set(annotation):
                    record(scope, target.id, True)
                elif value is not None and _syntactic_set(value):
                    record(scope, target.id, True)
                else:
                    record(scope, target.id, False)

        result: Dict[int, Set[str]] = {}
        for key, names in sets_by_scope.items():
            result[key] = names - poisoned_by_scope.get(key, set())
        self._set_names_cache = result
        return result

    def _self_set_attrs(self) -> Set[str]:
        """Attribute names assigned set-typed values on ``self`` anywhere in
        the module, minus any assigned a non-set value elsewhere."""
        if self._set_attr_cache is not None:
            return self._set_attr_cache
        is_set: Set[str] = set()
        poisoned: Set[str] = set()
        for node in ast.walk(self.tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value, annotation = [node.target], node.value, node.annotation
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if annotation is not None and _annotation_is_set(annotation):
                    is_set.add(target.attr)
                elif value is not None and _syntactic_set(value):
                    is_set.add(target.attr)
                else:
                    poisoned.add(target.attr)
        self._set_attr_cache = is_set - poisoned
        return self._set_attr_cache

    def _expr_builds_set(self, expr: ast.expr) -> bool:
        """Does this expression *syntactically* construct a set?"""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in _SET_CALLS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self.is_set_expr(func.value)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(expr.left) and not isinstance(expr.left, ast.Dict)
        return False

    def is_set_expr(self, expr: ast.expr) -> bool:
        """Conservative verdict: is ``expr`` set-typed at this use site?"""
        if self._expr_builds_set(expr):
            return True
        if isinstance(expr, ast.Name):
            scope = self.enclosing_scope(expr)
            scoped = self._scoped_set_names()
            if expr.id in scoped.get(id(scope), set()):
                return True
            # Module-level bindings are visible inside functions too, unless
            # the function rebinds the name (then it shows up in its scope
            # maps and was already consulted above).
            if scope is not self.tree and expr.id in scoped.get(id(self.tree), set()):
                local_names = _bound_names(scope)
                if expr.id not in local_names:
                    return True
            return False
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return expr.attr in self._self_set_attrs()
        return False


def _syntactic_set(expr: ast.expr) -> bool:
    """Pure-syntax set detection used while *building* the inference tables
    (no name lookups, so no recursion back into them)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _SET_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _syntactic_set(func.value)
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _syntactic_set(expr.left) or _syntactic_set(expr.right)
    return False


def _annotation_is_set(annotation: ast.expr) -> bool:
    node: ast.expr = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet", "AbstractSet", "MutableSet"}
    return False


def _bound_names(scope: ast.AST) -> Set[str]:
    """Names bound (assigned or parameters) directly inside a function scope."""
    names: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = scope.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    for node in ast.walk(scope):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case, stable — baselines key on it),
    ``summary`` (one line), ``doc`` (rationale paragraph shown by
    ``python -m repro.devtools rules``) and implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    doc: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, module: ModuleInfo) -> Iterable[Tuple[Finding, Optional[Suppression]]]:
        """Yield (finding, suppression-or-None) pairs for this module."""
        for finding in self.check(module):
            yield finding, module.suppressed(self.id, finding.line)


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]
