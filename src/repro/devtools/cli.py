"""Command-line interface for the devtools linter.

Exit codes: 0 clean, 1 findings (or parse errors), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline, BaselineError
from .framework import all_rules
from .runner import LintReport, lint_paths

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="Project-specific static analysis for the FlexVC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint source trees against the invariant rules")
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings to subtract",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )

    sub.add_parser("rules", help="print every rule with its rationale")
    return parser


def _render_text(report: LintReport, out: "object") -> None:
    write = getattr(out, "write")
    for finding in report.findings:
        write(finding.render() + "\n")
    for error in report.parse_errors:
        write(f"parse error: {error}\n")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        f" ({len(report.suppressed)} suppressed"
    )
    if report.baseline_matched:
        summary += f", {report.baseline_matched} baseline-matched"
    summary += ")"
    write(summary + "\n")


def cmd_lint(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "error: no such path(s): " + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    baseline: Optional[Baseline] = None
    if args.baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = lint_paths(paths, baseline=baseline)
    if args.write_baseline:
        Baseline.from_findings(report.findings).dump(Path(args.write_baseline))
        print(
            f"wrote {len(report.findings)} finding(s) to {args.write_baseline}",
            file=sys.stdout,
        )
        return 0
    if args.format == "json":
        payload = {
            "files_checked": report.files_checked,
            "findings": [f.to_dict() for f in report.findings],
            "suppressed": [f.to_dict() for f in report.suppressed],
            "baseline_matched": report.baseline_matched,
            "parse_errors": report.parse_errors,
            "clean": report.clean,
        }
        print(json.dumps(payload, indent=2))
    else:
        _render_text(report, sys.stdout)
    return 0 if report.clean else 1


def cmd_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id}")
        print(f"  {rule.summary}")
        for line in _wrap(rule.doc, width=74):
            print(f"    {line}")
        print()
    return 0


def _wrap(text: str, width: int) -> List[str]:
    words = text.split()
    lines: List[str] = []
    current: List[str] = []
    length = 0
    for word in words:
        if current and length + 1 + len(word) > width:
            lines.append(" ".join(current))
            current, length = [], 0
        current.append(word)
        length += (1 if length else 0) + len(word)
    if current:
        lines.append(" ".join(current))
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "rules":
        return cmd_rules()
    parser.error(f"unknown command: {args.command}")
    return 2
