"""Project-specific static analysis: machine-checked simulator invariants.

Seven PRs of correctness claims — bit-identical goldens, zero-cost probe
guards, ``__slots__``/memo-cap memory discipline, dense/lazy and
python/vectorized equivalence — were enforced only by tests and by reviewers
remembering DESIGN.md §§5-9.  This package encodes them as lint rules over
the AST, so a diff that silently iterates an unordered set in the simulation
core, drops a probe guard, or adds an unbounded memo fails CI before it can
reach a hot path.

Usage::

    python -m repro.devtools lint src                   # text findings
    python -m repro.devtools lint src --format json     # machine-readable
    python -m repro.devtools lint src --baseline devtools-baseline.json
    python -m repro.devtools rules                      # per-rule docs

Inline suppressions (every suppression must carry a reason)::

    frontier = set(pending)  # devtools: ignore[det-set-iter] drained unordered on purpose: <why>
    self._memo: dict = {}    # devtools: unbounded-ok(keyed by dst node: at most 2n entries)

See DESIGN.md §10 for the rule catalogue and rationale.
"""

from __future__ import annotations

from .baseline import Baseline
from .framework import Finding, ModuleInfo, Rule, all_rules, get_rule, register_rule
from .runner import LintReport, lint_paths

# Importing the rule modules registers every rule with the framework.
from . import rules as _rules  # noqa: F401  (import-for-side-effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register_rule",
]
