"""Lint driver: file discovery, rule dispatch, report assembly."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline
from .framework import Finding, ModuleInfo, all_rules
from .scopes import rule_applies

__all__ = ["LintReport", "lint_paths", "collect_files"]


@dataclass
class LintReport:
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baseline_matched: int = 0
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving the sorted-walk order.
    seen = {}
    for f in files:
        seen.setdefault(f.resolve(), f)
    return list(seen.values())


def lint_paths(
    paths: Sequence[Path],
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with all registered rules.

    ``root`` (default: cwd) is only used to shorten displayed paths.
    """
    report = LintReport()
    display_root = (root or Path.cwd()).resolve()
    rules = all_rules()
    for file_path in collect_files(paths):
        resolved = file_path.resolve()
        try:
            display = str(resolved.relative_to(display_root))
        except ValueError:
            display = str(file_path)
        try:
            module = ModuleInfo.from_path(file_path, display_path=display)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(f"{display}: {exc}")
            continue
        report.files_checked += 1
        for rule in rules:
            if not rule_applies(rule.id, resolved):
                continue
            for finding, suppression in rule.run(module):
                if suppression is not None:
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    if baseline is not None:
        report.findings, report.baseline_matched = baseline.filter(report.findings)
    return report
