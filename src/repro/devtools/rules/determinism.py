"""Determinism rules.

The reproduction's headline property is bit-identical results for a given
seed (tests/test_golden_results.py compares floats exactly, BENCH.md records
fingerprints).  These rules flag the constructs that historically break that
property: iteration in ``set`` order (hash-randomized across processes for
str keys, insertion-dependent for ints), ``id()``-keyed ordering (address-
dependent), unseeded ``random``, wall-clock reads, and environment reads
inside the simulation core.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Finding, ModuleInfo, Rule, register_rule

__all__ = [
    "SetIterationRule",
    "SetPopRule",
    "IdOrderRule",
    "UnseededRandomRule",
    "WallClockRule",
    "EnvReadRule",
]


# Calls that materialize their argument's iteration order.  Reductions
# (sum/min/max/any/all), len() and sorted() are order-insensitive and are
# simply never flagged — only these wrappers bake set order into a sequence.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate"}


def _iter_targets(module: ModuleInfo) -> Iterator[ast.expr]:
    """Every expression the module iterates in a loop or comprehension."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


@register_rule
class SetIterationRule(Rule):
    id = "det-set-iter"
    summary = "no bare iteration over set-typed expressions in the sim core"
    doc = (
        "Iterating a set visits elements in hash-table order, which depends "
        "on insertion history and (for str/bytes keys) per-process hash "
        "randomization.  Any simulation decision made in that order breaks "
        "bit-identical goldens.  Wrap the set in sorted(...) before "
        "iterating, or keep an ordered list alongside it.  Membership tests, "
        "len(), and reductions (sum/min/max/any/all) remain fine."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for expr in _iter_targets(module):
            if module.is_set_expr(expr):
                yield module.finding(
                    self.id,
                    expr,
                    "iteration over a set is hash-order-dependent; wrap in sorted(...) "
                    "or iterate an ordered companion list",
                )
        # list(s)/tuple(s)/enumerate(s): materializes set order.
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            if node.func.id not in _ORDER_SENSITIVE_WRAPPERS or not node.args:
                continue
            if module.is_set_expr(node.args[0]):
                yield module.finding(
                    self.id,
                    node,
                    f"{node.func.id}() over a set materializes hash order; "
                    "use sorted(...) instead",
                )


@register_rule
class SetPopRule(Rule):
    id = "det-set-pop"
    summary = "no set.pop() / next(iter(set)) in the sim core"
    doc = (
        "set.pop() and next(iter(s)) return an arbitrary element chosen by "
        "hash-table layout — the classic nondeterministic work-queue bug.  "
        "Pop from a sorted list, or use min(s)/max(s) when any deterministic "
        "choice will do."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # s.pop() with no positional args on a set-typed receiver.
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and module.is_set_expr(func.value)
            ):
                yield module.finding(
                    self.id,
                    node,
                    "set.pop() returns a hash-order-arbitrary element; pop from a "
                    "sorted list instead",
                )
            # next(iter(s))
            if (
                isinstance(func, ast.Name)
                and func.id == "next"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.id == "iter"
                and node.args[0].args
                and module.is_set_expr(node.args[0].args[0])
            ):
                yield module.finding(
                    self.id,
                    node,
                    "next(iter(set)) picks a hash-order-arbitrary element; use "
                    "min(...)/max(...) or a sorted list",
                )


@register_rule
class IdOrderRule(Rule):
    id = "det-id-order"
    summary = "no id()-derived ordering or keying in the sim core"
    doc = (
        "id(obj) is a memory address: it varies run to run, so sorting by it "
        "or keying a dict/set with it injects allocator state into "
        "simulation decisions.  Give objects an explicit integer index "
        "(router.index, packet.uid) and order by that.  id() inside error "
        "messages or repr strings is not flagged."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            # sorted(..., key=id) / .sort(key=id) / min|max(..., key=id)
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "key" and _expr_mentions_id_call_or_ref(kw.value):
                        yield module.finding(
                            self.id,
                            node,
                            "ordering by id() depends on memory addresses; key on an "
                            "explicit index instead",
                        )
            # d[id(x)] subscript or {id(x): ...} dict key or {id(x), ...} set
            if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
                yield module.finding(
                    self.id,
                    node,
                    "id()-keyed container ties state to memory addresses; key on an "
                    "explicit index instead",
                )
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        yield module.finding(
                            self.id,
                            key,
                            "id()-keyed dict ties state to memory addresses; key on an "
                            "explicit index instead",
                        )
            if isinstance(node, (ast.DictComp, ast.SetComp)) and _is_id_call(
                node.key if isinstance(node, ast.DictComp) else node.elt
            ):
                yield module.finding(
                    self.id,
                    node,
                    "id()-keyed comprehension ties state to memory addresses; key on "
                    "an explicit index instead",
                )


def _is_id_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "id"
    )


def _expr_mentions_id_call_or_ref(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name) and expr.id == "id":
        return True
    if isinstance(expr, ast.Lambda):
        return any(_is_id_call(sub) for sub in ast.walk(expr.body) if isinstance(sub, ast.Call))
    return False


@register_rule
class UnseededRandomRule(Rule):
    id = "det-unseeded-random"
    summary = "module-level random is banned in the sim core; use the seeded Random"
    doc = (
        "All stochastic choices must flow from the single "
        "random.Random(config.seed) instance that Simulation constructs and "
        "threads through routing/traffic.  Touching the module-level random "
        "functions (random.random, random.choice, ...) — or falling back to "
        "the random module when a caller passes rng=None — silently decouples "
        "a run from its seed.  Importing random to construct Random(seed) is "
        "allowed; everything else is not."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        random_aliases = {"random"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield module.finding(
                            self.id,
                            node,
                            f"from random import {alias.name}: module-level random "
                            "bypasses the seeded rng; accept an rng parameter",
                        )
        for node in ast.walk(module.tree):
            # random.X where X is not Random
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in random_aliases
                and node.attr != "Random"
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"random.{node.attr} uses the unseeded module-level generator; "
                    "use the seeded rng threaded from Simulation",
                )
            # bare `random` used as a value (e.g. `rng = rng or random`)
            if (
                isinstance(node, ast.Name)
                and node.id in random_aliases
                and isinstance(node.ctx, ast.Load)
            ):
                parent = module.parent(node)
                if isinstance(parent, ast.Attribute) and parent.value is node:
                    continue  # handled above as random.X
                yield module.finding(
                    self.id,
                    node,
                    "the random module itself is used as an rng value; this aliases "
                    "the unseeded global generator",
                )


@register_rule
class WallClockRule(Rule):
    id = "det-wallclock"
    summary = "no wall-clock, uuid4 or urandom reads in the sim core"
    doc = (
        "Simulated time is engine.now; wall-clock reads (time.time, "
        "time.perf_counter, datetime.now, ...) inside the core leak host "
        "timing into behavior or recorded metrics.  uuid.uuid4 and "
        "os.urandom are entropy reads with the same effect.  Wall-clock "
        "provenance belongs in session.py, which is outside this rule's "
        "scope by design."
    )

    _TIME_ATTRS = {
        "time",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "time_ns",
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if isinstance(base, ast.Name):
                if base.id == "time" and node.attr in self._TIME_ATTRS:
                    yield module.finding(
                        self.id,
                        node,
                        f"time.{node.attr} reads the host clock inside the sim core; "
                        "use engine.now (simulated time)",
                    )
                elif base.id == "uuid" and node.attr == "uuid4":
                    yield module.finding(
                        self.id, node, "uuid.uuid4 is an entropy read; derive ids from counters"
                    )
                elif base.id == "os" and node.attr == "urandom":
                    yield module.finding(
                        self.id, node, "os.urandom is an entropy read; use the seeded rng"
                    )
            if (
                isinstance(base, ast.Name)
                and base.id == "datetime"
                and node.attr in self._DATETIME_ATTRS
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"datetime.{node.attr} reads the host clock inside the sim core",
                )
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "datetime"
                and base.attr == "datetime"
                and node.attr in self._DATETIME_ATTRS
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"datetime.datetime.{node.attr} reads the host clock inside the sim core",
                )


@register_rule
class EnvReadRule(Rule):
    id = "det-env-read"
    summary = "no environment-variable reads in the sim core"
    doc = (
        "Behavior switches must come from SimulationConfig so they are "
        "recorded in run provenance.  os.environ / os.getenv inside the core "
        "makes results depend on invisible shell state.  Backend selection "
        "reads its env var once at the session layer, outside this scope."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "os"
                and node.attr in {"environ", "getenv"}
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"os.{node.attr} read inside the sim core; route the switch "
                    "through SimulationConfig instead",
                )
