"""Memory-bound rules.

PR 7's leak fix: long sweeps with per-(src,dst) routing state grew memos
without bound.  The repo convention is a cap constant checked with a
wholesale-clear guard (``if len(self._plan_memo) >= _MEMO_CAP:
self._plan_memo.clear()``) or a BoundedLRU.  This rule makes the convention
machine-checked: any dict-valued memo/cache binding in a hot module must be
capped, bounded, or explicitly suppressed with a written reason.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from ..framework import Finding, ModuleInfo, Rule, register_rule

__all__ = ["UnboundedMemoRule", "BareSuppressionRule"]


_MEMO_NAME_RE = re.compile(r"(memo|cache)", re.IGNORECASE)
_CAP_NAME_RE = re.compile(r"(_CAP$|^MAX_|_MAX$|_LIMIT$)")


@register_rule
class UnboundedMemoRule(Rule):
    id = "mem-unbounded-memo"
    summary = "dict memos in hot modules need a cap constant or unbounded-ok reason"
    doc = (
        "A dict whose name contains 'memo' or 'cache', bound in a hot "
        "module, must be bounded: either the module checks "
        "`len(<memo>) >= <CAP-constant>` somewhere (the wholesale-clear "
        "pattern from routing/base.py), or the value is a BoundedLRU, or the "
        "binding carries `# devtools: unbounded-ok(<reason>)` stating why "
        "growth is inherently bounded (e.g. keyed by node id: at most n "
        "entries).  Suppressions without a reason are themselves flagged."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        guarded = self._guarded_names(module)
        for node in ast.walk(module.tree):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not self._is_dict_expr(value):
                continue
            for target in targets:
                name = _target_name(target)
                if name is None or not _MEMO_NAME_RE.search(name):
                    continue
                if name in guarded:
                    continue
                yield module.finding(
                    self.id,
                    node,
                    f"dict memo {name!r} has no cap: add a `len(...) >= <CAP>` "
                    "clear-guard, use BoundedLRU, or annotate "
                    "`# devtools: unbounded-ok(<reason>)`",
                )

    @staticmethod
    def _is_dict_expr(value: Optional[ast.expr]) -> bool:
        if isinstance(value, ast.Dict):
            return True
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "dict"
        ):
            return True
        return False

    def _guarded_names(self, module: ModuleInfo) -> Set[str]:
        """Memo names with a `len(name) >= CAP` guard anywhere in the module."""
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            if not isinstance(node.ops[0], (ast.GtE, ast.Gt)):
                continue
            left, right = node.left, node.comparators[0]
            if not (
                isinstance(left, ast.Call)
                and isinstance(left.func, ast.Name)
                and left.func.id == "len"
                and left.args
            ):
                continue
            cap_name = _target_name(right)
            if cap_name is None or not _CAP_NAME_RE.search(cap_name):
                continue
            measured = _target_name(left.args[0])
            if measured is not None:
                names.add(measured)
        return names


def _target_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register_rule
class BareSuppressionRule(Rule):
    id = "meta-bare-suppression"
    summary = "every devtools suppression must carry a written reason"
    doc = (
        "The acceptance bar for suppressions is a reason a reviewer can "
        "evaluate, not a bare opt-out.  `# devtools: ignore[rule]` with no "
        "trailing text, or `# devtools: unbounded-ok()` with empty parens, "
        "is flagged here.  This rule cannot be suppressed."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for sup in module.suppressions:
            if sup.reason.strip():
                continue
            line_text = (
                module.lines[sup.line - 1].strip()
                if 1 <= sup.line <= len(module.lines)
                else ""
            )
            yield Finding(
                rule=self.id,
                path=module.display_path,
                line=sup.line,
                message=(
                    f"suppression of {', '.join(sup.rules)} has no reason; state "
                    "why the invariant holds here"
                ),
                snippet=line_text,
            )

    def run(self, module: ModuleInfo) -> Iterator[tuple[Finding, None]]:  # type: ignore[override]
        # Deliberately not suppressible: yield findings with no suppression.
        for finding in self.check(module):
            yield finding, None
