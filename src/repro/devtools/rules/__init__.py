"""Rule modules.  Importing this package registers every rule."""

from __future__ import annotations

from . import determinism, hotpath, memory  # noqa: F401

__all__ = ["determinism", "hotpath", "memory"]
