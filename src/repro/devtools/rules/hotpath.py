"""Hot-path discipline rules.

PR 3 established the zero-cost-when-unsubscribed probe contract: every hook
attribute defaults to ``None`` and every dispatch site is guarded with
``if hook is not None:`` so an unprobed run pays one attribute read, not a
call.  PR 7 established the memory discipline: per-packet/per-port classes
declare ``__slots__`` and bounded FIFOs are lists, not deques (an empty
deque is ~624 B vs ~56 B for a list — at 10^5 ports that is the difference
between fitting in RAM and not).
"""

from __future__ import annotations

import ast
import copy
from typing import Iterator, Optional

from ..framework import Finding, ModuleInfo, Rule, register_rule

__all__ = ["ProbeGuardRule", "SlotsRule", "NoDequeRule"]


# The hook attributes ProbeHub.wire() installs (probes.py).  Calling one of
# these names IS a probe dispatch.
HOOK_NAMES = frozenset(
    {
        "on_injection",
        "on_misroute",
        "on_stall",
        "on_occupancy",
        "delivery_hook",
        "probe_hook",
    }
)


@register_rule
class ProbeGuardRule(Rule):
    id = "hot-probe-guard"
    summary = "probe hook calls must sit under an `X is not None` guard"
    doc = (
        "Probe hooks default to None and may only be invoked under an "
        "`is not None` test of the same expression (directly, or via a local "
        "alias: `hook = port.on_occupancy` then `if hook is not None: "
        "hook(...)`).  An unguarded call crashes unprobed runs; a truthiness "
        "guard (`if hook:`) is rejected too because it invokes __bool__ on "
        "arbitrary callables.  This keeps the no-probe hot path at a single "
        "attribute-read + pointer compare per site."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name: Optional[str] = None
            if isinstance(callee, ast.Attribute) and callee.attr in HOOK_NAMES:
                name = callee.attr
            elif isinstance(callee, ast.Name) and callee.id in HOOK_NAMES:
                name = callee.id
            if name is None:
                continue
            if self._guarded(module, node, callee):
                continue
            yield module.finding(
                self.id,
                node,
                f"probe hook {name}(...) called without an enclosing "
                f"`... is not None` guard on the same expression",
            )

    def _guarded(self, module: ModuleInfo, call: ast.Call, callee: ast.expr) -> bool:
        target = ast.dump(_strip_ctx(callee))
        node: Optional[ast.AST] = call
        while node is not None:
            parent = module.parent(node)
            if isinstance(parent, ast.If) and node in parent.body:
                if _test_asserts_not_none(parent.test, target):
                    return True
            if isinstance(parent, ast.IfExp) and node is parent.body:
                if _test_asserts_not_none(parent.test, target):
                    return True
            if isinstance(parent, ast.Assert):
                if _test_asserts_not_none(parent.test, target):
                    return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Look for a preceding `assert X is not None` in the same body.
                for stmt in parent.body:
                    if stmt is node:
                        break
                    if isinstance(stmt, ast.Assert) and _test_asserts_not_none(
                        stmt.test, target
                    ):
                        return True
                return False
            node = parent
        return False


def _strip_ctx(node: ast.expr) -> ast.expr:
    """Copy with all Load/Store contexts normalized so dumps compare equal."""

    class _Normalize(ast.NodeTransformer):
        def visit_Name(self, n: ast.Name) -> ast.AST:  # noqa: N802
            return ast.copy_location(ast.Name(id=n.id, ctx=ast.Load()), n)

        def visit_Attribute(self, n: ast.Attribute) -> ast.AST:  # noqa: N802
            self.generic_visit(n)
            return ast.copy_location(
                ast.Attribute(value=n.value, attr=n.attr, ctx=ast.Load()), n
            )

    return _Normalize().visit(copy.deepcopy(node))


def _test_asserts_not_none(test: ast.expr, target_dump: str) -> bool:
    """Does ``test`` (possibly an `and` chain) contain `target is not None`?"""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_test_asserts_not_none(v, target_dump) for v in test.values)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], ast.IsNot) and isinstance(
            test.comparators[0], ast.Constant
        ):
            if test.comparators[0].value is None:
                return ast.dump(_strip_ctx(test.left)) == target_dump
    return False


@register_rule
class SlotsRule(Rule):
    id = "hot-slots"
    summary = "classes in per-packet/per-port modules must declare __slots__"
    doc = (
        "Objects created once per packet, flit or port dominate resident "
        "memory at scale; a __dict__ per instance costs ~56-104 B over the "
        "slotted layout.  Classes in the designated modules must declare "
        "__slots__ in the class body or use @dataclass(slots=True).  "
        "Exception/Protocol/ABC helper classes are exempt."
    )

    _EXEMPT_BASES = {
        "Exception",
        "BaseException",
        "ValueError",
        "RuntimeError",
        "TypeError",
        "KeyError",
        "Protocol",
        "ABC",
        "Enum",
        "IntEnum",
        "NamedTuple",
        "TypedDict",
    }

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt(node) or self._has_slots(node):
                continue
            yield module.finding(
                self.id,
                node,
                f"class {node.name} in a hot module has no __slots__; add "
                "__slots__ or @dataclass(slots=True)",
            )

    def _exempt(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name in self._EXEMPT_BASES:
                return True
        return False

    def _has_slots(self, node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            if isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    return True
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                func = deco.func
                name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
                if name == "dataclass":
                    for kw in deco.keywords:
                        if (
                            kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            return True
        return False


@register_rule
class NoDequeRule(Rule):
    id = "hot-no-deque"
    summary = "no collections.deque in hot modules (PR 7 regression class)"
    doc = (
        "PR 7 replaced per-port deques with lists: an empty deque allocates "
        "a 64-slot block (~624 B) versus ~56 B for a list, and the FIFOs in "
        "question are small and bounded, so list.append/pop(0) or an index "
        "cursor wins on both memory and speed.  Any deque import or "
        "construction in a hot module reintroduces that regression."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "collections":
                for alias in node.names:
                    if alias.name == "deque":
                        yield module.finding(
                            self.id,
                            node,
                            "deque imported in a hot module; use a list-backed FIFO "
                            "(see DESIGN.md §7)",
                        )
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "deque"
                and isinstance(node.value, ast.Name)
                and node.value.id == "collections"
            ):
                yield module.finding(
                    self.id,
                    node,
                    "collections.deque used in a hot module; use a list-backed FIFO",
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "deque"
            ):
                yield module.finding(
                    self.id,
                    node,
                    "deque constructed in a hot module; use a list-backed FIFO",
                )
