"""Committed-baseline support: grandfathered findings that do not fail CI.

The baseline is a JSON multiset of finding fingerprints
(``path::rule::snippet`` — line numbers excluded so unrelated edits above a
grandfathered finding do not invalidate it).  ``lint --baseline FILE``
subtracts baseline entries from the report; ``lint --write-baseline FILE``
snapshots the current findings.  The repo's committed baseline is expected
to stay empty — the mechanism exists so *future* rules can land before their
violations are fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from .framework import Finding

__all__ = ["Baseline", "BaselineError"]

_VERSION = 1


class BaselineError(ValueError):
    """Raised for a missing or malformed baseline file."""


@dataclass
class Baseline:
    entries: Counter[str] = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise BaselineError(f"baseline file not found: {path}") from exc
        except (OSError, ValueError) as exc:
            raise BaselineError(f"baseline file unreadable or not JSON: {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise BaselineError(f"baseline {path}: expected {{'version': {_VERSION}, ...}}")
        raw = payload.get("findings", [])
        if not isinstance(raw, list):
            raise BaselineError(f"baseline {path}: 'findings' must be a list")
        entries: Counter[str] = Counter()
        for item in raw:
            if not isinstance(item, dict) or not {"path", "rule", "snippet"} <= set(item):
                raise BaselineError(
                    f"baseline {path}: each finding needs path/rule/snippet keys"
                )
            entries[f"{item['path']}::{item['rule']}::{str(item['snippet']).strip()}"] += 1
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint() for f in findings))

    def dump(self, path: Path) -> None:
        findings = []
        for fingerprint, count in sorted(self.entries.items()):
            file_path, rule, snippet = fingerprint.split("::", 2)
            for _ in range(count):
                findings.append({"path": file_path, "rule": rule, "snippet": snippet})
        payload = {"version": _VERSION, "findings": findings}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Return (new findings, number matched by the baseline)."""
        remaining: Counter[str] = Counter(self.entries)
        fresh: List[Finding] = []
        matched = 0
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched += 1
            else:
                fresh.append(finding)
        return fresh, matched
