"""Rule scoping: which repro modules each rule applies to.

Paths are matched by their suffix relative to the ``repro`` package root so
that the linter gives identical verdicts whether invoked on ``src``,
``src/repro`` or an individual file.  Files that are *not* inside a ``repro``
package (e.g. test fixtures in a temp directory) get **every** rule — that is
what makes the linter's own test fixtures exercise rules without replicating
the package layout.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

__all__ = ["relative_to_repro", "rule_applies", "SCOPES"]


# Determinism rules cover the simulation core: everything that executes
# between ``Simulation.__init__`` and the last delivered packet.
_SIM_CORE = (
    "engine.py",
    "packet.py",
    "link.py",
    "cache.py",
    "faults.py",
    "simulation.py",
    "router/",
    "routing/",
    "traffic/",
    "buffers/",
    "kernel/",
    "core/",
    "topology/",
)

# Wall-clock reads are additionally barred from metrics (they feed recorded
# results); session.py is *exempt* — it stamps wall-clock provenance into run
# records on purpose (elapsed_wall_s), which never feeds simulated state.
_WALLCLOCK_SCOPE = _SIM_CORE + ("metrics.py",)

# Hot modules for the memory/FIFO rules: code that runs per-flit/per-cycle.
_HOT = (
    "engine.py",
    "link.py",
    "router/",
    "routing/",
    "buffers/",
    "traffic/",
    "kernel/",
    "core/",
)

# Modules whose classes are instantiated per-packet/per-port at scale and
# therefore must declare ``__slots__``.  Deliberately excludes router.py,
# simulation.py and metrics.py: Router/Simulation/MetricsCollector are
# one-per-run (or one-per-router) objects where __slots__ buys nothing.
_SLOTS_SCOPE = (
    "packet.py",
    "link.py",
    "cache.py",
    "router/ports.py",
    "router/credits.py",
    "buffers/",
)

# The storage layer replays journals and rewrites stores: its on-disk byte
# order must be reproducible, so the ordering-determinism rules apply.  It
# is deliberately OUTSIDE det-wallclock/det-env-read scope — lock
# heartbeats/staleness need wall-clock time, and the crash-injection test
# seam reads the environment, both legitimately.
_STORE = ("store/",)

SCOPES: dict[str, Sequence[str]] = {
    "det-set-iter": _SIM_CORE + _STORE,
    "det-set-pop": _SIM_CORE + _STORE,
    "det-id-order": _SIM_CORE + _STORE,
    "det-unseeded-random": _SIM_CORE + _STORE,
    "det-wallclock": _WALLCLOCK_SCOPE,
    "det-env-read": _SIM_CORE,
    "hot-probe-guard": ("router/", "link.py", "traffic/", "faults.py"),
    "hot-slots": _SLOTS_SCOPE,
    "hot-no-deque": _HOT,
    "mem-unbounded-memo": _HOT + _STORE,
    # meta-findings (bare suppressions) apply everywhere by construction
    "meta-bare-suppression": (),
}


def relative_to_repro(path: Path) -> Optional[str]:
    """Return ``path`` relative to the innermost ``repro`` package dir, as a
    posix string, or ``None`` if the file is not inside a repro package."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, 0, -1):
        if parts[i - 1] == "repro":
            return "/".join(parts[i:]) if parts[i:] else None
    return None


def rule_applies(rule_id: str, path: Path) -> bool:
    rel = relative_to_repro(path)
    if rel is None:
        return True  # outside the package: fixture mode, all rules active
    if rel.startswith("devtools/"):
        return False  # the linter does not lint itself
    if rule_id == "meta-bare-suppression":
        return True
    prefixes = SCOPES.get(rule_id, ())
    return any(
        rel == prefix or (prefix.endswith("/") and rel.startswith(prefix))
        for prefix in prefixes
    )
