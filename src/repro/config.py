"""Configuration dataclasses for simulations and experiments.

The defaults follow Table V of the paper (router speedup 2x, 5-cycle pipeline,
32/256-phit local/global VC buffers, 8-phit packets, JSQ selection, PB
threshold 3) with one deliberate substitution documented in DESIGN.md: the
default network is a *scaled* balanced Dragonfly (``h=2``: 9 groups, 36
routers, 72 nodes) instead of the paper's ``h=8`` (2,064 routers), so that
pure-Python experiments finish in seconds rather than days.  Every parameter
of the paper's setup remains reachable through these dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Mapping, Optional, Tuple, Union

from .core.arrangement import VcArrangement
from .faults import FaultSchedule
from .topology import TOPOLOGIES
from .topology.base import Topology

VALID_BUFFER_ORGANIZATIONS = ("static", "damq")
VALID_VC_POLICIES = ("baseline", "flexvc")
VALID_ROUTINGS = ("min", "val", "par", "pb")
VALID_VC_SELECTIONS = ("jsq", "highest", "lowest", "random")
VALID_TRAFFIC_PATTERNS = ("uniform", "adversarial", "bursty")
VALID_PB_SENSING = ("port", "vc")

#: flat pre-registry NetworkConfig field names, accepted for backward
#: compatibility and translated through each topology's ``legacy_fields``.
_LEGACY_NETWORK_FIELDS = ("h", "p", "a", "num_groups", "k1", "k2", "fb_nodes_per_router")

#: default suspected-deadlock window (single source of truth; re-exported by
#: :mod:`repro.simulation` as ``DEADLOCK_WINDOW_CYCLES``).
DEFAULT_DEADLOCK_WINDOW_CYCLES = 2500


def _freeze_param_value(value: Any) -> Any:
    """Make a parameter value hashable (lists arrive from JSON/callers)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param_value(item) for item in value)
    return value

ParamsInput = Union[None, Mapping[str, Any], Tuple[Tuple[str, Any], ...]]


@dataclass(frozen=True, init=False)
class NetworkConfig:
    """Topology and link parameters.

    The topology is named by its registry entry
    (:data:`repro.topology.TOPOLOGIES`); its parameters travel as a sorted
    tuple of ``(name, value)`` pairs so configurations stay hashable and
    content-hashable.  Construction accepts a mapping::

        NetworkConfig(topology="hyperx", params={"s": (4, 3, 3)})

    and, for backward compatibility, the flat legacy keywords of the
    pre-registry configuration (``h``/``p``/``a``/``num_groups`` for the
    Dragonfly, ``k1``/``k2``/``fb_nodes_per_router`` for the Flattened
    Butterfly); legacy keywords that do not apply to the named topology are
    ignored, exactly as the old flat dataclass ignored them.
    """

    topology: str = "dragonfly"
    #: topology parameters as sorted (name, value) pairs; defaults come from
    #: the registered parameter dataclass.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Link latencies in cycles (Table V: 10 local / 100 global).
    local_latency: int = 10
    global_latency: int = 100

    def __init__(
        self,
        topology: str = "dragonfly",
        params: ParamsInput = None,
        local_latency: int = 10,
        global_latency: int = 100,
        **legacy: Any,
    ) -> None:
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "local_latency", local_latency)
        object.__setattr__(self, "global_latency", global_latency)
        merged = dict(params or {})
        unknown = [name for name in legacy if name not in _LEGACY_NETWORK_FIELDS]
        if unknown:
            raise TypeError(
                f"unexpected NetworkConfig argument(s) {unknown}; topology "
                "parameters go into params={...}"
            )
        provided = {name: value for name, value in legacy.items() if value is not None}
        if provided:
            if topology not in TOPOLOGIES:
                raise TypeError(
                    f"cannot translate legacy parameter(s) {sorted(provided)} "
                    f"for unknown topology {topology!r}"
                )
            spec = TOPOLOGIES.get(topology)
            param_names = {f.name for f in dataclass_fields(spec.params_cls)}
            for name, value in provided.items():
                target = spec.legacy_fields.get(name)
                if target is not None:
                    merged[target] = value
                elif name in param_names:
                    # Same-named parameter of a post-registry topology
                    # (e.g. Megafly's h/num_groups): pass straight through.
                    merged[name] = value
                elif not spec.legacy_fields:
                    # Post-registry topologies never existed under the flat
                    # scheme, so an untranslatable keyword is a user error,
                    # not backward compatibility.
                    raise TypeError(
                        f"topology {topology!r} does not take legacy "
                        f"parameter {name!r}; use params={{...}}"
                    )
                # else: pre-registry topology (dragonfly / flattened
                # butterfly) — the old flat dataclass carried every
                # topology's fields at once, so foreign ones stay ignored.
        merged = {name: _freeze_param_value(value) for name, value in merged.items()}
        # Normalize against the parameter dataclass so structurally equal
        # configurations compare (and content-hash) equal regardless of which
        # defaults were spelled out; invalid parameters keep the raw form and
        # surface through validate().
        if topology in TOPOLOGIES:
            spec = TOPOLOGIES.get(topology)
            try:
                instance = spec.params_cls(**merged)
            except TypeError:
                pass
            else:
                merged = {
                    f.name: _freeze_param_value(getattr(instance, f.name))
                    for f in dataclass_fields(spec.params_cls)
                }
        object.__setattr__(self, "params", tuple(sorted(merged.items())))

    # -- resolution -------------------------------------------------------------
    def make_params(self) -> Any:
        """Validated parameter-dataclass instance for the named topology."""
        return TOPOLOGIES.get(self.topology).make_params(dict(self.params))

    def build(self) -> Topology:
        """Instantiate the described topology through the registry."""
        return TOPOLOGIES.get(self.topology).build(dict(self.params))

    def build_cached(self) -> Topology:
        """Shared topology instance through the registry's build cache.

        Used by the sweep-scale artifact path
        (:func:`repro.simulation.build_artifacts`): jobs of the same sweep
        describe the same immutable graph, so one instance serves all of
        them.  Use :meth:`build` when a private instance is required.
        """
        return TOPOLOGIES.build_cached(self.topology, dict(self.params))

    def param(self, name: str, default: Any = None) -> Any:
        """Read one topology parameter (post-translation name)."""
        return dict(self.params).get(name, default)

    def validate(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES.names()}, got {self.topology!r}"
            )
        if self.local_latency < 1 or self.global_latency < 1:
            raise ValueError("link latencies must be >= 1 cycle")
        self.make_params()  # raises ValueError on invalid parameters


@dataclass(frozen=True)
class RouterConfig:
    """Router microarchitecture and buffer sizing."""

    #: "static" (per-VC FIFOs) or "damq".
    buffer_organization: str = "static"
    #: Fraction of the port memory privately reserved per VC in DAMQ mode
    #: (the paper's best configuration is 75%, Section VI-C).
    damq_private_fraction: float = 0.75
    #: Per-VC buffer capacities in phits (Table V defaults).
    local_vc_phits: int = 32
    global_vc_phits: int = 256
    injection_vc_phits: int = 256
    #: Per-port totals.  When set they override the per-VC sizes and the port
    #: memory is divided among the implemented VCs — the "constant buffer per
    #: port" mode of Figures 6 and 11.
    local_port_phits: Optional[int] = None
    global_port_phits: Optional[int] = None
    num_injection_vcs: int = 3
    output_buffer_phits: int = 32
    #: Crossbar frequency speedup (allocation iterations per cycle).
    speedup: int = 2
    #: Router pipeline latency in cycles.
    pipeline_latency: int = 5

    def validate(self) -> None:
        if self.buffer_organization not in VALID_BUFFER_ORGANIZATIONS:
            raise ValueError(
                f"buffer_organization must be one of {VALID_BUFFER_ORGANIZATIONS}, "
                f"got {self.buffer_organization!r}"
            )
        if not 0.0 <= self.damq_private_fraction <= 1.0:
            raise ValueError("damq_private_fraction must be in [0, 1]")
        for name in ("local_vc_phits", "global_vc_phits", "injection_vc_phits",
                     "output_buffer_phits"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1 phit")
        for name in ("local_port_phits", "global_port_phits"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 phit when set")
        if self.num_injection_vcs < 1:
            raise ValueError("num_injection_vcs must be >= 1")
        if self.speedup < 1:
            raise ValueError("speedup must be >= 1")
        if self.pipeline_latency < 0:
            raise ValueError("pipeline_latency must be >= 0")

    def port_capacity(self, num_vcs: int, is_global: bool) -> int:
        """Total phits of memory for a port with ``num_vcs`` VCs."""
        per_port = self.global_port_phits if is_global else self.local_port_phits
        if per_port is not None:
            return per_port
        per_vc = self.global_vc_phits if is_global else self.local_vc_phits
        return per_vc * num_vcs

    def vc_capacity(self, num_vcs: int, is_global: bool) -> int:
        """Per-VC capacity (statically partitioned view) for a port."""
        return max(1, self.port_capacity(num_vcs, is_global) // num_vcs)


@dataclass(frozen=True)
class RoutingConfig:
    """Routing algorithm, VC policy and adaptive-routing sensing options."""

    algorithm: str = "min"
    vc_policy: str = "baseline"
    vc_selection: str = "jsq"
    #: Piggyback / UGAL threshold T (Table V).
    pb_threshold: int = 3
    #: Saturation sensing granularity: whole port occupancy or a single VC.
    pb_sensing: str = "port"
    #: FlexVC-minCred: consider only minimally-routed credits when sensing.
    pb_min_credits_only: bool = False
    #: A global port is saturated when its occupancy exceeds this factor times
    #: the average occupancy of the router's global ports (paper: 50% above).
    pb_saturation_factor: float = 1.5

    def validate(self) -> None:
        if self.algorithm not in VALID_ROUTINGS:
            raise ValueError(f"algorithm must be one of {VALID_ROUTINGS}, got {self.algorithm!r}")
        if self.vc_policy not in VALID_VC_POLICIES:
            raise ValueError(f"vc_policy must be one of {VALID_VC_POLICIES}")
        if self.vc_selection not in VALID_VC_SELECTIONS:
            raise ValueError(f"vc_selection must be one of {VALID_VC_SELECTIONS}")
        if self.pb_sensing not in VALID_PB_SENSING:
            raise ValueError(f"pb_sensing must be one of {VALID_PB_SENSING}")
        if self.pb_threshold < 0:
            raise ValueError("pb_threshold must be >= 0")
        if self.pb_saturation_factor <= 0:
            raise ValueError("pb_saturation_factor must be > 0")


@dataclass(frozen=True)
class TrafficConfig:
    """Synthetic traffic pattern parameters (Section IV-B)."""

    pattern: str = "uniform"
    #: Offered load in phits/node/cycle.
    load: float = 0.5
    packet_size: int = 8
    #: Generate request-reply (reactive) traffic.
    reactive: bool = False
    #: Average burst length (packets) of the BURSTY-UN ON/OFF Markov model.
    burst_length: float = 5.0
    #: ADV traffic sends to a random node ``adversarial_offset`` groups ahead.
    adversarial_offset: int = 1

    def validate(self) -> None:
        if self.pattern not in VALID_TRAFFIC_PATTERNS:
            raise ValueError(f"pattern must be one of {VALID_TRAFFIC_PATTERNS}")
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("load must be within [0, 1] phits/node/cycle")
        if self.packet_size < 1:
            raise ValueError("packet_size must be >= 1 phit")
        if self.burst_length < 1.0:
            raise ValueError("burst_length must be >= 1 packet")
        if self.adversarial_offset < 1:
            raise ValueError("adversarial_offset must be >= 1")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of one simulation run."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    arrangement: VcArrangement = field(
        default_factory=lambda: VcArrangement.single_class(2, 1)
    )
    warmup_cycles: int = 1500
    measure_cycles: int = 3000
    seed: int = 1
    #: A run is flagged as suspected-deadlocked when no packet is delivered
    #: for this many cycles while traffic is resident in the network.
    deadlock_window_cycles: int = DEFAULT_DEADLOCK_WINDOW_CYCLES
    #: deterministic fault-injection schedule (empty = pristine network).
    #: Non-empty schedules hash into ``config_key``; the empty default is
    #: omitted from the key payload so every no-fault key is unchanged.
    faults: FaultSchedule = field(default_factory=FaultSchedule)

    def validate(self) -> None:
        self.network.validate()
        self.router.validate()
        self.routing.validate()
        self.traffic.validate()
        self.faults.validate()
        if self.warmup_cycles < 0 or self.measure_cycles < 1:
            raise ValueError("warmup_cycles must be >= 0 and measure_cycles >= 1")
        if self.deadlock_window_cycles < 1:
            raise ValueError("deadlock_window_cycles must be >= 1")
        if self.traffic.reactive and not self.arrangement.is_reactive:
            raise ValueError(
                "reactive traffic requires an arrangement with reply VCs "
                "(use VcArrangement.request_reply)"
            )
        self._validate_arrangement_supports_routing()

    def _validate_arrangement_supports_routing(self) -> None:
        """Reject configurations whose routing cannot be deadlock-free.

        The check is driven entirely by the topology's declared worst-case
        minimal path and escape shape — no topology is special-cased by name.
        """
        from .core.feasibility import PathSupport, classify_minimal
        from .core.link_types import reference_vc_requirements_for

        # The check only reads the topology's declared routing shape, so the
        # registry's shared instance is sufficient — validating every point
        # of a sweep must not rebuild the graph every time.
        topology = self.network.build_cached()
        minimal = topology.canonical_minimal_sequence
        algorithm = self.routing.algorithm
        routing_for_check = {"min": "MIN", "val": "VAL", "par": "PAR", "pb": "VAL"}[algorithm]
        if self.routing.vc_policy == "flexvc":
            support = classify_minimal(
                self.arrangement, routing_for_check, minimal,
                worst_escape=topology.worst_escape_sequence,
            )
            if support == PathSupport.UNSUPPORTED:
                raise ValueError(
                    f"arrangement {self.arrangement.label()} cannot support "
                    f"{routing_for_check} routing even opportunistically"
                )
        else:
            if topology.has_link_type_restrictions:
                needed_local, needed_global = reference_vc_requirements_for(
                    minimal, routing_for_check
                )
            else:
                # Untyped networks: the distance-based policy assigns local
                # slots by position within a phase and advances phase offsets
                # by max(2, diameter) (see RoutingAlgorithm.phase_ref), so the
                # requirement follows that arithmetic — e.g. a complete graph
                # (diameter 1) needs 1/3/4 local VCs for MIN/VAL/PAR, a
                # diameter-2 network the paper's 2/4/5.
                diameter = max(1, topology.diameter)
                phase = max(2, diameter)
                needed_global = 0
                needed_local = {
                    "MIN": diameter,
                    "VAL": phase + diameter,
                    "PAR": 1 + phase + diameter,
                }[routing_for_check]
            if (self.arrangement.request_local < needed_local
                    or self.arrangement.request_global < needed_global):
                raise ValueError(
                    f"baseline (distance-based) {routing_for_check} routing needs at least "
                    f"{needed_local}/{needed_global} request VCs, "
                    f"got {self.arrangement.request_local}/{self.arrangement.request_global}"
                )
            if self.traffic.reactive and (
                    self.arrangement.reply_local < needed_local
                    or self.arrangement.reply_global < needed_global):
                raise ValueError(
                    f"baseline reactive {routing_for_check} routing needs at least "
                    f"{needed_local}/{needed_global} reply VCs"
                )

    # -- convenience -------------------------------------------------------------
    def with_load(self, load: float) -> "SimulationConfig":
        """Copy of this configuration at a different offered load."""
        return replace(self, traffic=replace(self.traffic, load=load))

    def with_seed(self, seed: int) -> "SimulationConfig":
        return replace(self, seed=seed)

    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles
