"""Batch-of-routers vectorized stepping backend (DESIGN.md §8).

One :class:`VectorizedKernel` replaces the engine's per-router pump loop for
every router of a simulation.  Each cycle it advances the whole network in
four phases:

0. **Release maturing** — output-buffer reclamations whose cycle has come
   are applied eagerly (the scalar path applies them lazily inside candidate
   checks; both orders yield the same occupancy at every read point, the
   laziness is pure accounting).
1. **Injection** — ``Router._inject_from_sources`` runs unchanged, scalar,
   for every router with backlog (it draws no RNG and schedules no events,
   so running all injections before any allocation is order-equivalent to
   the scalar per-router interleaving).
2. **Vector pass** — a handful of numpy array operations over incrementally
   maintained mirrors of the hot-state slabs decide, for every allocation
   input of every router at once, whether the scalar allocator would (a)
   skip it, (b) need a full scalar scan (some pipeline-ready head has no
   cached forwarding plan yet — computing plans can draw RNG, so only the
   exact scalar loop may do it), or (c) propose a request, and *which* VC
   slot wins the round-robin scan.
3. **Scalar completion** — per router, in ascending router order (so shared
   RNG draws replay in the scalar order), winners are turned into request
   tuples by re-running the scalar candidate evaluation on the single
   winning slot, walks run the exact scalar input-scan, and the output
   stage, grant execution, ejection and ``speedup-1`` extra iterations are
   byte-for-byte clones of the scalar allocator with mirror writes added.

The mirrors cover exactly the state the vector pass reads: per-slot head
readiness and encoded candidate feasibility, per-input crossbar timers and
round-robin pointers, per-output busy/occupancy timers, per-(port,vc)
downstream credit, and ejection busy timers.  Everything else stays in the
canonical slabs, which remain the single source of truth for every scalar
code path.

Blocked-verdict memoization (``_in_state[...+2]``/``_pv_masks``) is never
engaged under the kernel: verdicts are a pure skip-list for the scalar
scan-everything loop, and the vector pass re-evaluates every input each
cycle for the cost of a few array ops, so the kernel simply leaves every
verdict cleared (the scalar equivalence proof for verdicts runs in the
other direction: a recorded verdict only ever *skips* provably fruitless
scans).  Likewise the router sleep/wake machinery is bypassed entirely:
managed routers are removed from the engine's active set and the kernel is
stepped unconditionally while the network holds packets (``busy()``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..packet import RouteKind
from ..routing.base import EjectionRequest
from ..router.router import (
    _SEL_GENERIC,
    _SEL_HIGHEST,
    _SEL_JSQ,
    _SEL_LOWEST,
)

_MINIMAL = RouteKind.MINIMAL

#: "never" sentinel for cycle-valued mirrors (matches router.NEVER's role).
BIG = 1 << 62

#: feasible-winner key marker: keys are ``MID | (rank << 32) | slot`` so a
#: walk marker (0) always wins the per-input min-reduction, any feasible
#: key beats BIG, and rank/slot unpack from the low bits.
MID = 1 << 45


class _RouterMeta:
    """Per-router references bound once at construction (no per-cycle setup)."""

    __slots__ = (
        "router", "alloc_inputs", "port_data", "in_state", "in_busy",
        "in_rr", "out_state", "credit_free", "eject_busy", "out_by_port",
        "eject_flat", "first_node", "allocator", "routing_plan",
        "on_hop_taken", "sel_mode", "selection", "rng", "input_base",
        "out_row_base", "eject_row_base", "credit_base", "slot_base",
        "n_inj_inputs", "n_inj_vcs", "ledger",
    )


class VectorizedKernel:
    """numpy batch stepper over the routers of one simulation."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.engine = sim.engine
        self.routers = list(sim.routers)
        self.ledger = sim._resident_ledger
        config = sim.config
        #: all traffic of a run is fixed-size (generator and reactive replies
        #: both use config.traffic.packet_size), so admission thresholds are
        #: a single scalar in every array comparison.
        self.SIZE = config.traffic.packet_size
        self.speedup = config.router.speedup
        self._schedule_call = sim.engine.schedule_call

        self._build_arrays()
        self._rewire()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_arrays(self) -> None:
        in_router: List[int] = []      # flat input -> router index
        slot_vc: List[int] = []        # flat slot -> vc within its input
        slot_nvcs: List[int] = []      # flat slot -> num_vcs of its input
        slot_input: List[int] = []     # flat slot -> flat input index
        input_offsets: List[int] = [0]
        in_busy_init: List[int] = []
        in_rr_init: List[int] = []
        cap_rows: List[int] = []       # net out rows: output buffer capacity
        row_fix: List[tuple] = []      # net rows: (out_state, ob, pending)
        credit_init: List[int] = []
        self._rmeta: List[_RouterMeta] = []

        for r, router in enumerate(self.routers):
            meta = _RouterMeta()
            meta.router = router
            meta.alloc_inputs = router._alloc_inputs
            meta.in_state = router._in_state
            meta.in_busy = router._in_busy
            meta.in_rr = router._in_rr
            meta.out_state = router._out_state
            meta.credit_free = router._credit_free
            meta.eject_busy = router._eject_busy
            meta.out_by_port = router._out_by_port
            meta.eject_flat = router._eject_flat
            meta.first_node = router.nodes[0] if router.nodes else 0
            meta.allocator = router.allocator
            meta.routing_plan = router.routing.plan
            meta.on_hop_taken = router.routing.on_hop_taken
            meta.sel_mode = router._sel_mode
            meta.selection = router.selection
            meta.rng = router.rng
            meta.ledger = self.ledger
            meta.n_inj_inputs = len(router.injection_ports)
            meta.n_inj_vcs = router._n_inj_vcs
            #: same per-input constants as the scalar allocator binds.
            meta.port_data = [
                (port.queues, port.head_plans, port.rr_orders, port.num_vcs,
                 None if port.is_injection else port.link_type,
                 port.is_injection)
                for port in router._alloc_inputs
            ]
            meta.input_base = len(in_router)
            meta.slot_base = [0] * len(router._alloc_inputs)
            for local, port in enumerate(router._alloc_inputs):
                meta.slot_base[local] = len(slot_vc)
                in_router.append(r)
                in_busy_init.append(router._in_busy[local])
                in_rr_init.append(router._in_rr[local])
                for vc in range(port.num_vcs):
                    slot_vc.append(vc)
                    slot_nvcs.append(port.num_vcs)
                    slot_input.append(meta.input_base + local)
                input_offsets.append(len(slot_vc))
            meta.out_row_base = len(cap_rows)
            for port in sorted(router.output_ports):
                op = router.output_ports[port]
                cap_rows.append(router._out_cap[port])
                row_fix.append(
                    (router._out_state, router._out_base[port],
                     router._out_pending[port])
                )
            meta.credit_base = len(credit_init)
            credit_init.extend(router._credit_free)
            self._rmeta.append(meta)

        # Eject rows follow the net rows; one sentinel "never ok" row last.
        n_net = len(cap_rows)
        eject_lens = [len(router._eject_busy) for router in self.routers]
        base = n_net
        for meta, elen in zip(self._rmeta, eject_lens):
            meta.eject_row_base = base
            base += elen
        n_rows = base + 1  # + sentinel
        self._sentinel_row = n_rows - 1
        self._n_net_rows = n_net

        S = len(slot_vc)
        NI = len(in_router)
        self.in_router = in_router
        self.slot_vc_list = slot_vc
        self.slot_input_list = slot_input

        self.slot_vc = np.asarray(slot_vc, dtype=np.int64)
        self.slot_nvcs = np.asarray(slot_nvcs, dtype=np.int64)
        self.slot_input = np.asarray(slot_input, dtype=np.int64)
        self.slot_idx = np.arange(S, dtype=np.int64)
        self.seg_starts = np.asarray(input_offsets[:-1], dtype=np.int64)

        self.ready = np.full(S, BIG, dtype=np.int64)
        self.unencoded = np.ones(S, dtype=bool)
        #: per-slot candidate feasibility-pair ids (index into the lazy
        #: (out_row, rid) pair table below); pid 0 is the never-feasible
        #: sentinel pair carried by unplanned/opaque slots and absent
        #: second candidates.
        self.cand0_pid = np.zeros(S, dtype=np.int64)
        self.cand1_pid = np.zeros(S, dtype=np.int64)

        self.in_busy_m = np.asarray(in_busy_init, dtype=np.int64)
        self.in_rr_m = np.asarray(in_rr_init, dtype=np.int64)
        assert self.in_busy_m.shape[0] == NI

        self.xbusy = np.zeros(n_rows, dtype=np.int64)
        self.xbusy[self._sentinel_row] = BIG
        self.occ_x = np.zeros(n_rows, dtype=np.int64)
        cap_x = np.full(n_rows, BIG, dtype=np.int64)
        cap_x[:n_net] = np.asarray(cap_rows, dtype=np.int64)
        cap_x[self._sentinel_row] = -BIG
        self.cap_x = cap_x
        self.release_head = np.full(n_net, BIG, dtype=np.int64)
        self._row_fix = row_fix

        self.credit_free_m = np.asarray(credit_init, dtype=np.int64)

        #: credit-feasibility ranges: rid -> span of credit_free_m indices;
        #: a slot candidate is credit-feasible iff any entry of its range
        #: holds >= SIZE free phits (exact for every stock selection — they
        #: all pick some VC iff one fits).  rid 0 is the always-true range
        #: used by ejection candidates.
        self._rid_map: dict = {}
        self._rid_gather_list: List[int] = [0]
        self._rid_offsets_list: List[int] = [0]
        self._rid_gather = np.asarray([0], dtype=np.int64)
        self._rid_offsets = np.asarray([0], dtype=np.int64)

        #: lazy (out_row, rid) feasibility-pair table: distinct candidate
        #: shapes network-wide are few (one per (output port, VC range) per
        #: router), so per-pair feasibility is computed on this tiny table
        #: and slots just gather it — two np.take's instead of four.
        #: pid 0 = (sentinel row, rid 0): never feasible.
        self._pid_map: dict = {(self._sentinel_row, 0): 0}
        self._pair_row_list: List[int] = [self._sentinel_row]
        self._pair_rid_list: List[int] = [0]
        #: encode fast path: (out row, credit span start, count) -> pid in
        #: one lookup (memoizes the _rid_for + _pid_for pair).
        self._enc_map: dict = {}
        self._pair_row = np.asarray([self._sentinel_row], dtype=np.int64)
        self._pair_rid = np.asarray([0], dtype=np.int64)
        #: set when a scan encoded a new rid/pair; the arrays are rebuilt
        #: from the lists at most once per cycle (eager per-insert rebuilds
        #: are quadratic in table size while routes are being discovered).
        self._tables_dirty = False

        #: preallocated per-cycle work buffers (S-sized ops dominate the
        #: vector pass; out= into these avoids one allocation per op).
        self._b_ready = np.empty(S, dtype=bool)
        self._b_feas = np.empty(S, dtype=bool)
        self._b_feas2 = np.empty(S, dtype=bool)
        self._b_rank = np.empty(S, dtype=np.int64)
        self._b_gather = np.empty(S, dtype=np.int64)
        #: static feasible-key component: MID | slot index (rank lands in
        #: bits 32..39, below MID).
        self._slot_key = self.slot_idx + MID

    def _rid_for(self, gstart: int, count: int) -> int:
        key = (gstart, count)
        rid = self._rid_map.get(key)
        if rid is None:
            rid = len(self._rid_offsets_list)
            self._rid_map[key] = rid
            self._rid_offsets_list.append(len(self._rid_gather_list))
            self._rid_gather_list.extend(range(gstart, gstart + count))
            self._tables_dirty = True
        return rid

    def _pid_for(self, row: int, rid: int) -> int:
        key = (row, rid)
        pid = self._pid_map.get(key)
        if pid is None:
            pid = len(self._pair_row_list)
            self._pid_map[key] = pid
            self._pair_row_list.append(row)
            self._pair_rid_list.append(rid)
            self._tables_dirty = True
        return pid

    def _enc_pid(self, row: int, gstart: int, count: int) -> int:
        key = (row, gstart, count)
        pid = self._enc_map.get(key)
        if pid is None:
            pid = self._pid_for(row, self._rid_for(gstart, count))
            self._enc_map[key] = pid
        return pid

    # ------------------------------------------------------------------
    # Wiring: replace receivers / credit sinks, neutralize pumps
    # ------------------------------------------------------------------
    def _rewire(self) -> None:
        engine = self.engine
        topology = self.sim.topology
        for router in self.routers:
            for info in topology.ports(router.router_id):
                downstream = self.routers[info.neighbor]
                back_port = topology.port_to(info.neighbor, router.router_id)
                link = router.output_ports[info.port].link
                link._deliver = self._make_receiver(
                    self._rmeta[info.neighbor], downstream, back_port
                )
                channel = downstream.input_ports[back_port].credit_channel
                channel.connect(
                    self._make_credit_sink(
                        self._rmeta[router.router_id], router, info.port
                    )
                )
            # The kernel steps managed routers itself: take them out of the
            # engine's pump loop and make wake()/activate no-ops.
            engine.neutralize_stepper(router.engine_index)
            router.engine_activate = None

    def _make_receiver(self, meta: _RouterMeta, router, port_id: int):
        """Arrival callback: scalar receive semantics + slot-ready mirror.

        Clone of the fused ``make_network_receiver`` fast path minus the
        sleep/wake bookkeeping (the kernel steps every cycle regardless,
        and verdicts are never recorded so there is nothing to clamp).
        """
        input_port = router._input_by_port[port_id]
        pipeline_latency = router._pipeline_latency
        buffer = input_port.buffer
        occupancy = buffer._occupancy
        capacity = buffer._capacity
        queues = input_port.queues
        hot = input_port._hot
        hb = input_port._hb
        local = router._alloc_inputs.index(input_port)
        slot_base = meta.slot_base[local]
        ready_m = self.ready
        ledger = self.ledger

        def deliver(packet, vc: int, now: int) -> None:
            size = packet.size_phits
            occ = occupancy[vc] + size
            if occ > capacity[vc]:
                buffer.allocate(vc, size)  # raises the canonical overflow
            occupancy[vc] = occ
            packet.current_vc = vc
            ready = now + pipeline_latency
            queue = queues[vc]
            if queue is None:
                queue = queues[vc] = []
            queue.append((packet, ready))
            resident = hot[hb] + 1
            hot[hb] = resident
            if resident == 1 or ready < hot[hb + 1]:
                hot[hb + 1] = ready
            hot[hb + 2] = -1
            hook = input_port.on_occupancy
            if hook is not None:
                hook(vc, size, occ, now)
            router.resident_packets += 1
            ledger.count += 1
            if len(queue) == 1:
                # New head: its plan is None (the slot's ``unencoded`` flag
                # was left True by the pop/initial state).
                ready_m[slot_base + vc] = ready

        return deliver

    def _make_credit_sink(self, meta: _RouterMeta, router, port_id: int):
        """Credit-return callback: scalar accounting + credit mirror.

        Clone of the fused ``make_credit_sink`` static path minus verdict
        clearing and wake filtering (no verdicts and no sleep exist under
        the kernel).
        """
        tracker = router.output_ports[port_id].credits
        mirror = tracker.mirror
        occupancy = mirror._occupancy
        capacity = mirror._capacity
        credit_free = router._credit_free
        base = router._cfree_base[port_id]
        ledger_vcs = tracker.ledger.per_vc
        gbase = meta.credit_base + base
        cfm = self.credit_free_m

        def credit_return(vc: int, phits: int, minimal: bool) -> None:
            occ = occupancy[vc] - phits
            if occ < 0:
                mirror.release(vc, phits)  # raises the canonical underflow
            occupancy[vc] = occ
            free = capacity[vc] - occ
            credit_free[base + vc] = free
            cfm[gbase + vc] = free
            split = ledger_vcs[vc]
            if minimal:
                if phits > split.minimal:
                    raise ValueError(
                        f"removing {phits} minimal phits but only "
                        f"{split.minimal} accounted"
                    )
                split.minimal -= phits
            else:
                if phits > split.nonminimal:
                    raise ValueError(
                        f"removing {phits} non-minimal phits but only "
                        f"{split.nonminimal} accounted"
                    )
                split.nonminimal -= phits

        return credit_return

    # ------------------------------------------------------------------
    # Activity (engine quiescence hook)
    # ------------------------------------------------------------------
    def busy(self) -> bool:
        """Any packet resident in a router (network, injection or source)?

        In-flight link/credit traffic is covered by the engine's event
        calendar, exactly as for the scalar backend.
        """
        if self.ledger.count:
            return True
        for router in self.routers:
            if router._injection_resident or router._source_backlog:
                return True
        return False

    # ------------------------------------------------------------------
    # Per-cycle stepping
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        # Phase 0: apply matured output-buffer reclamations eagerly.
        release_head = self.release_head
        if release_head[release_head.argmin()] <= now:
            for row in np.flatnonzero(release_head <= now).tolist():
                out_state, ob, pending = self._row_fix[row]
                occupancy = out_state[ob + 3]
                while pending and pending[0][0] <= now:
                    occupancy -= pending.pop(0)[1]
                out_state[ob + 3] = occupancy
                self.occ_x[row] = occupancy
                release_head[row] = pending[0][0] if pending else BIG

        # Phase 1: injection (scalar, ascending router order; injection
        # draws no RNG and schedules no events, so batching it before any
        # allocation is order-equivalent to the scalar interleaving).
        ready_m = self.ready
        for meta in self._rmeta:
            router = meta.router
            if router._source_backlog and now >= router._inject_gate:
                router._inject_from_sources(now)
                # Re-sync the head-ready mirror of the injection slots (an
                # injection may have created a new head; plans stay None so
                # the unencoded flag — still True — routes it to a walk).
                base = meta.input_base
                for local in range(meta.n_inj_inputs):
                    queues = meta.port_data[local][0]
                    sbase = meta.slot_base[local]
                    for vc in range(meta.n_inj_vcs):
                        queue = queues[vc]
                        ready_m[sbase + vc] = queue[0][1] if queue else BIG

        # Phase 2: the vector pass.  Everything folds into one key per slot
        # and one min-reduction per input: a ready slot without a cached
        # plan contributes the walk marker 0 (always wins the min — the
        # scalar scan covers every slot of the input anyway), a ready slot
        # whose encoded candidate pair is feasible contributes
        # MID | rank << 32 | slot, anything else contributes BIG.  An input
        # is active iff its crossbar is free and its min key is below BIG;
        # inputs whose every ready head is encoded-but-infeasible reduce to
        # BIG and are skipped, exactly like the scalar scan that would
        # propose nothing (and record only verdicts, which the kernel never
        # engages).
        now_ready = self._b_ready
        np.less_equal(ready_m, now, out=now_ready)
        if not now_ready.any():
            return
        if self._tables_dirty:
            self._tables_dirty = False
            self._rid_gather = np.asarray(self._rid_gather_list, dtype=np.int64)
            self._rid_offsets = np.asarray(self._rid_offsets_list, dtype=np.int64)
            self._pair_row = np.asarray(self._pair_row_list, dtype=np.int64)
            self._pair_rid = np.asarray(self._pair_rid_list, dtype=np.int64)
        SIZE = self.SIZE
        ok_out = (self.xbusy <= now) & (self.occ_x + SIZE <= self.cap_x)
        free_ok = self.credit_free_m >= SIZE
        rid_ok = np.bitwise_or.reduceat(
            free_ok[self._rid_gather], self._rid_offsets
        )
        rid_ok[0] = True  # rid 0: ejection / always-feasible
        pair_ok = ok_out[self._pair_row]
        pair_ok &= rid_ok[self._pair_rid]
        feas = self._b_feas
        np.take(pair_ok, self.cand0_pid, out=feas)
        feas2 = self._b_feas2
        np.take(pair_ok, self.cand1_pid, out=feas2)
        feas |= feas2
        feas &= now_ready
        rank = self._b_rank
        gathered = self._b_gather
        np.take(self.in_rr_m, self.slot_input, out=gathered)
        np.subtract(self.slot_vc, gathered, out=rank)
        np.remainder(rank, self.slot_nvcs, out=rank)
        np.left_shift(rank, 32, out=rank)
        rank += self._slot_key
        key = np.where(feas, rank, BIG)
        now_ready &= self.unencoded
        key = np.where(now_ready, 0, key)
        minkey = np.minimum.reduceat(key, self.seg_starts)
        active = self.in_busy_m <= now
        active &= minkey < BIG
        idx = np.flatnonzero(active)
        if not idx.size:
            return

        # Phase 3: scalar completion, per router, ascending.
        keys = minkey[idx].tolist()
        in_router = self.in_router
        rmeta = self._rmeta
        current = -1
        jobs: list = []
        for pos, flat in enumerate(idx.tolist()):
            r = in_router[flat]
            if r != current:
                if jobs:
                    self._alloc_router(rmeta[current], now, jobs)
                current = r
                jobs = []
            meta = rmeta[r]
            k = keys[pos]
            jobs.append(
                (flat - meta.input_base, k == 0, k & 0xFFFFFFFF)
            )
        if jobs:
            self._alloc_router(rmeta[current], now, jobs)

    # ------------------------------------------------------------------
    # Scalar completion (exact clones of the scalar allocator pieces)
    # ------------------------------------------------------------------
    def _alloc_router(self, meta: _RouterMeta, now: int, jobs: list) -> None:
        """One cycle of allocation for one router, vector-assisted.

        Iteration 0's input scan is replaced by the vector verdicts
        (``jobs``); everything downstream — request assembly, output stage,
        grant execution, iterations 1..speedup-1 — is the scalar allocator
        check-for-check (minus blocked-verdict/sleep recording, which the
        kernel never engages).
        """
        router = meta.router
        in_state = meta.in_state
        in_busy = meta.in_busy
        allocator = meta.allocator
        num_inputs = allocator.num_inputs
        requests: list = []
        proposed: list = []
        for local, walk, wslot in jobs:
            if walk:
                request = self._scan_input(meta, local, now)
            else:
                vc = self.slot_vc_list[wslot]
                queues, head_plans, rr_orders, num_vcs = \
                    meta.port_data[local][:4]
                packet = queues[vc][0][0]
                request = self._eval_slot(
                    meta, local, vc, packet, head_plans[vc], now
                )
                assert request is not None, "vector winner must assemble"
                next_vc = vc + 1
                meta.in_rr[local] = 0 if next_vc >= num_vcs else next_vc
                self.in_rr_m[meta.input_base + local] = meta.in_rr[local]
            if request is not None:
                requests.append(request)
                proposed.append(local)

        scan: list = []
        for iteration in range(self.speedup):
            if iteration:
                requests = []
                proposed = []
                for local in scan:
                    base = 3 * local
                    if in_state[base] == 0:
                        continue
                    if in_busy[local] > now:
                        continue
                    if in_state[base + 1] > now:
                        continue
                    request = self._scan_input(meta, local, now)
                    if request is not None:
                        requests.append(request)
                        proposed.append(local)
            if not requests:
                break
            # Output stage (clone of the scalar inlined separable allocator).
            if len(requests) == 1:
                allocator._priority = (allocator._priority + 1) % num_inputs
                request = requests[0]
                self._execute_grant(meta, request, now)
                if request[3] >= 0:
                    break  # network grant: input crossbar now busy
            else:
                by_resource: dict = {}
                for request in requests:
                    key = request[3]
                    bucket = by_resource.get(key)
                    if bucket is None:
                        by_resource[key] = [request]
                    else:
                        bucket.append(request)
                priority = allocator._priority
                any_eject = False
                for bucket in by_resource.values():
                    winner = bucket[0]
                    if len(bucket) > 1:
                        best_rank = (winner[0] - priority) % num_inputs
                        for contender in bucket:
                            rank = (contender[0] - priority) % num_inputs
                            if rank < best_rank:
                                best_rank = rank
                                winner = contender
                    if winner[3] < 0:
                        any_eject = True
                    self._execute_grant(meta, winner, now)
                allocator._priority = (priority + 1) % num_inputs
                if not any_eject and len(by_resource) == len(requests):
                    break  # no losers: nothing can re-propose this cycle
            if not router.resident_packets and not router._injection_resident:
                break
            scan = proposed

    def _scan_input(self, meta: _RouterMeta, local: int, now: int):
        """Exact clone of the scalar allocator's per-input scan.

        Computes (and caches) forwarding plans for pipeline-ready heads —
        the only place besides selection RNG where allocation touches the
        shared RNG stream — and returns the first requestable head's
        request tuple, updating the round-robin pointer like the scalar
        path.  Verdict recording is omitted (never engaged under the
        kernel); newly planned heads are (re-)encoded into the candidate
        mirror before returning.
        """
        (queues, head_plans, rr_orders, num_vcs, input_type,
         is_injection) = meta.port_data[local]
        router = meta.router
        routing_plan = meta.routing_plan
        in_rr = meta.in_rr
        request = None
        planned = False
        for vc in rr_orders[in_rr[local]]:
            queue = queues[vc]
            if not queue:
                continue
            packet, ready = queue[0]
            if ready > now:
                continue
            plan = head_plans[vc]
            if plan is None:
                if is_injection:
                    plan = routing_plan(router, packet, None, -1)
                else:
                    plan = routing_plan(router, packet, input_type, vc)
                head_plans[vc] = plan
                planned = True
            request = self._eval_slot(meta, local, vc, packet, plan, now)
            if request is not None:
                next_vc = vc + 1
                in_rr[local] = 0 if next_vc >= num_vcs else next_vc
                self.in_rr_m[meta.input_base + local] = in_rr[local]
                break
        if planned:
            self._encode_input(meta, local)
        return request

    def _eval_slot(self, meta: _RouterMeta, local: int, vc: int, packet,
                   plan, now: int):
        """Evaluate one head packet against its plan (scalar semantics)."""
        if type(plan) is EjectionRequest:
            slot = plan.slot
            if slot < 0:
                slot = 2 * (plan.node - meta.first_node) + plan.msg_class
                plan.slot = slot
            if meta.eject_busy[slot] > now:
                return None
            return (local, vc, packet, -1 - slot, -1, plan)
        out_state = meta.out_state
        credit_free = meta.credit_free
        sel_mode = meta.sel_mode
        speedup = self.speedup
        size = packet.size_phits
        for candidate in plan:
            (out_port, lo, hi, ob, cb, cap, pending,
             fail_mask) = candidate.hot
            out_busy = out_state[ob]
            if out_busy > now:
                continue
            if out_state[ob + 1] == now and out_state[ob + 2] >= speedup:
                continue
            occupancy = out_state[ob + 3]
            if pending and pending[0][0] <= now:
                # Dead branch after eager maturing, kept for safety; keep
                # the mirrors in sync if it ever fires.
                while pending and pending[0][0] <= now:
                    occupancy -= pending.pop(0)[1]
                out_state[ob + 3] = occupancy
                row = meta.out_row_base + ob // 4
                self.occ_x[row] = occupancy
                self.release_head[row] = pending[0][0] if pending else BIG
            if occupancy + size > cap:
                continue
            out_vc = -1
            if sel_mode == _SEL_JSQ:
                best_free = -1
                for ovc in range(lo, hi + 1):
                    free = credit_free[cb + ovc]
                    if free >= size and free > best_free:
                        out_vc, best_free = ovc, free
            elif sel_mode == _SEL_LOWEST:
                for ovc in range(lo, hi + 1):
                    if credit_free[cb + ovc] >= size:
                        out_vc = ovc
                        break
            elif sel_mode == _SEL_HIGHEST:
                for ovc in range(hi, lo - 1, -1):
                    if credit_free[cb + ovc] >= size:
                        out_vc = ovc
                        break
            else:
                candidates: List[int] = []
                free_list: List[int] = []
                for ovc in range(lo, hi + 1):
                    free = credit_free[cb + ovc]
                    if free >= size:
                        candidates.append(ovc)
                        free_list.append(free)
                if candidates:
                    out_vc = meta.selection.choose(
                        candidates, free_list, meta.rng
                    )
            if out_vc < 0:
                continue
            return (local, vc, packet, out_port, out_vc, candidate)
        return None

    def _encode_input(self, meta: _RouterMeta, local: int) -> None:
        """Encode cached head plans of one input into the candidate mirror."""
        queues, head_plans = meta.port_data[local][:2]
        sbase = meta.slot_base[local]
        unencoded = self.unencoded
        cand0_pid = self.cand0_pid
        cand1_pid = self.cand1_pid
        enc_pid = self._enc_pid
        out_row_base = meta.out_row_base
        credit_base = meta.credit_base
        for vc, plan in enumerate(head_plans):
            if plan is None:
                continue
            s = sbase + vc
            if not unencoded[s]:
                continue
            if type(plan) is EjectionRequest:
                slot = plan.slot
                if slot < 0:
                    slot = 2 * (plan.node - meta.first_node) + plan.msg_class
                    plan.slot = slot
                cand0_pid[s] = self._pid_for(meta.eject_row_base + slot, 0)
                cand1_pid[s] = 0
                unencoded[s] = False
                continue
            n = len(plan)
            if n < 1 or n > 2:
                continue  # opaque plan: stays on the walk path (still exact)
            c0 = plan[0].hot
            cand0_pid[s] = enc_pid(
                out_row_base + c0[3] // 4,
                credit_base + c0[4] + c0[1], c0[2] - c0[1] + 1,
            )
            if n == 2:
                c1 = plan[1].hot
                cand1_pid[s] = enc_pid(
                    out_row_base + c1[3] // 4,
                    credit_base + c1[4] + c1[1], c1[2] - c1[1] + 1,
                )
            else:
                cand1_pid[s] = 0
            unencoded[s] = False

    def _execute_grant(self, meta: _RouterMeta, grant: tuple, now: int) -> None:
        """Clone of the scalar grant executor with mirror writes added."""
        local, input_vc, packet, key, out_vc, candidate = grant
        port = meta.alloc_inputs[local]
        if key < 0:
            self._do_eject(meta, port, local, input_vc, packet, candidate, now)
            return
        router = meta.router
        ob = candidate.hot[3]
        op = meta.out_by_port[key]
        size = packet.size_phits
        xbar_time = -(-size // self.speedup)
        if xbar_time < 1:
            xbar_time = 1
        # -- inlined InputPort.pop (identical to the scalar executor).
        queue = port.queues[input_vc]
        queue.pop(0)
        port.head_plans[input_vc] = None
        port._buf_release(input_vc, size)
        hot = port._hot
        hb = port._hb
        resident = hot[hb] - 1
        hot[hb] = resident
        hot[hb + 2] = -1
        if resident:
            min_ready = -1
            for q in port.queues:
                if q:
                    ready = q[0][1]
                    if min_ready < 0 or ready < min_ready:
                        min_ready = ready
            hot[hb + 1] = min_ready
        channel = port.credit_channel
        if channel is not None:
            self._schedule_call(
                now + channel.latency, channel._deliver,
                (input_vc, size, packet.credit_tag_minimal),
            )
        hook = port.on_occupancy
        if hook is not None:
            hook(input_vc, -size, port.buffer.occupancy(input_vc), now)
        if port.is_injection:
            router._injection_resident -= 1
        else:
            router.resident_packets -= 1
            meta.ledger.count -= 1
        if candidate.simple_hop:
            packet.hops += 1
            packet.phase_position += 1
            if candidate.is_global_hop:
                packet.phase_global_taken += 1
        else:
            meta.on_hop_taken(packet, candidate)
        minimal_tag = packet.route_kind == _MINIMAL
        op._debit(out_vc, size, minimal_tag)
        packet.credit_tag_minimal = minimal_tag
        meta.in_busy[local] = now + xbar_time
        out_state = meta.out_state
        out_state[ob] = now + xbar_time
        if out_state[ob + 1] != now:
            out_state[ob + 1] = now
            out_state[ob + 2] = 1
        else:
            out_state[ob + 2] += 1
        out_state[ob + 3] += size
        op.packets_forwarded += 1
        link = op.link
        if link is None:
            raise RuntimeError(f"output port {op.port_id} of router "
                               f"{router.router_id} has no link attached")
        start = now + xbar_time
        if link.busy_until > start:
            start = link.busy_until
        tail_out = link.transmit(packet, out_vc, start)
        op.schedule_release(tail_out, size)
        if not minimal_tag and packet.hops == 1:
            router.misrouted_packets += 1
            if router.on_misroute is not None:
                router.on_misroute(packet, now)
        # -- mirror writes.
        flat = meta.input_base + local
        self.in_busy_m[flat] = now + xbar_time
        row = meta.out_row_base + ob // 4
        self.xbusy[row] = now + xbar_time
        self.occ_x[row] += size
        if len(op._pending_releases) == 1:
            self.release_head[row] = tail_out
        cb = candidate.hot[4]
        self.credit_free_m[meta.credit_base + cb + out_vc] = \
            meta.credit_free[cb + out_vc]
        s = meta.slot_base[local] + input_vc
        self.ready[s] = queue[0][1] if queue else BIG
        self.unencoded[s] = True

    def _do_eject(self, meta: _RouterMeta, port, local: int, input_vc: int,
                  packet, request: EjectionRequest, now: int) -> None:
        """Clone of the scalar ejection path with mirror writes added."""
        router = meta.router
        ejection = meta.eject_flat[request.slot]
        port.pop(input_vc, now, packet.credit_tag_minimal)
        if port.is_injection:
            router._injection_resident -= 1
        else:
            router.resident_packets -= 1
            meta.ledger.count -= 1
        done = ejection.consume(packet, now)
        packet.delivered_at = done
        router.packets_delivered += 1
        self._schedule_call(done, router.on_delivery, (packet, done))
        # -- mirror writes.
        self.xbusy[meta.eject_row_base + request.slot] = done
        queue = port.queues[input_vc]
        s = meta.slot_base[local] + input_vc
        self.ready[s] = queue[0][1] if queue else BIG
        self.unencoded[s] = True
