"""Opt-in vectorized simulation kernel (ROADMAP item 3).

``repro.kernel`` hosts the numpy-backed batch-of-routers stepping backend:
instead of per-router closure calls driven by the engine's active set, one
:class:`~repro.kernel.vectorized.VectorizedKernel` advances every managed
router of a cycle with array operations over incrementally maintained
mirrors of the PR-4 hot-state slabs, falling back to the exact scalar code
path wherever array semantics cannot reproduce it bit-for-bit (head walks
that compute forwarding plans, grant execution, ejection, injection).

Backend selection
-----------------
``Simulation(config, backend=...)`` accepts:

* ``"python"`` (default) — the pure-Python hot path, source of truth;
* ``"vectorized"`` — require the numpy kernel; raises ``ImportError`` when
  numpy is missing (install the ``[fast]`` extra), and degrades to the
  python path with a warning when the *configuration* is outside the
  kernel's support envelope (semantics never fork: the scalar path is the
  same code either way);
* ``"auto"`` — use the vectorized kernel when numpy is available and the
  configuration is supported, otherwise silently run the python path (one
  process-level warning when numpy is absent).

numpy is an optional dependency on purpose: the default install and the
tier-1 test suite never import it (``pip install .[fast]`` adds it).
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

VALID_BACKENDS = ("python", "vectorized", "auto")

#: set once the "auto backend without numpy" warning has been issued, so a
#: sweep of hundreds of jobs warns exactly once per process.
_warned_auto_no_numpy = False


def numpy_or_none():
    """The ``numpy`` module when importable, else None (never raises)."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def require_numpy():
    """Import numpy or raise an ImportError naming the ``[fast]`` extra."""
    try:
        import numpy
    except ImportError as exc:
        raise ImportError(
            "backend='vectorized' requires numpy, which is an optional "
            "dependency — install it with: pip install 'repro-ipps[fast]' "
            "(or pip install numpy)"
        ) from exc
    return numpy


def unsupported_reason(sim) -> Optional[str]:
    """Why ``sim``'s configuration is outside the kernel's support envelope.

    Returns None when the vectorized kernel reproduces this configuration
    bit-for-bit.  Every condition here marks state the array pass cannot
    model without forking semantics; unsupported configurations simply run
    the scalar path (same results by construction).
    """
    from ..core.vc_selection import (
        HighestVc, JoinShortestQueue, LowestVc, RandomVc,
    )

    config = sim.config
    if getattr(sim, "_use_reference_allocator", False):
        return "reference allocator requested"
    if getattr(config, "faults", None):
        return ("fault injection (mid-run re-table-ing and link wrappers "
                "mutate state the array pass mirrors)")
    if config.routing.algorithm not in ("min", "val"):
        return (f"routing algorithm {config.routing.algorithm!r} "
                "(adaptive sensing reads time-varying state)")
    if config.router.buffer_organization != "static":
        return (f"buffer organization {config.router.buffer_organization!r} "
                "(only statically partitioned buffers are mirrored)")
    if config.traffic.reactive:
        return "reactive traffic (delivery callbacks spawn new requests)"
    choose = type(sim.selection).choose
    if choose not in (JoinShortestQueue.choose, HighestVc.choose,
                      LowestVc.choose, RandomVc.choose):
        return (f"subclassed VC selection {type(sim.selection).__name__} "
                "(generic choose() can veto credit-feasible candidates)")
    return None


def resolve_backend(sim, backend: str) -> Tuple[str, Optional[str]]:
    """Resolve ``backend`` for ``sim`` and install the kernel when selected.

    Returns ``(active_backend, fallback_reason)``.  ``active_backend`` is
    ``"vectorized"`` only when a kernel was actually installed.
    """
    global _warned_auto_no_numpy
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"backend must be one of {VALID_BACKENDS}, got {backend!r}"
        )
    if backend == "python":
        return "python", None

    if backend == "vectorized":
        require_numpy()
    elif numpy_or_none() is None:  # auto without numpy
        if not _warned_auto_no_numpy:
            _warned_auto_no_numpy = True
            warnings.warn(
                "backend='auto': numpy is not installed, using the python "
                "backend (install the [fast] extra for the vectorized "
                "kernel); this warning is issued once per process",
                RuntimeWarning,
                stacklevel=3,
            )
        return "python", "numpy not installed"

    reason = unsupported_reason(sim)
    if reason is not None:
        if backend == "vectorized":
            warnings.warn(
                f"backend='vectorized': configuration unsupported by the "
                f"vectorized kernel ({reason}); running the python backend "
                f"(results are identical by construction)",
                RuntimeWarning,
                stacklevel=3,
            )
        return "python", reason

    from .vectorized import VectorizedKernel

    kernel = VectorizedKernel(sim)
    sim.engine.install_batch(kernel)
    sim.kernel = kernel
    return "vectorized", None
