"""Phased execution sessions: warmup / measure / drain with pluggable probes.

:class:`Session` is the public execution API of the simulator.  Where the
legacy ``Simulation.run()`` was a one-shot (warm-up plus a single fixed
measurement window, returning a flat summary), a session exposes the run's
lifecycle as explicit, resumable phases::

    session = Session(config, probes=[TimeSeriesProbe(100)])
    session.warmup()                  # config.warmup_cycles, no statistics
    first = session.measure()         # one steady-state window -> SimulationResult
    second = session.measure(2000, label="post-burst")   # another window
    session.drain()                   # stop injection, empty the network
    record = session.record()         # RunRecord: summary+channels+provenance

Phases may be interleaved with raw ``run_until(cycle)`` stepping, and any
number of measurement windows can be opened per run — transient scenarios
(burst absorption, saturation onset, recovery) that the one-shot API could
not express.

Probes attach before the first phase; when none are attached the session
wires **nothing** into the simulation, so the no-probe path is bit-identical
to (and as fast as) the un-instrumented engine — see :mod:`repro.probes` for
the zero-cost-when-unsubscribed invariant.

``Simulation.run()`` and ``run_simulation()`` remain as thin compatibility
shims over ``warmup(); measure()``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from .config import SimulationConfig
from .metrics import SimulationResult
from .probes import Probe, ProbeHub
from .record import RECORD_SCHEMA_VERSION, RunRecord
from .simulation import Simulation

#: default bound on how long ``drain()`` keeps the clock running.
DEFAULT_DRAIN_LIMIT_CYCLES = 1_000_000


class Session:
    """One simulation run, driven phase by phase.

    Parameters
    ----------
    config:
        Configuration to build a fresh :class:`Simulation` from.  Mutually
        exclusive with ``simulation``.
    probes:
        Probes to attach before the first phase (more via :meth:`attach`).
    simulation:
        Adopt an already-constructed simulation instead of building one
        (used by the ``Simulation.run()`` compatibility shim).
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        probes: Sequence[Probe] = (),
        simulation: Optional[Simulation] = None,
    ) -> None:
        if (config is None) == (simulation is None):
            raise ValueError("pass exactly one of config or simulation")
        self.sim = simulation if simulation is not None else Simulation(config)
        self.config = self.sim.config
        self.engine = self.sim.engine
        self.phase = "idle"
        #: per-window (label, summary) pairs in measurement order.
        self.windows: List[Tuple[str, SimulationResult]] = []
        self._probes: List[Probe] = []
        self._hub: Optional[ProbeHub] = None
        self._wired = False
        self._finished = False
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0
        for probe in probes:
            self.attach(probe)

    # -- introspection --------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.engine.now

    @property
    def probes(self) -> Tuple[Probe, ...]:
        return tuple(self._probes)

    # -- probe management -----------------------------------------------------
    def attach(self, probe: Probe) -> "Session":
        """Attach a probe (only before the first phase starts)."""
        if self._wired:
            raise RuntimeError(
                "probes must be attached before the first session phase"
            )
        self._probes.append(probe)
        return self

    def _wire(self) -> None:
        if self._wired:
            return
        self._wired = True
        self._wall_start = time.perf_counter()
        if not self._probes:
            return  # zero-cost invariant: nothing is installed anywhere
        self._hub = ProbeHub(self._probes)
        self._hub.wire(self.sim)
        for probe in self._probes:
            probe.on_attach(self)
        # Channel-name collisions are knowable now — fail before any cycle
        # runs rather than in record() after a long run.
        seen: set = set()
        for probe in self._probes:
            for name in probe.channels():
                if name in seen:
                    raise ValueError(
                        f"duplicate telemetry channel {name!r}: two attached "
                        "probes export the same channel name"
                    )
                seen.add(name)
        for probe in self._probes:
            if probe.sample_interval > 0:
                self._arm_sampler(probe)

    def _arm_sampler(self, probe: Probe) -> None:
        """Self-rescheduling engine event driving ``probe.on_sample``.

        Sampling events carry no simulation state and never touch the shared
        RNG, so they cannot perturb results; they do pin the engine's idle
        fast-forward to the sampling grid, which is the price of observing a
        quiet network.
        """
        engine = self.engine

        def fire(cycle: int) -> None:
            probe.on_sample(cycle)
            if not self._finished:
                engine.schedule(cycle + probe.sample_interval, fire)

        engine.schedule(engine.now + probe.sample_interval, fire)

    def _enter_phase(self, phase: str) -> None:
        if self._finished:
            raise RuntimeError("session already finished (record() was called)")
        self._wire()
        self.phase = phase
        if self._hub is not None:
            self._hub.dispatch_phase(phase, self.engine.now)

    # -- phases ---------------------------------------------------------------
    def warmup(self, cycles: Optional[int] = None) -> "Session":
        """Run the warm-up phase (default ``config.warmup_cycles``)."""
        self._enter_phase("warmup")
        cycles = self.config.warmup_cycles if cycles is None else cycles
        self.engine.run_until(self.engine.now + cycles)
        return self

    def measure(
        self, cycles: Optional[int] = None, label: Optional[str] = None
    ) -> SimulationResult:
        """Run one steady-state measurement window and return its summary.

        Each call opens a fresh window ``[now, now + cycles)``; any number of
        windows may be measured per session.  The first window's summary is
        what :meth:`record` reports as the run's headline result.
        """
        self._enter_phase("measure")
        cycles = self.config.measure_cycles if cycles is None else cycles
        metrics = self.sim.metrics
        start = self.engine.now
        metrics.open_window(start, start + cycles)
        self.engine.run_until(start + cycles)
        deadlock = self.sim._deadlock_suspected()
        if label is None:
            label = f"measure{len(self.windows)}"
        if self._hub is not None:
            # Flush interval-sampled probes on the exact window edge before
            # the window's counters are reset.
            self._hub.dispatch_phase("window-close", self.engine.now)
        result = metrics.close_window(
            offered_load=self.config.traffic.load, deadlock_suspected=deadlock
        )
        self.windows.append((label, result))
        return result

    def run_until(self, cycle: int) -> "Session":
        """Advance raw simulation time (no measurement bookkeeping).

        Resumable low-level stepping for custom phase structures — e.g.
        advancing to the onset of a scripted traffic burst before opening a
        measurement window.
        """
        self._enter_phase("free-run")
        self.engine.run_until(cycle)
        return self

    def drain(self, max_cycles: int = DEFAULT_DRAIN_LIMIT_CYCLES) -> int:
        """Stop injection and run until the network is empty (or the bound).

        Returns the number of cycles the drain took.  After draining,
        ``total_resident_packets()`` is zero unless the network is genuinely
        wedged (suspected deadlock) or ``max_cycles`` elapsed first.
        """
        self._enter_phase("drain")
        self.sim.traffic.stop()
        engine = self.engine
        start = engine.now
        deadline = start + max_cycles
        while engine.now < deadline and not self._network_empty():
            next_event = engine.next_event_cycle()
            if next_event is None:
                # Routers may be mid-pipeline with no calendar entry yet.
                engine.run_until(min(engine.now + 1, deadline))
            else:
                engine.run_until(min(next_event + 1, deadline))
        if self._hub is not None:
            self._hub.dispatch_phase("drained", engine.now)
        return engine.now - start

    def _network_empty(self) -> bool:
        """No packet anywhere: buffers, injection queues, or in-flight events.

        Probe sampling events are excluded from the in-flight check — they
        re-arm themselves forever and carry no packets.
        """
        sim = self.sim
        if sim._resident_ledger.count:
            return False
        for router in sim.routers:
            if router._injection_resident or router._source_backlog:
                return False
        samplers = sum(1 for probe in self._probes if probe.sample_interval > 0)
        return self.engine.pending_events() <= samplers

    # -- results --------------------------------------------------------------
    def record(self) -> RunRecord:
        """Close the session and assemble its versioned :class:`RunRecord`."""
        if not self.windows:
            raise ValueError("record() requires at least one measure() window")
        if not self._finished:
            self._finished = True
            self.phase = "done"
            if self._hub is not None:
                self._hub.dispatch_phase("done", self.engine.now)
            if self._wall_start is not None:
                self._wall_elapsed = time.perf_counter() - self._wall_start
        channels: dict = {}
        for probe in self._probes:
            for name, payload in probe.channels().items():
                if name in channels:
                    raise ValueError(f"duplicate telemetry channel {name!r}")
                channels[name] = payload
        from .experiments.orchestrator import config_key  # local: avoid cycle

        engine = self.engine
        provenance = {
            "schema_version": RECORD_SCHEMA_VERSION,
            "config_key": config_key(self.config),
            "engine_cycles": engine.now,
            "events_processed": engine.events_processed,
            "idle_cycles_skipped": engine.idle_cycles_skipped,
            "wall_time_s": round(self._wall_elapsed, 6),
            "probes": [type(probe).__name__ for probe in self._probes],
        }
        summary = self.windows[0][1]
        windows = [
            {"label": label, "summary": result.to_dict()}
            for label, result in self.windows
        ]
        return RunRecord(
            summary=summary,
            channels=channels,
            windows=windows if len(windows) > 1 else [],
            provenance=provenance,
        )

    def run(self) -> RunRecord:
        """Convenience: ``warmup(); measure(); record()`` in one call."""
        self.warmup()
        self.measure()
        return self.record()
