"""Phased execution sessions: warmup / measure / drain with pluggable probes.

:class:`Session` is the public execution API of the simulator.  Where the
legacy ``Simulation.run()`` was a one-shot (warm-up plus a single fixed
measurement window, returning a flat summary), a session exposes the run's
lifecycle as explicit, resumable phases::

    session = Session(config, probes=[TimeSeriesProbe(100)])
    session.warmup()                  # config.warmup_cycles, no statistics
    first = session.measure()         # one steady-state window -> SimulationResult
    second = session.measure(2000, label="post-burst")   # another window
    session.drain()                   # stop injection, empty the network
    record = session.record()         # RunRecord: summary+channels+provenance

Phases may be interleaved with raw ``run_until(cycle)`` stepping, and any
number of measurement windows can be opened per run — transient scenarios
(burst absorption, saturation onset, recovery) that the one-shot API could
not express.

Probes attach before the first phase; when none are attached the session
wires **nothing** into the simulation, so the no-probe path is bit-identical
to (and as fast as) the un-instrumented engine — see :mod:`repro.probes` for
the zero-cost-when-unsubscribed invariant.

``Simulation.run()`` and ``run_simulation()`` remain as thin compatibility
shims over ``warmup(); measure()``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .config import SimulationConfig
from .metrics import SimulationResult
from .probes import Probe, ProbeHub
from .record import RECORD_SCHEMA_VERSION, RunRecord
from .simulation import Simulation

#: default bound on how long ``drain()`` keeps the clock running.
DEFAULT_DRAIN_LIMIT_CYCLES = 1_000_000

#: two-sided Student-t critical values by confidence level and degrees of
#: freedom (batch-means confidence intervals over few windows need the exact
#: small-sample quantiles; beyond the table the normal quantile is used).
_T_CRITICAL = {
    0.90: (6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812),
    0.95: (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228),
    0.99: (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169),
}
_NORMAL_QUANTILE = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass(frozen=True)
class ConvergenceSettings:
    """Stopping rule of :meth:`Session.measure_converged`.

    The measurement budget (``config.measure_cycles``) is split into
    ``max_windows`` equal batch windows; after each window, batch-means
    confidence intervals on accepted load and average latency are compared
    against ``rel_tol`` (relative half-width).  Measurement stops at the
    first window (>= ``min_windows``) where both are within tolerance, so a
    quickly-converging point spends a fraction of the fixed budget; a noisy
    one is capped at exactly the budget.
    """

    rel_tol: float = 0.05
    confidence: float = 0.95
    min_windows: int = 3
    max_windows: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.rel_tol < 1.0:
            raise ValueError("rel_tol must be in (0, 1)")
        if self.confidence not in _T_CRITICAL:
            raise ValueError(
                f"confidence must be one of {sorted(_T_CRITICAL)}, "
                f"got {self.confidence}"
            )
        if not 2 <= self.min_windows <= self.max_windows:
            raise ValueError("need 2 <= min_windows <= max_windows")


def _relative_half_width(values: Sequence[float], confidence: float) -> float:
    """CI half-width of the batch means, relative to their mean.

    Returns ``inf`` when no interval exists yet (fewer than two batches) and
    ``0`` for a degenerate exactly-constant sequence (including all-zero).
    """
    n = len(values)
    if n < 2:
        return math.inf
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    if variance == 0.0:
        return 0.0
    if mean == 0.0:
        return math.inf
    table = _T_CRITICAL[confidence]
    t = table[n - 2] if n - 2 < len(table) else _NORMAL_QUANTILE[confidence]
    return t * math.sqrt(variance / n) / abs(mean)


class Session:
    """One simulation run, driven phase by phase.

    Parameters
    ----------
    config:
        Configuration to build a fresh :class:`Simulation` from.  Mutually
        exclusive with ``simulation``.
    probes:
        Probes to attach before the first phase (more via :meth:`attach`).
    simulation:
        Adopt an already-constructed simulation instead of building one
        (used by the ``Simulation.run()`` compatibility shim).
    backend:
        Stepping backend passed through to :class:`Simulation` (``"python"``,
        ``"vectorized"`` or ``"auto"``; see :mod:`repro.kernel`).  Only valid
        together with ``config``.  A probe subscribing to ``on_alloc_stall``
        degrades a vectorized session back to the python backend (the kernel
        never engages the stall/verdict machinery the probe observes);
        results are identical either way.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        probes: Sequence[Probe] = (),
        simulation: Optional[Simulation] = None,
        backend: Optional[str] = None,
    ) -> None:
        if (config is None) == (simulation is None):
            raise ValueError("pass exactly one of config or simulation")
        if simulation is not None and backend is not None:
            raise ValueError(
                "backend is only valid with config (the adopted simulation "
                "already chose its backend)"
            )
        self._adopted = simulation is not None
        self.sim = (
            simulation if simulation is not None
            else Simulation(config, backend=backend or "python")
        )
        self.config = self.sim.config
        self.engine = self.sim.engine
        self.phase = "idle"
        #: per-window (label, summary) pairs in measurement order.
        self.windows: List[Tuple[str, SimulationResult]] = []
        self._probes: List[Probe] = []
        self._hub: Optional[ProbeHub] = None
        self._wired = False
        self._finished = False
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0
        #: extra provenance entries merged into :meth:`record`'s output
        #: (e.g. the convergence controller's stopping diagnostics).
        self.provenance_extra: Dict[str, Any] = {}
        for probe in probes:
            self.attach(probe)

    # -- introspection --------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.engine.now

    @property
    def probes(self) -> Tuple[Probe, ...]:
        return tuple(self._probes)

    # -- probe management -----------------------------------------------------
    def attach(self, probe: Probe) -> "Session":
        """Attach a probe (only before the first phase starts)."""
        if self._wired:
            raise RuntimeError(
                "probes must be attached before the first session phase"
            )
        self._probes.append(probe)
        self._check_probe_backend(probe)
        return self

    def _check_probe_backend(self, probe: Probe) -> None:
        """Degrade a vectorized session to python for stall-observing probes.

        The vectorized kernel never engages the scalar allocator's
        blocked-verdict machinery, so ``on_alloc_stall`` would stay silent
        under it; the python backend produces identical results and fires
        the hook, so sessions that own their simulation simply rebuild it.
        """
        if getattr(self.sim, "backend_active", "python") != "vectorized":
            return
        if getattr(type(probe), "on_alloc_stall", None) is Probe.on_alloc_stall:
            return
        message = (
            f"probe {type(probe).__name__} subscribes to on_alloc_stall, "
            "which the vectorized kernel never fires; running the python "
            "backend instead (results are identical)"
        )
        if self._adopted:
            raise RuntimeError(
                message + " — rebuild the adopted Simulation with "
                "backend='python'"
            )
        import warnings

        warnings.warn(message, RuntimeWarning, stacklevel=3)
        self.sim = Simulation(self.config, backend="python")
        self.engine = self.sim.engine

    def _wire(self) -> None:
        if self._wired:
            return
        self._wired = True
        self._wall_start = time.perf_counter()
        if not self._probes:
            return  # zero-cost invariant: nothing is installed anywhere
        self._hub = ProbeHub(self._probes)
        self._hub.wire(self.sim)
        for probe in self._probes:
            probe.on_attach(self)
        # Channel-name collisions are knowable now — fail before any cycle
        # runs rather than in record() after a long run.
        seen: set = set()
        for probe in self._probes:
            for name in probe.channels():
                if name in seen:
                    raise ValueError(
                        f"duplicate telemetry channel {name!r}: two attached "
                        "probes export the same channel name"
                    )
                seen.add(name)
        for probe in self._probes:
            if probe.sample_interval > 0:
                self._arm_sampler(probe)

    def _arm_sampler(self, probe: Probe) -> None:
        """Self-rescheduling engine event driving ``probe.on_sample``.

        Sampling events carry no simulation state and never touch the shared
        RNG, so they cannot perturb results; they do pin the engine's idle
        fast-forward to the sampling grid, which is the price of observing a
        quiet network.
        """
        engine = self.engine

        def fire(cycle: int) -> None:
            probe.on_sample(cycle)
            if not self._finished:
                engine.schedule(cycle + probe.sample_interval, fire)

        engine.schedule(engine.now + probe.sample_interval, fire)

    def _enter_phase(self, phase: str) -> None:
        if self._finished:
            raise RuntimeError("session already finished (record() was called)")
        self._wire()
        self.phase = phase
        if self._hub is not None:
            self._hub.dispatch_phase(phase, self.engine.now)

    # -- phases ---------------------------------------------------------------
    def warmup(self, cycles: Optional[int] = None) -> "Session":
        """Run the warm-up phase (default ``config.warmup_cycles``)."""
        self._enter_phase("warmup")
        cycles = self.config.warmup_cycles if cycles is None else cycles
        self.engine.run_until(self.engine.now + cycles)
        return self

    def measure(
        self, cycles: Optional[int] = None, label: Optional[str] = None
    ) -> SimulationResult:
        """Run one steady-state measurement window and return its summary.

        Each call opens a fresh window ``[now, now + cycles)``; any number of
        windows may be measured per session.  The first window's summary is
        what :meth:`record` reports as the run's headline result.
        """
        self._enter_phase("measure")
        cycles = self.config.measure_cycles if cycles is None else cycles
        metrics = self.sim.metrics
        start = self.engine.now
        metrics.open_window(start, start + cycles)
        self.engine.run_until(start + cycles)
        deadlock = self.sim._deadlock_suspected()
        if label is None:
            label = f"measure{len(self.windows)}"
        if self._hub is not None:
            # Flush interval-sampled probes on the exact window edge before
            # the window's counters are reset.
            self._hub.dispatch_phase("window-close", self.engine.now)
        result = metrics.close_window(
            offered_load=self.config.traffic.load, deadlock_suspected=deadlock
        )
        controller = getattr(self.sim, "fault_controller", None)
        if controller is not None:
            # Cumulative fault counters per window: differencing consecutive
            # windows localizes a transient to its window.
            result.extra.update(controller.window_extra())
        if deadlock:
            self._record_deadlock(label, result)
        self.windows.append((label, result))
        return result

    def _record_deadlock(self, label: str, result: SimulationResult) -> None:
        """Harden a tripped deadlock window into a typed, provenance-flagged
        outcome (instead of only the boolean result flag)."""
        sim = self.sim
        outcome = {
            "window": label,
            "cycle": self.engine.now,
            "last_delivery_cycle": sim.metrics.last_delivery_cycle,
            "deadlock_window_cycles": self.config.deadlock_window_cycles,
            "resident_packets": sim.total_resident_packets(),
        }
        result.extra["outcome"] = "deadlock"
        result.extra["deadlock"] = outcome
        self.provenance_extra.setdefault("deadlock", []).append(outcome)

    def measure_converged(
        self,
        settings: Optional[ConvergenceSettings] = None,
        label: str = "converged",
    ) -> SimulationResult:
        """Measure in batch windows until confidence intervals converge.

        Opt-in alternative to the fixed-budget :meth:`measure`: the
        measurement budget (``config.measure_cycles``) is split into
        ``settings.max_windows`` equal windows, measured one at a time; after
        each window the batch-means confidence intervals on accepted load and
        average latency are checked against ``settings.rel_tol``.  The first
        window (>= ``min_windows``) where both are inside tolerance stops the
        run, so total measured cycles never exceed the fixed budget and are
        usually well below it.  A suspected deadlock stops immediately
        (unconverged).

        Returns the combined summary over the measured windows (throughput
        from total phits over total cycles, latency weighted by delivered
        packets) and inserts it ahead of its per-window summaries — when
        this is the session's first measurement (as in the orchestrator's
        converge mode), :meth:`record` therefore reports it as the headline
        result, with the stopping diagnostics in the record's provenance;
        after earlier :meth:`measure` calls, the headline stays the first
        window as always and the combined summary rides along.  Results are *not* comparable
        bit-for-bit with fixed-budget runs — the orchestrator keys converged
        runs separately in the result store.
        """
        if settings is None:
            settings = ConvergenceSettings()
        budget = self.config.measure_cycles
        window = max(1, budget // settings.max_windows)
        # Tiny budgets clamp the window to one cycle; cap the window *count*
        # too so total measured cycles never exceed the budget.
        max_windows = min(settings.max_windows, max(1, budget // window))
        headline_index = len(self.windows)
        batch: List[SimulationResult] = []
        converged = False
        rel_accepted = rel_latency = math.inf
        for index in range(max_windows):
            result = self.measure(window, label=f"{label}/batch{index}")
            batch.append(result)
            if result.deadlock_suspected:
                break
            if len(batch) >= settings.min_windows:
                rel_accepted = _relative_half_width(
                    [r.accepted_load for r in batch], settings.confidence
                )
                rel_latency = _relative_half_width(
                    [r.average_latency for r in batch], settings.confidence
                )
                if rel_accepted <= settings.rel_tol and rel_latency <= settings.rel_tol:
                    converged = True
                    break
        combined = self._combine_windows(batch)
        combined.extra["convergence_windows"] = len(batch)
        combined.extra["converged"] = converged
        self.windows.insert(headline_index, (label, combined))
        self.provenance_extra["convergence"] = {
            "converged": converged,
            "windows": len(batch),
            "window_cycles": window,
            "budget_cycles": budget,
            "measured_cycles": len(batch) * window,
            "rel_tol": settings.rel_tol,
            "confidence": settings.confidence,
            "rel_half_width_accepted": None if math.isinf(rel_accepted)
            else round(rel_accepted, 6),
            "rel_half_width_latency": None if math.isinf(rel_latency)
            else round(rel_latency, 6),
        }
        return combined

    @staticmethod
    def _combine_windows(batch: List[SimulationResult]) -> SimulationResult:
        """Aggregate equal batch windows into one summary.

        Throughput is exact (total phits over total cycles); latency means
        and the misrouted fraction are weighted by each window's delivered
        packets; p99 is the same weighted mean (an approximation — per-window
        histograms are already closed when batches combine).
        """
        base = batch[0]
        total_cycles = sum(r.measured_cycles for r in batch)
        phits = sum(r.phits_delivered for r in batch)
        delivered = sum(r.packets_delivered for r in batch)
        weights = [r.packets_delivered for r in batch]
        weight_sum = sum(weights) or 1

        def weighted(attr: str) -> float:
            return sum(
                getattr(r, attr) * w for r, w in zip(batch, weights)
            ) / weight_sum

        return SimulationResult(
            offered_load=base.offered_load,
            accepted_load=phits / (base.num_nodes * total_cycles),
            average_latency=weighted("average_latency"),
            latency_p99=weighted("latency_p99"),
            packets_delivered=delivered,
            packets_generated=batch[-1].packets_generated,
            phits_delivered=phits,
            measured_cycles=total_cycles,
            num_nodes=base.num_nodes,
            misrouted_fraction=weighted("misrouted_fraction"),
            deadlock_suspected=any(r.deadlock_suspected for r in batch),
        )

    def run_until(self, cycle: int) -> "Session":
        """Advance raw simulation time (no measurement bookkeeping).

        Resumable low-level stepping for custom phase structures — e.g.
        advancing to the onset of a scripted traffic burst before opening a
        measurement window.
        """
        self._enter_phase("free-run")
        self.engine.run_until(cycle)
        return self

    def drain(self, max_cycles: int = DEFAULT_DRAIN_LIMIT_CYCLES) -> int:
        """Stop injection and run until the network is empty (or the bound).

        Returns the number of cycles the drain took.  After draining,
        ``total_resident_packets()`` is zero unless the network is genuinely
        wedged (suspected deadlock) or ``max_cycles`` elapsed first.
        """
        self._enter_phase("drain")
        self.sim.traffic.stop()
        engine = self.engine
        start = engine.now
        deadline = start + max_cycles
        while engine.now < deadline and not self._network_empty():
            next_event = engine.next_event_cycle()
            if next_event is None:
                # Routers may be mid-pipeline with no calendar entry yet.
                engine.run_until(min(engine.now + 1, deadline))
            else:
                engine.run_until(min(next_event + 1, deadline))
        if self._hub is not None:
            self._hub.dispatch_phase("drained", engine.now)
        return engine.now - start

    def _network_empty(self) -> bool:
        """No packet anywhere: buffers, injection queues, or in-flight events.

        Probe sampling events are excluded from the in-flight check — they
        re-arm themselves forever and carry no packets.
        """
        sim = self.sim
        if sim._resident_ledger.count:
            return False
        for router in sim.routers:
            if router._injection_resident or router._source_backlog:
                return False
        samplers = sum(1 for probe in self._probes if probe.sample_interval > 0)
        return self.engine.pending_events() <= samplers

    # -- results --------------------------------------------------------------
    def record(self) -> RunRecord:
        """Close the session and assemble its versioned :class:`RunRecord`."""
        if not self.windows:
            raise ValueError("record() requires at least one measure() window")
        if not self._finished:
            self._finished = True
            self.phase = "done"
            if self._hub is not None:
                self._hub.dispatch_phase("done", self.engine.now)
            if self._wall_start is not None:
                self._wall_elapsed = time.perf_counter() - self._wall_start
        channels: Dict[str, Any] = {}
        for probe in self._probes:
            for name, payload in probe.channels().items():
                if name in channels:
                    raise ValueError(f"duplicate telemetry channel {name!r}")
                channels[name] = payload
        from .experiments.orchestrator import config_key  # local: avoid cycle

        engine = self.engine
        sim = self.sim
        provenance = {
            "schema_version": RECORD_SCHEMA_VERSION,
            "config_key": config_key(
                self.config, backend=getattr(sim, "backend_active", "python")
            ),
            "backend": getattr(sim, "backend_active", "python"),
            "backend_requested": getattr(sim, "backend_requested", "python"),
            "engine_cycles": engine.now,
            "events_processed": engine.events_processed,
            "idle_cycles_skipped": engine.idle_cycles_skipped,
            "wall_time_s": round(self._wall_elapsed, 6),
            "probes": [type(probe).__name__ for probe in self._probes],
        }
        fallback = getattr(sim, "backend_fallback_reason", None)
        if fallback is not None:
            provenance["backend_fallback_reason"] = fallback
        controller = getattr(sim, "fault_controller", None)
        if controller is not None:
            provenance["faults"] = controller.provenance()
        route_table = getattr(sim, "route_table", None)
        table_stats = getattr(route_table, "table_stats", None)
        if table_stats is not None:
            # Route-table mode + (for lazy tables) LRU behaviour: an
            # execution strategy, not part of any cache key, but recorded so
            # system-scale runs can be audited for column churn.
            provenance["route_table"] = table_stats()
        provenance.update(self.provenance_extra)
        summary = self.windows[0][1]
        windows = [
            {"label": label, "summary": result.to_dict()}
            for label, result in self.windows
        ]
        return RunRecord(
            summary=summary,
            channels=channels,
            windows=windows if len(windows) > 1 else [],
            provenance=provenance,
        )

    def run(self) -> RunRecord:
        """Convenience: ``warmup(); measure(); record()`` in one call."""
        self.warmup()
        self.measure()
        return self.record()
