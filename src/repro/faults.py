"""Deterministic fault injection: link/router failure and recovery mid-run.

ROADMAP item 4(b): the paper's dragonfly-class networks are exactly the
setting where transient link/router faults reshape congestion and routing,
so this module adds a *seeded, replayable* fault axis to the simulator:

* :class:`FaultSchedule` — an immutable, sorted list of typed events
  (:class:`LinkDown` / :class:`LinkUp` / :class:`RouterDown` /
  :class:`RouterUp`), constructed explicitly, sampled from a
  ``random.Random(seed)`` MTBF/MTTR model (:meth:`FaultSchedule.sample`),
  or parsed from the CLI ``--faults`` spec (:func:`parse_faults`).  The
  schedule is carried on :class:`~repro.config.SimulationConfig` and hashed
  into ``config_key`` (omitted when empty, so no-fault keys are unchanged).
* :class:`FaultController` — the runtime: installed by ``Simulation`` when
  the schedule is non-empty, it replays each event through the engine
  calendar at its exact cycle (events fire in ``_fire_events`` *before*
  that cycle's traffic and router pumps, so replay is deterministic), marks
  links/routers dead, applies the in-flight policy, and triggers
  incremental re-table-ing of only the affected route columns.

Semantics (see DESIGN.md §11 for the full model):

* A ``LinkDown(router, port)`` kills *both* directions of the physical
  link.  In-flight flits on a dead link follow the schedule's ``policy``:
  ``"drop"`` (default) drops them with accounting and returns the upstream
  credit at the link's recovery cycle; ``"stall"`` holds them on the wire
  and re-delivers at recovery (falling back to drop when the link never
  recovers).
* A ``RouterDown(router)`` kills every incident link and *loses the
  router's buffered state*: resident packets (network inputs, injection
  buffers, source queues) are dropped with accounting, and traffic from/to
  its nodes is suppressed at the generator boundary (the RNG draw sequence
  is unchanged, so surviving traffic stays bit-identical).
* Packets destined to a dead router keep following the pristine (stale)
  column toward it and are dropped with accounting at the dead-link
  boundary — the sink-hole rule that keeps live columns free of
  unreachable destinations.
* Every event ends with a live-graph connectivity check; splitting the
  live routers raises :class:`NetworkPartitionedError`.

Determinism: the fault schedule is data, events fire at exact cycles
through the single engine calendar, detours are computed by a deterministic
BFS, and the generator's RNG stream is never consulted by any fault path —
a given ``(seed, schedule)`` pair replays bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple, Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .config import SimulationConfig
    from .link import CreditChannel, Link
    from .packet import Packet
    from .router.router import Router
    from .simulation import Simulation
    from .topology.base import Topology

__all__ = [
    "LinkDown", "LinkUp", "RouterDown", "RouterUp", "FaultEvent",
    "FaultSchedule", "FaultSpec", "NetworkPartitionedError",
    "FaultController", "parse_faults", "FAULT_POLICIES",
]


class NetworkPartitionedError(RuntimeError):
    """A fault event (or a column rebuild under faults) left some live
    source with no route to a live destination.

    Subclasses ``RuntimeError`` so existing does-not-converge handling
    keeps working; raised from the event application path it aborts the
    run at the exact offending cycle.
    """


#: accepted in-flight policies of a :class:`FaultSchedule`.
FAULT_POLICIES = ("drop", "stall")


@dataclass(frozen=True)
class LinkDown:
    """Both directions of the link at ``(router, port)`` fail at ``cycle``."""

    cycle: int
    router: int
    port: int
    kind: str = "link-down"


@dataclass(frozen=True)
class LinkUp:
    """The link at ``(router, port)`` is repaired at ``cycle``."""

    cycle: int
    router: int
    port: int
    kind: str = "link-up"


@dataclass(frozen=True)
class RouterDown:
    """``router`` fails at ``cycle``: incident links die, buffers are lost."""

    cycle: int
    router: int
    kind: str = "router-down"


@dataclass(frozen=True)
class RouterUp:
    """``router`` is repaired at ``cycle`` (incident links revive unless
    independently downed)."""

    cycle: int
    router: int
    kind: str = "router-up"


FaultEvent = Union[LinkDown, LinkUp, RouterDown, RouterUp]

_KIND_ORDER = {"link-down": 0, "link-up": 1, "router-down": 2, "router-up": 3}
_KINDS = tuple(_KIND_ORDER)


def _event_sort_key(event: FaultEvent) -> Tuple[int, int, int, int]:
    return (
        event.cycle,
        _KIND_ORDER[event.kind],
        event.router,
        getattr(event, "port", -1),
    )


@dataclass(frozen=True)
class FaultSchedule:
    """Immutable, deterministically-ordered fault event list + policy.

    ``policy`` selects the in-flight flit handling on dead links:
    ``"drop"`` (drop with accounting, credit returned at recovery) or
    ``"stall"`` (hold on the wire until recovery; drops when the link
    never recovers).  The schedule hashes into ``config_key`` whenever it
    is non-empty; an empty schedule is omitted from the key payload so
    every no-fault key (and golden) is unchanged.
    """

    events: Tuple[FaultEvent, ...] = ()
    policy: str = "drop"

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events, key=_event_sort_key))
        object.__setattr__(self, "events", events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Structural validation (id bounds are checked against the built
        topology by :class:`FaultController`)."""
        if self.policy not in FAULT_POLICIES:
            raise ValueError(
                f"fault policy must be one of {FAULT_POLICIES}, "
                f"got {self.policy!r}"
            )
        for event in self.events:
            if event.kind not in _KINDS:
                raise ValueError(f"unknown fault event kind {event.kind!r}")
            if event.cycle < 1:
                raise ValueError(
                    f"fault event cycle must be >= 1, got {event.cycle}"
                )
            if event.router < 0:
                raise ValueError(
                    f"fault event router must be >= 0, got {event.router}"
                )
            port = getattr(event, "port", 0)
            if port < 0:
                raise ValueError(
                    f"fault event port must be >= 0, got {port}"
                )

    # -- provenance ----------------------------------------------------------
    def digest(self) -> str:
        """Stable short hash of the schedule (RunRecord provenance)."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- construction --------------------------------------------------------
    @classmethod
    def sample(
        cls,
        topology: "Topology",
        *,
        seed: int,
        mtbf_cycles: float,
        mttr_cycles: float,
        horizon_cycles: int,
        element: str = "link",
        policy: str = "drop",
    ) -> "FaultSchedule":
        """Sample a failure/repair schedule from an MTBF/MTTR model.

        Every element (each physical link once, in canonical ``router <
        neighbor`` order, or each router) draws independent exponential
        time-to-failure (mean ``mtbf_cycles``) and time-to-repair (mean
        ``mttr_cycles``) intervals from one ``random.Random(seed)`` stream,
        iterating elements in a fixed deterministic order — the same
        ``(topology, seed)`` pair always yields the same schedule.
        """
        if element not in ("link", "router"):
            raise ValueError(
                f"element must be 'link' or 'router', got {element!r}"
            )
        if mtbf_cycles <= 0 or mttr_cycles <= 0:
            raise ValueError("mtbf_cycles and mttr_cycles must be > 0")
        rng = random.Random(seed)
        events: List[FaultEvent] = []

        def windows() -> List[Tuple[int, int]]:
            out: List[Tuple[int, int]] = []
            t = 1.0 + rng.expovariate(1.0 / mtbf_cycles)
            while t < horizon_cycles:
                down = max(1, int(t))
                up = max(down + 1, int(t + rng.expovariate(1.0 / mttr_cycles)))
                out.append((down, up))
                t = up + rng.expovariate(1.0 / mtbf_cycles)
            return out

        if element == "link":
            for router in range(topology.num_routers):
                for info in topology.ports(router):
                    if info.neighbor < router:
                        continue  # canonical direction: each link once
                    for down, up in windows():
                        events.append(LinkDown(down, router, info.port))
                        if up < horizon_cycles:
                            events.append(LinkUp(up, router, info.port))
        else:
            for router in range(topology.num_routers):
                for down, up in windows():
                    events.append(RouterDown(down, router))
                    if up < horizon_cycles:
                        events.append(RouterUp(up, router))
        return cls(events=tuple(events), policy=policy)


# ---------------------------------------------------------------------------
# CLI spec parsing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """Parsed ``--faults`` spec; :meth:`resolve` yields the schedule.

    Explicit clauses resolve without touching the topology; a ``sample:``
    clause builds the configuration's (cached) topology to enumerate its
    elements.
    """

    events: Tuple[FaultEvent, ...] = ()
    policy: str = "drop"
    sample_params: Optional[Tuple[Tuple[str, str], ...]] = None

    def resolve(self, config: "SimulationConfig") -> FaultSchedule:
        events = list(self.events)
        if self.sample_params is not None:
            params = dict(self.sample_params)
            topology = config.network.build_cached()
            sampled = FaultSchedule.sample(
                topology,
                seed=int(params.get("seed", config.seed)),
                mtbf_cycles=float(params["mtbf"]),
                mttr_cycles=float(params["mttr"]),
                horizon_cycles=int(params["until"]),
                element=params.get("element", "link"),
            )
            events.extend(sampled.events)
        return FaultSchedule(events=tuple(events), policy=self.policy)


def _parse_window(text: str, clause: str) -> Tuple[int, Optional[int]]:
    """``"D-U"`` / ``"D-"`` / ``"D"`` -> (down cycle, up cycle or None)."""
    down_text, sep, up_text = text.partition("-")
    try:
        down = int(down_text)
        up = int(up_text) if sep and up_text else None
    except ValueError as exc:
        raise ValueError(f"bad fault window {text!r} in clause {clause!r}") from exc
    if up is not None and up <= down:
        raise ValueError(
            f"fault recovery must come after failure in clause {clause!r}"
        )
    return down, up


def parse_faults(spec: str) -> FaultSpec:
    """Parse a ``--faults`` spec string into a :class:`FaultSpec`.

    Grammar (clauses separated by ``;``):

    * ``link:R:P@D-U`` — link at router R, port P down at cycle D, repaired
      at cycle U (``@D`` or ``@D-`` = never repaired);
    * ``router:R@D-U`` — router R down/up window;
    * ``sample:mtbf=M,mttr=T,until=H[,seed=S][,element=link|router]`` —
      MTBF/MTTR-sampled schedule over cycles ``[1, H)`` (seed defaults to
      the configuration's seed);
    * ``policy=drop|stall`` — in-flight flit policy (default ``drop``).

    Example: ``--faults "link:0:1@400-900;policy=drop"``.
    """
    events: List[FaultEvent] = []
    policy = "drop"
    sample_params: Optional[Tuple[Tuple[str, str], ...]] = None
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("policy="):
            policy = clause[len("policy="):]
            if policy not in FAULT_POLICIES:
                raise ValueError(
                    f"fault policy must be one of {FAULT_POLICIES}, "
                    f"got {policy!r}"
                )
            continue
        if clause.startswith("sample:"):
            pairs: List[Tuple[str, str]] = []
            for item in clause[len("sample:"):].split(","):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(f"bad sample parameter {item!r}")
                pairs.append((key.strip(), value.strip()))
            params = dict(pairs)
            for required in ("mtbf", "mttr", "until"):
                if required not in params:
                    raise ValueError(
                        f"sample clause requires {required}= (got {clause!r})"
                    )
            sample_params = tuple(sorted(params.items()))
            continue
        head, sep, window = clause.partition("@")
        if not sep:
            raise ValueError(f"bad fault clause {clause!r} (missing @cycle)")
        parts = head.split(":")
        if parts[0] == "link" and len(parts) == 3:
            router, port = int(parts[1]), int(parts[2])
            down, up = _parse_window(window, clause)
            events.append(LinkDown(down, router, port))
            if up is not None:
                events.append(LinkUp(up, router, port))
        elif parts[0] == "router" and len(parts) == 2:
            router = int(parts[1])
            down, up = _parse_window(window, clause)
            events.append(RouterDown(down, router))
            if up is not None:
                events.append(RouterUp(up, router))
        else:
            raise ValueError(f"bad fault clause {clause!r}")
    return FaultSpec(
        events=tuple(events), policy=policy, sample_params=sample_params
    )


# ---------------------------------------------------------------------------
# Runtime controller
# ---------------------------------------------------------------------------

#: dead-link reason tags: a directed link is dead while it has >= 1 reason.
_Reason = Tuple[str, int]
_LinkKey = Tuple[int, int]


class FaultController:
    """Replays a :class:`FaultSchedule` through one simulation.

    Constructed by ``Simulation.__init__`` when ``config.faults`` is
    non-empty; wraps every link's delivery closure (in-flight policy),
    schedules one calendar event per fault event, and owns the dead-element
    state plus the drop/reroute accounting that lands in per-window
    ``SimulationResult.extra`` and RunRecord provenance.
    """

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.schedule: FaultSchedule = sim.config.faults
        self.policy = self.schedule.policy
        # -- accounting (cumulative; snapshot into window extras) ----------
        self.faults_applied = 0
        self.packets_dropped = 0
        self.packets_dropped_wire = 0
        self.packets_dropped_buffer = 0
        self.packets_dropped_source = 0
        self.packets_suppressed = 0
        self.packets_rerouted = 0
        self.columns_invalidated = 0
        # -- probe hooks (ProbeHub.wire; ``is not None`` guarded fires) ----
        self.on_fault_applied: Optional[Callable[..., None]] = None
        self.on_packet_dropped: Optional[Callable[..., None]] = None
        # -- dead-element state -------------------------------------------
        #: directed link -> set of reasons it is dead (link fault and/or a
        #: dead endpoint router); the link is dead while reasons exist.
        self._dead_reasons: Dict[_LinkKey, Set[_Reason]] = {}
        #: flat membership set the link wrappers test per delivery.
        self._dead_links: Set[_LinkKey] = set()
        self._dead_routers: Set[int] = set()
        #: columns rebuilt with detours (re-invalidated on recovery).
        self._fault_columns: Set[int] = set()
        self._validate_against(sim.topology)
        self._install()

    # -- construction --------------------------------------------------------
    def _validate_against(self, topology: "Topology") -> None:
        core = self.sim.route_table
        n = topology.num_routers
        per = core._ports_per_router
        for event in self.schedule.events:
            if event.router >= n:
                raise ValueError(
                    f"fault event references router {event.router}, but the "
                    f"network has {n} routers"
                )
            port = getattr(event, "port", None)
            if port is not None:
                if port >= per or core._neighbor[event.router * per + port] < 0:
                    raise ValueError(
                        f"fault event references port {port} of router "
                        f"{event.router}, which has no link"
                    )

    def _install(self) -> None:
        engine = self.sim.engine
        for event in self.schedule.events:
            engine.schedule_call(event.cycle, self._apply, (event,))
        for router in self.sim.routers:
            for port_id, output in router.output_ports.items():
                link = output.link
                if link is not None:
                    self._wrap_link(router.router_id, port_id, link)

    def _wrap_link(self, src: int, port: int, link: "Link") -> None:
        """Interpose the in-flight policy on ``link``'s delivery closure.

        The wrapper replaces ``link._deliver`` *at construction time*, so
        every scheduled delivery — including flits already on the wire when
        a fault fires — passes through it.  The live-link path is one set
        membership test; no-fault simulations never install wrappers.
        """
        key = (src, port)
        inner = link._deliver
        dead = self._dead_links
        engine = self.sim.engine
        # link name is (src router, src port, dst router, dst port).
        _, _, dst_router, back_port = link._name
        channel = self.sim.routers[dst_router].input_ports[back_port].credit_channel
        stall = self.policy == "stall"
        controller = self

        def deliver(packet: "Packet", vc: int, now: int) -> None:
            if key not in dead:
                inner(packet, vc, now)
                return
            if stall:
                up = controller._recovery_cycle(key, now)
                if up is not None:
                    # Hold the flit on the wire; the LinkUp event at ``up``
                    # fires first (calendar insertion order), so this
                    # re-delivery lands on a live link.
                    engine.schedule_call(up, deliver, (packet, vc, up))
                    return
            controller._drop_on_wire(packet, key, vc, now, channel)

        link._deliver = deliver

    # -- event application ---------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        now = self.sim.engine.now
        before = frozenset(self._dead_links)
        kind = event.kind
        if kind == "link-down":
            assert isinstance(event, LinkDown)
            for key in self._link_pair(event.router, event.port):
                self._add_reason(key, ("link", self._pair_id(event)))
        elif kind == "link-up":
            assert isinstance(event, LinkUp)
            for key in self._link_pair(event.router, event.port):
                self._drop_reason(key, ("link", self._pair_id(event)))
        elif kind == "router-down":
            router = event.router
            self._dead_routers.add(router)
            for key in self._incident_links(router):
                self._add_reason(key, ("router", router))
            self._drain_router(self.sim.routers[router], now)
            self._update_traffic_filter()
        else:  # router-up
            router = event.router
            self._dead_routers.discard(router)
            for key in self._incident_links(router):
                self._drop_reason(key, ("router", router))
            self._update_traffic_filter()
        self.faults_applied += 1
        went_down = self._dead_links - before
        went_up = before - self._dead_links
        if went_down:
            self._check_partition(event)
        self._retable(went_down, went_up)
        hook = self.on_fault_applied
        if hook is not None:
            hook(event, now)

    def _add_reason(self, key: _LinkKey, reason: _Reason) -> None:
        self._dead_reasons.setdefault(key, set()).add(reason)
        self._dead_links.add(key)

    def _drop_reason(self, key: _LinkKey, reason: _Reason) -> None:
        reasons = self._dead_reasons.get(key)
        if reasons is None:
            return
        reasons.discard(reason)
        if not reasons:
            del self._dead_reasons[key]
            self._dead_links.discard(key)

    def _pair_id(self, event: "LinkDown | LinkUp") -> int:
        """Canonical id of the physical link a Link{Down,Up} names."""
        core = self.sim.route_table
        keys = sorted(self._link_pair(event.router, event.port))
        router, port = keys[0]
        return router * core._ports_per_router + port

    def _link_pair(self, router: int, port: int) -> Tuple[_LinkKey, _LinkKey]:
        """Both directed keys of the physical link at ``(router, port)``."""
        core = self.sim.route_table
        per = core._ports_per_router
        neighbor = core._neighbor[router * per + port]
        back = core._back_ports()[router * per + port]
        return (router, port), (neighbor, back)

    def _incident_links(self, router: int) -> List[_LinkKey]:
        core = self.sim.route_table
        per = core._ports_per_router
        keys: List[_LinkKey] = []
        for port in range(per):
            if core._neighbor[router * per + port] >= 0:
                keys.extend(self._link_pair(router, port))
        return keys

    def _recovery_cycle(self, key: _LinkKey, now: int) -> Optional[int]:
        """First future cycle at which directed link ``key`` revives.

        Replays the (tiny) schedule's reason arithmetic from the link's
        current reasons; None when no future event clears them all.
        """
        reasons = set(self._dead_reasons.get(key, ()))
        if not reasons:
            return now
        pair = {k for k in self._link_pair(*key)}
        for event in self.schedule.events:
            if event.cycle <= now:
                continue
            if event.kind == "link-up":
                assert isinstance(event, LinkUp)
                if (event.router, event.port) in pair:
                    reasons.discard(("link", self._pair_id(event)))
            elif event.kind == "link-down":
                assert isinstance(event, LinkDown)
                if (event.router, event.port) in pair:
                    reasons.add(("link", self._pair_id(event)))
            elif event.kind == "router-up":
                reasons.discard(("router", event.router))
            elif event.kind == "router-down":
                if any(k[0] == event.router for k in sorted(pair)):
                    reasons.add(("router", event.router))
            if not reasons:
                return event.cycle
        return None

    # -- partition detection -------------------------------------------------
    def _check_partition(self, event: FaultEvent) -> None:
        """Raise :class:`NetworkPartitionedError` when the live routers are
        no longer mutually connected through live links."""
        core = self.sim.route_table
        n = core._n
        per = core._ports_per_router
        neighbor = core._neighbor
        back = core._back_ports()
        dead_links = self._dead_links
        dead_routers = self._dead_routers
        live = [r for r in range(n) if r not in dead_routers]
        if not live:
            return
        seen = {live[0]}
        frontier = [live[0]]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                base = u * per
                for q in range(per):
                    w = neighbor[base + q]
                    if w < 0 or w in seen or w in dead_routers:
                        continue
                    if (u, q) in dead_links or (w, back[base + q]) in dead_links:
                        continue
                    seen.add(w)
                    nxt.append(w)
            frontier = nxt
        if len(seen) < len(live):
            raise NetworkPartitionedError(
                f"fault event {event} at cycle {self.sim.engine.now} "
                f"partitions the network: {len(seen)} of {len(live)} live "
                f"routers remain mutually reachable"
            )

    # -- re-table-ing --------------------------------------------------------
    def _retable(self, went_down: Set[_LinkKey], went_up: Set[_LinkKey]) -> None:
        """Incrementally rebuild only the route columns a transition touched.

        Down transitions invalidate every column currently routed through a
        newly-dead directed link; up transitions re-invalidate every column
        that was rebuilt with detours (restoring the pristine, byte-identical
        fill once all faults have cleared).  Columns whose *destination* is a
        dead router are deliberately left stale (sink-hole rule: packets flow
        to the dead boundary and drop there with accounting).
        """
        if not went_down and not went_up:
            return
        table = self.sim.route_table
        affected: Set[int] = set()
        for router, port in sorted(went_down):
            affected.update(table.columns_via(router, port))
        if went_up:
            affected.update(self._fault_columns)
            affected.update(table._fault_dirty)
        dead_routers = self._dead_routers
        affected = {dst for dst in sorted(affected) if dst not in dead_routers}
        table.set_fault_state(
            frozenset(self._dead_links), frozenset(dead_routers)
        )
        for dst in sorted(affected):
            table.invalidate(dst)
            self.columns_invalidated += 1
        if self._dead_links or dead_routers:
            self._fault_columns |= affected
        else:
            self._fault_columns.clear()
        if affected or went_down or went_up:
            self._invalidate_plans()

    def _invalidate_plans(self) -> None:
        """Flush every cached forwarding decision after a re-table.

        Clears the routing layer's plan/candidate memos, every port's cached
        head plan and blocked-allocation verdict, and wakes every router so
        the next pump re-evaluates against the rebuilt columns.  Cleared
        non-None head plans count as rerouted packets (their forwarding
        decision was recomputed because of a fault).
        """
        sim = self.sim
        sim.routing.invalidate_route_caches()
        rerouted = 0
        for router in sim.routers:
            for port in router._alloc_inputs:
                plans = port.head_plans
                for vc in range(len(plans)):
                    if plans[vc] is not None:
                        plans[vc] = None
                        rerouted += 1
                port._hot[port._hb + 2] = -1
            masks = router._pv_masks
            for i in range(len(masks)):
                masks[i] = 0
            router._pv_any_mask = 0
            router._blocked_credit_mask = 0
            router.wake()
        self.packets_rerouted += rerouted

    # -- in-flight and buffered packet handling ------------------------------
    def _drop_on_wire(
        self,
        packet: "Packet",
        key: _LinkKey,
        vc: int,
        now: int,
        channel: Optional["CreditChannel"],
    ) -> None:
        """Drop a flit in flight on a dead link, with accounting.

        The upstream output port's credit mirror was debited at grant time;
        the credit is returned when the link recovers (never, if it does
        not — a permanently-dead port's stale mirror is unreachable anyway).
        """
        self.packets_dropped += 1
        self.packets_dropped_wire += 1
        hook = self.on_packet_dropped
        if hook is not None:
            hook(packet, key[0], "wire", now)
        if channel is None:
            return
        up = self._recovery_cycle(key, now)
        if up is not None:
            self.sim.engine.schedule_call(
                max(up, now),
                channel._deliver,
                (vc, packet.size_phits, packet.credit_tag_minimal),
            )

    def _drain_router(self, router: "Router", now: int) -> None:
        """A failed router loses its buffered state: drop every resident
        packet (network inputs, injection buffers, source queues) with
        accounting, mirroring ``InputPort.pop``'s bookkeeping minus the
        credit send (owed credits are scheduled at the router's recovery)."""
        engine = self.sim.engine
        router_id = router.router_id
        up = self._router_recovery_cycle(router_id, now)
        hook = self.on_packet_dropped
        for port in router._alloc_inputs:
            hot = port._hot
            base = port._hb
            channel = port.credit_channel
            for vc, queue in enumerate(port.queues):
                if not queue:
                    continue
                for packet, _ready in queue:
                    size = packet.size_phits
                    port._buf_release(vc, size)
                    self.packets_dropped += 1
                    self.packets_dropped_buffer += 1
                    if port.is_injection:
                        router._injection_resident -= 1
                    else:
                        router.resident_packets -= 1
                        router.resident_ledger.count -= 1
                        if up is not None and channel is not None:
                            engine.schedule_call(
                                max(up, now),
                                channel._deliver,
                                (vc, size, packet.credit_tag_minimal),
                            )
                    if hook is not None:
                        hook(packet, router_id, "buffer", now)
                queue.clear()
                port.head_plans[vc] = None
            hot[base] = 0
            hot[base + 1] = 0
            hot[base + 2] = -1
        for queue in router.source_queues:
            for packet in queue:
                self.packets_dropped += 1
                self.packets_dropped_source += 1
                router._source_backlog -= 1
                if hook is not None:
                    hook(packet, router_id, "source", now)
            queue.clear()

    def _router_recovery_cycle(self, router: int, now: int) -> Optional[int]:
        for event in self.schedule.events:
            if (event.cycle > now and event.kind == "router-up"
                    and event.router == router):
                return event.cycle
        return None

    # -- traffic suppression -------------------------------------------------
    def _update_traffic_filter(self) -> None:
        """(Un)install the generator-boundary filter for dead routers.

        Suppression happens *after* the RNG draw and *before*
        ``record_generation`` — the random stream is untouched (surviving
        traffic stays bit-identical) and suppressed packets never count as
        generated (conservation is over network-entering packets only).
        """
        traffic = self.sim.traffic
        assert traffic is not None
        dead = self._dead_routers
        if not dead:
            traffic.fault_filter = None
            return
        topology = self.sim.topology
        router_of = topology.router_of_node
        controller = self

        def allow(packet: "Packet") -> bool:
            if router_of(packet.src_node) in dead or \
                    router_of(packet.dst_node) in dead:
                controller.packets_suppressed += 1
                return False
            return True

        traffic.fault_filter = allow

    # -- reporting -----------------------------------------------------------
    def window_extra(self) -> Dict[str, Any]:
        """Cumulative fault counters for ``SimulationResult.extra``."""
        return {
            "faults_applied": self.faults_applied,
            "packets_dropped": self.packets_dropped,
            "packets_rerouted": self.packets_rerouted,
            "packets_suppressed": self.packets_suppressed,
            "columns_invalidated": self.columns_invalidated,
        }

    def provenance(self) -> Dict[str, Any]:
        """Fault block for RunRecord provenance."""
        return {
            "schedule_events": len(self.schedule.events),
            "schedule_digest": self.schedule.digest(),
            "policy": self.policy,
            "applied": self.faults_applied,
            "packets_dropped": self.packets_dropped,
            "packets_dropped_wire": self.packets_dropped_wire,
            "packets_dropped_buffer": self.packets_dropped_buffer,
            "packets_dropped_source": self.packets_dropped_source,
            "packets_suppressed": self.packets_suppressed,
            "packets_rerouted": self.packets_rerouted,
            "columns_invalidated": self.columns_invalidated,
        }
