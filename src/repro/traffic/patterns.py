"""Bernoulli traffic patterns: uniform (UN) and adversarial (ADV+i).

* **UN** — every generated packet targets a uniformly random node other than
  the source.  Minimal routing is optimal for this pattern.
* **ADV** — every packet targets a random node in the group ``offset`` groups
  ahead of the source's group (Section IV-B uses offset 1).  Groups are the
  topology's LOCAL-connected router sets (Dragonfly groups, HyperX/Flattened
  Butterfly dimension-0 rows, Megafly groups); under minimal routing all of a
  group's traffic funnels through its few global links towards the next
  group, so Valiant (or adaptive) routing is required.
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.base import Topology
from .base import TrafficGenerator


class UniformTraffic(TrafficGenerator):
    """Uniform random destinations (Bernoulli injection)."""

    name = "uniform"

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        destination = self.rng.randrange(self.num_nodes - 1)
        if destination >= node:
            destination += 1
        return destination


class AdversarialTraffic(TrafficGenerator):
    """ADV+offset traffic (random node in the group ``offset`` groups ahead)."""

    name = "adversarial"

    def __init__(
        self,
        num_nodes: int,
        load: float,
        packet_size: int,
        rng: random.Random,
        topology: Topology,
        offset: int = 1,
    ) -> None:
        super().__init__(num_nodes, load, packet_size, rng)
        groups = topology.router_groups()
        if len(groups) < 2:
            raise ValueError(
                "adversarial (+offset group) traffic needs a topology with at "
                "least two LOCAL-connected router groups"
            )
        if offset < 1 or offset >= len(groups):
            raise ValueError(
                f"offset must be in [1, num_groups), got {offset} "
                f"with {len(groups)} groups"
            )
        self.topology = topology
        self.offset = offset
        self.num_groups = len(groups)
        #: nodes attached to each group's routers, in node order.
        self._group_nodes = [
            [node for router in members for node in topology.nodes_of_router(router)]
            for members in groups
        ]
        if any(not nodes for nodes in self._group_nodes):
            raise ValueError("adversarial traffic needs nodes in every group")
        self._group_of_node = [0] * num_nodes
        for group_id, nodes in enumerate(self._group_nodes):
            for node in nodes:
                self._group_of_node[node] = group_id

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        target_group = (self._group_of_node[node] + self.offset) % self.num_groups
        candidates = self._group_nodes[target_group]
        return candidates[self.rng.randrange(len(candidates))]


def permutation_destinations(num_nodes: int, rng: random.Random) -> list[int]:
    """Random fixed permutation (a useful extra pattern for examples/tests).

    Every node sends to a single fixed partner and no two nodes share a
    destination; re-rolled until it is a derangement (no self-loops).
    """
    while True:
        perm = list(range(num_nodes))
        rng.shuffle(perm)
        if all(perm[i] != i for i in range(num_nodes)):
            return perm


class PermutationTraffic(TrafficGenerator):
    """Fixed random permutation traffic (each node has one partner)."""

    name = "permutation"

    def __init__(self, num_nodes, load, packet_size, rng):
        super().__init__(num_nodes, load, packet_size, rng)
        self._partners = permutation_destinations(num_nodes, rng)

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        return self._partners[node]
