"""Bernoulli traffic patterns: uniform (UN) and adversarial (ADV+i).

* **UN** — every generated packet targets a uniformly random node other than
  the source.  Minimal routing is optimal for this pattern.
* **ADV** — every packet targets a random node in the group ``offset`` groups
  ahead of the source's group (Section IV-B uses offset 1).  Under minimal
  routing all of a group's traffic funnels through its single global link to
  the next group, so Valiant (or adaptive) routing is required.
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.dragonfly import Dragonfly
from .base import TrafficGenerator


class UniformTraffic(TrafficGenerator):
    """Uniform random destinations (Bernoulli injection)."""

    name = "uniform"

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        destination = self.rng.randrange(self.num_nodes - 1)
        if destination >= node:
            destination += 1
        return destination


class AdversarialTraffic(TrafficGenerator):
    """ADV+offset traffic for Dragonfly networks (random node in group g+offset)."""

    name = "adversarial"

    def __init__(
        self,
        num_nodes: int,
        load: float,
        packet_size: int,
        rng: random.Random,
        topology: Dragonfly,
        offset: int = 1,
    ) -> None:
        super().__init__(num_nodes, load, packet_size, rng)
        if not isinstance(topology, Dragonfly):
            raise TypeError("adversarial (+offset group) traffic requires a Dragonfly topology")
        if offset < 1 or offset >= topology.num_groups:
            raise ValueError(
                f"offset must be in [1, num_groups), got {offset} "
                f"with {topology.num_groups} groups"
            )
        self.topology = topology
        self.offset = offset
        self._nodes_per_group = topology.a * topology.p

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        source_router = self.topology.router_of_node(node)
        source_group = self.topology.group_of(source_router)
        target_group = (source_group + self.offset) % self.topology.num_groups
        first_node = target_group * self._nodes_per_group
        return first_node + self.rng.randrange(self._nodes_per_group)


def permutation_destinations(num_nodes: int, rng: random.Random) -> list[int]:
    """Random fixed permutation (a useful extra pattern for examples/tests).

    Every node sends to a single fixed partner and no two nodes share a
    destination; re-rolled until it is a derangement (no self-loops).
    """
    while True:
        perm = list(range(num_nodes))
        rng.shuffle(perm)
        if all(perm[i] != i for i in range(num_nodes)):
            return perm


class PermutationTraffic(TrafficGenerator):
    """Fixed random permutation traffic (each node has one partner)."""

    name = "permutation"

    def __init__(self, num_nodes, load, packet_size, rng):
        super().__init__(num_nodes, load, packet_size, rng)
        self._partners = permutation_destinations(num_nodes, rng)

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        return self._partners[node]
