"""Traffic manager: injection plumbing plus reactive (request-reply) traffic.

The :class:`TrafficManager` sits between the traffic generators and the
routers.  Every cycle it asks the generator for new request packets and drops
them into the source routers' injection queues.  When ``reactive`` is enabled
(Section IV-B), every consumed request triggers a reply of the same size from
the destination node back to the original source, mirroring the
request-reply virtual networks of Cray Cascade.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Sequence

from ..core.link_types import MessageClass
from ..metrics import MetricsCollector
from ..packet import Packet
from .base import TrafficGenerator


class TrafficManager:
    """Feeds routers with generated traffic and handles replies and metrics."""

    def __init__(
        self,
        generator: TrafficGenerator,
        routers: Sequence[object],
        nodes_per_router: int,
        metrics: MetricsCollector,
        reactive: bool = False,
        router_of_node: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.generator = generator
        self.routers = list(routers)
        self.nodes_per_router = nodes_per_router
        self.metrics = metrics
        self.reactive = reactive
        #: node -> source router mapping; None keeps the uniform division
        #: (topologies with transit-only routers supply their own).
        self.router_of_node = router_of_node
        #: hook invoked on every delivery, after metrics/replies are handled.
        self.delivery_hook: Optional[Callable[[Packet, int], None]] = None
        #: fault-injection admission filter (None on pristine networks):
        #: returns False to suppress a packet whose endpoint router is down,
        #: *before* it is counted as generated (see repro.faults).
        self.fault_filter: Optional[Callable[[Packet], bool]] = None
        self.replies_generated = 0
        #: outstanding requests by packet id (reactive mode diagnostics).
        self._outstanding: Dict[int, Packet] = {}
        #: set by Session.drain(): no new requests (replies still flow so
        #: in-flight request-reply exchanges can complete).
        self._stopped = False
        #: per-simulation packet-id counter, shared with the generator so
        #: request and reply pids interleave deterministically and reruns in
        #: the same process produce identical pid sequences.
        self._pids = itertools.count()
        generator.pid_source = self._pids

    # -- generation -------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Generate this cycle's request packets (called by the engine)."""
        if self._stopped:
            return
        for packet in self.generator.generate(cycle):
            self._enqueue(packet, cycle)

    def stop(self) -> None:
        """Stop generating new requests (drain phase)."""
        self._stopped = True

    def quiescent(self) -> bool:
        """True when no packet can be generated (lets the engine skip cycles).

        Replies are spawned from delivery events, which the engine never
        skips over, so only the request generator matters here.
        """
        return self._stopped or self.generator.quiescent()

    def _enqueue(self, packet: Packet, cycle: int) -> None:
        fault_filter = self.fault_filter
        if fault_filter is not None and not fault_filter(packet):
            # Suppressed (an endpoint's router is down): the RNG draw that
            # produced the packet already happened — surviving traffic is
            # bit-identical — and the packet never counts as generated.
            return
        if self.router_of_node is not None:
            router_index = self.router_of_node(packet.src_node)
        else:
            router_index = packet.src_node // self.nodes_per_router
        self.metrics.record_generation(packet, cycle)
        self.routers[router_index].enqueue_source(packet, cycle)
        if self.reactive and packet.msg_class == MessageClass.REQUEST:
            self._outstanding[packet.pid] = packet

    # -- delivery ----------------------------------------------------------------------
    def on_delivery(self, packet: Packet, cycle: int) -> None:
        """Router callback: record statistics and spawn replies."""
        self.metrics.record_delivery(packet, cycle)
        if self.reactive and packet.msg_class == MessageClass.REQUEST:
            self._outstanding.pop(packet.pid, None)
            reply = Packet(
                src_node=packet.dst_node,
                dst_node=packet.src_node,
                size_phits=packet.size_phits,
                msg_class=MessageClass.REPLY,
                created_at=cycle,
                in_reply_to=packet.pid,
                pid=next(self._pids),
            )
            self.replies_generated += 1
            self._enqueue(reply, cycle)
        if self.delivery_hook is not None:
            self.delivery_hook(packet, cycle)

    # -- diagnostics --------------------------------------------------------------------------
    def outstanding_requests(self) -> int:
        return len(self._outstanding)
