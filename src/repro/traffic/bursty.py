"""BURSTY-UN: two-state Markov (ON/OFF) burst traffic (Section IV-B).

Each node is an independent two-state Markov chain.  In the ON state the node
generates packets with a Bernoulli process towards a destination that stays
fixed for the whole burst; in the OFF state it generates nothing.  The
transition probabilities are derived from the requested average load and the
average burst length (5 packets in the paper), following the standard ON/OFF
fitting used for data-centre traffic models.

Derivation
----------
Let ``r`` be the per-cycle packet generation probability while ON (we use the
maximum injection rate, one packet every ``packet_size`` cycles, so bursts are
back-to-back packets), ``L`` the average burst length in packets and ``rho``
the required average packet rate.  A burst then lasts ``L / r`` cycles on
average, so the ON->OFF probability per ON cycle is ``p_off = r / L``.  The
fraction of time spent ON must satisfy ``pi_on * r = rho``, and for a two
state chain ``pi_on = p_on / (p_on + p_off)``, giving
``p_on = p_off * rho / (r - rho)`` (saturated to 1 when ``rho >= r``).
"""

from __future__ import annotations

import random
from typing import Optional

from .base import TrafficGenerator


class BurstyUniformTraffic(TrafficGenerator):
    """ON/OFF Markov-modulated uniform traffic."""

    name = "bursty"

    def __init__(
        self,
        num_nodes: int,
        load: float,
        packet_size: int,
        rng: random.Random,
        burst_length: float = 5.0,
    ) -> None:
        super().__init__(num_nodes, load, packet_size, rng)
        if burst_length < 1.0:
            raise ValueError("burst_length must be >= 1 packet")
        self.burst_length = burst_length
        #: packet generation probability per cycle while ON (back-to-back packets).
        self.on_rate = 1.0 / packet_size
        rho = self.injection_probability  # average packets/node/cycle
        self.p_off = self.on_rate / burst_length
        if rho >= self.on_rate:
            self.p_on = 1.0
        else:
            self.p_on = self.p_off * rho / (self.on_rate - rho)
            self.p_on = min(1.0, self.p_on)
        self._state_on = [False] * num_nodes
        self._burst_destination: list[Optional[int]] = [None] * num_nodes

    # -- Markov chain ------------------------------------------------------------
    def _advance_state(self, node: int) -> None:
        if self._state_on[node]:
            if self.rng.random() < self.p_off:
                self._state_on[node] = False
                self._burst_destination[node] = None
        else:
            if self.rng.random() < self.p_on:
                self._state_on[node] = True
                self._burst_destination[node] = self._pick_destination(node)

    def _pick_destination(self, node: int) -> int:
        destination = self.rng.randrange(self.num_nodes - 1)
        if destination >= node:
            destination += 1
        return destination

    # -- TrafficGenerator interface ----------------------------------------------------
    def should_generate(self, node: int, cycle: int) -> bool:
        self._advance_state(node)
        if not self._state_on[node]:
            return False
        return self.rng.random() < self.on_rate

    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        return self._burst_destination[node]
