"""Traffic generation interface.

A traffic generator produces packets for every node each cycle; the
:class:`TrafficManager` (in :mod:`repro.traffic.reactive`) routes them to the
source routers' injection queues and, for reactive patterns, produces replies
when requests are consumed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator, Optional

from ..core.link_types import MessageClass
from ..packet import Packet, _packet_ids


class TrafficGenerator(ABC):
    """Per-node synthetic traffic source."""

    def __init__(
        self,
        num_nodes: int,
        load: float,
        packet_size: int,
        rng: random.Random,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("traffic generation requires at least two nodes")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be within [0, 1] phits/node/cycle")
        if packet_size < 1:
            raise ValueError("packet_size must be >= 1")
        self.num_nodes = num_nodes
        self.load = load
        self.packet_size = packet_size
        self.rng = rng
        #: per-node injection probability per cycle so that the average offered
        #: load equals ``load`` phits/node/cycle.
        self.injection_probability = load / packet_size
        #: generators that keep the default Bernoulli process let generate()
        #: inline the draw (same RNG stream, one call per node less).
        self._plain_bernoulli = (
            type(self).should_generate is TrafficGenerator.should_generate
        )
        #: packet-id counter; the TrafficManager replaces this process-global
        #: fallback with a per-simulation counter so in-process reruns see
        #: identical pid sequences.
        self.pid_source = _packet_ids

    @abstractmethod
    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        """Destination node for a packet generated at ``node``, or None to skip."""

    def should_generate(self, node: int, cycle: int) -> bool:
        """Bernoulli injection process (overridden by the bursty generator)."""
        return self.rng.random() < self.injection_probability

    def quiescent(self) -> bool:
        """True when this source can never emit a packet.

        The event-driven engine fast-forwards across idle gaps only while
        every traffic source is quiescent, so this must be conservative:
        returning False merely costs cycles, returning True wrongly would
        drop traffic.
        """
        return self.injection_probability <= 0.0

    def generate(self, cycle: int) -> Iterator[Packet]:
        """Packets generated network-wide during ``cycle``."""
        probability = self.injection_probability
        if probability <= 0.0:
            return
        if self._plain_bernoulli:
            random_draw = self.rng.random
            should = None
        else:
            random_draw = None
            should = self.should_generate
        pid_source = self.pid_source
        for node in range(self.num_nodes):
            if random_draw is not None:
                if random_draw() >= probability:
                    continue
            elif not should(node, cycle):
                continue
            destination = self.destination_for(node, cycle)
            if destination is None or destination == node:
                continue
            yield Packet(
                src_node=node,
                dst_node=destination,
                size_phits=self.packet_size,
                msg_class=MessageClass.REQUEST,
                created_at=cycle,
                pid=next(pid_source),
            )
