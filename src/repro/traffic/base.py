"""Traffic generation interface.

A traffic generator produces packets for every node each cycle; the
:class:`TrafficManager` (in :mod:`repro.traffic.reactive`) routes them to the
source routers' injection queues and, for reactive patterns, produces replies
when requests are consumed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator, Optional

from ..core.link_types import MessageClass
from ..packet import Packet


class TrafficGenerator(ABC):
    """Per-node synthetic traffic source."""

    def __init__(
        self,
        num_nodes: int,
        load: float,
        packet_size: int,
        rng: random.Random,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("traffic generation requires at least two nodes")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be within [0, 1] phits/node/cycle")
        if packet_size < 1:
            raise ValueError("packet_size must be >= 1")
        self.num_nodes = num_nodes
        self.load = load
        self.packet_size = packet_size
        self.rng = rng
        #: per-node injection probability per cycle so that the average offered
        #: load equals ``load`` phits/node/cycle.
        self.injection_probability = load / packet_size

    @abstractmethod
    def destination_for(self, node: int, cycle: int) -> Optional[int]:
        """Destination node for a packet generated at ``node``, or None to skip."""

    def should_generate(self, node: int, cycle: int) -> bool:
        """Bernoulli injection process (overridden by the bursty generator)."""
        return self.rng.random() < self.injection_probability

    def generate(self, cycle: int) -> Iterator[Packet]:
        """Packets generated network-wide during ``cycle``."""
        for node in range(self.num_nodes):
            if not self.should_generate(node, cycle):
                continue
            destination = self.destination_for(node, cycle)
            if destination is None or destination == node:
                continue
            yield Packet(
                src_node=node,
                dst_node=destination,
                size_phits=self.packet_size,
                msg_class=MessageClass.REQUEST,
                created_at=cycle,
            )
