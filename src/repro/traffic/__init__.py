"""Synthetic traffic: UN, ADV, BURSTY-UN and reactive (request-reply) wrappers."""

from __future__ import annotations

import random

from ..config import TrafficConfig
from ..topology.base import Topology
from .base import TrafficGenerator
from .bursty import BurstyUniformTraffic
from .patterns import AdversarialTraffic, PermutationTraffic, UniformTraffic
from .reactive import TrafficManager


def make_generator(
    config: TrafficConfig,
    topology: Topology,
    rng: random.Random,
) -> TrafficGenerator:
    """Instantiate the traffic generator named in ``config.pattern``.

    For reactive (request-reply) traffic the request generation rate is half
    the configured offered load: every consumed request triggers a reply of
    the same size, so requests plus replies together equal ``config.load``
    phits/node/cycle — which keeps the offered/accepted load axes directly
    comparable between the oblivious (Figure 5) and request-reply (Figures 7
    and 8) experiments, as in the paper.
    """
    num_nodes = topology.num_nodes
    load = config.load / 2 if config.reactive else config.load
    if config.pattern == "uniform":
        return UniformTraffic(num_nodes, load, config.packet_size, rng)
    if config.pattern == "bursty":
        return BurstyUniformTraffic(
            num_nodes, load, config.packet_size, rng, config.burst_length
        )
    if config.pattern == "adversarial":
        return AdversarialTraffic(
            num_nodes, load, config.packet_size, rng, topology,
            config.adversarial_offset,
        )
    raise ValueError(f"unknown traffic pattern {config.pattern!r}")


__all__ = [
    "TrafficGenerator",
    "UniformTraffic",
    "AdversarialTraffic",
    "PermutationTraffic",
    "BurstyUniformTraffic",
    "TrafficManager",
    "make_generator",
]
