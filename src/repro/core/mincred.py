"""Split credit accounting for FlexVC-minCred (Section III-D).

FlexVC lets minimally- and non-minimally-routed packets share the same
buffers, which blurs the congestion signal that source-adaptive routing (e.g.
Piggyback) relies on.  FlexVC-minCred restores it by accounting the credits
of minimally-routed and non-minimally-routed packets separately: every credit
taken or returned is tagged with the routing class of its packet, and the
saturation/misrouting decisions then look only at the *minimal* share of the
occupancy.

:class:`SplitOccupancy` is the per-VC (or per-port) counter pair used by
:class:`repro.router.credits.CreditTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class SplitOccupancy:
    """Phit occupancy split by routing class (minimal vs non-minimal).

    Slotted: one instance exists per (port, VC) pair, which at
    10^5-endpoint scale means millions of them."""

    minimal: int = 0
    nonminimal: int = 0

    @property
    def total(self) -> int:
        return self.minimal + self.nonminimal

    def add(self, phits: int, minimal: bool) -> None:
        if phits < 0:
            raise ValueError("phits must be non-negative")
        if minimal:
            self.minimal += phits
        else:
            self.nonminimal += phits

    def remove(self, phits: int, minimal: bool) -> None:
        if phits < 0:
            raise ValueError("phits must be non-negative")
        if minimal:
            if phits > self.minimal:
                raise ValueError(
                    f"removing {phits} minimal phits but only {self.minimal} accounted"
                )
            self.minimal -= phits
        else:
            if phits > self.nonminimal:
                raise ValueError(
                    f"removing {phits} non-minimal phits but only {self.nonminimal} accounted"
                )
            self.nonminimal -= phits

    def occupancy(self, minimal_only: bool) -> int:
        """Occupancy metric: MIN credits only (minCred) or all credits."""
        return self.minimal if minimal_only else self.total


@dataclass(slots=True)
class PortOccupancyLedger:
    """Per-VC split occupancy plus the port-level aggregate.

    This is the data structure behind the four congestion-sensing variants of
    Figure 8: {per-port, per-VC} x {all credits, MIN credits only}.
    """

    num_vcs: int
    per_vc: list[SplitOccupancy] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if not self.per_vc:
            self.per_vc = [SplitOccupancy() for _ in range(self.num_vcs)]
        elif len(self.per_vc) != self.num_vcs:
            raise ValueError("per_vc length must equal num_vcs")

    def add(self, vc: int, phits: int, minimal: bool) -> None:
        # Inlined SplitOccupancy.add: this runs on every credit debit, and
        # the router hot path guarantees phits >= 0.
        split = self.per_vc[vc]
        if minimal:
            split.minimal += phits
        else:
            split.nonminimal += phits

    def remove(self, vc: int, phits: int, minimal: bool) -> None:
        # Inlined SplitOccupancy.remove, underflow checks preserved.
        split = self.per_vc[vc]
        if minimal:
            if phits > split.minimal:
                raise ValueError(
                    f"removing {phits} minimal phits but only {split.minimal} accounted"
                )
            split.minimal -= phits
        else:
            if phits > split.nonminimal:
                raise ValueError(
                    f"removing {phits} non-minimal phits but only "
                    f"{split.nonminimal} accounted"
                )
            split.nonminimal -= phits

    def port_occupancy(self, minimal_only: bool = False) -> int:
        return sum(vc.occupancy(minimal_only) for vc in self.per_vc)

    def vc_occupancy(self, vc: int, minimal_only: bool = False) -> int:
        return self.per_vc[vc].occupancy(minimal_only)
