"""Analytical path-feasibility classification (Tables I-IV of the paper).

Given a routing protocol (MIN/VAL/PAR), a VC arrangement and a network kind
(generic diameter-2 or Dragonfly), this module classifies the protocol's
reference path as *safe*, *opportunistic* or *unsupported* under FlexVC —
reproducing Tables I, II, III and IV without running the simulator.

The classification walks the canonical reference path hop by hop, applying
the FlexVC rules (Definitions 1 and 2) with the escape path available at each
position, greedily occupying the lowest admissible VC (which is optimal for
feasibility since every constraint is monotone in the occupied index).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Optional, Sequence

from .arrangement import VcArrangement
from .flexvc import FlexVcPolicy
from .link_types import (
    DIAMETER2_MIN,
    DRAGONFLY_MIN,
    HopSequence,
    LinkType,
    MessageClass,
    count_hops,
    reference_path,
    reference_path_for,
)
from .vc_policy import HopContext


class PathSupport(Enum):
    """Support level of a routing protocol for a given VC arrangement."""

    SAFE = "safe"
    OPPORTUNISTIC = "opport."
    UNSUPPORTED = "X"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _suffixes(minimal: HopSequence) -> tuple[HopSequence, ...]:
    """Minimal continuations after each hop of ``minimal`` (ending empty)."""
    return tuple(minimal[i + 1:] for i in range(len(minimal)))


def escape_sequences_for(
    minimal: HopSequence,
    routing: str,
    worst_escape: Optional[HopSequence] = None,
) -> tuple[HopSequence, ...]:
    """Per-hop worst-case escape paths for a reference path.

    ``minimal`` is the network's worst-case minimal path; ``worst_escape`` is
    the worst-case minimal continuation from an *arbitrary* router (it equals
    ``minimal`` unless mid-path routers can be farther from every destination
    than any source is, as in the Megafly whose spine routers may need an
    extra local hop).  While a packet still heads for its Valiant
    intermediate the escape is that worst case; once on a minimal segment the
    escape is the actual remaining suffix.
    """
    if worst_escape is None:
        worst_escape = minimal
    key = routing.upper()
    if key == "MIN":
        return _suffixes(minimal)
    if key == "VAL":
        return (worst_escape,) * len(minimal) + _suffixes(minimal)
    if key == "PAR":
        return (minimal[1:],) + (worst_escape,) * len(minimal) + _suffixes(minimal)
    raise ValueError(f"unknown routing {routing!r}")


def escape_sequences(routing: str, dragonfly: bool) -> tuple[HopSequence, ...]:
    """Per-hop worst-case escape paths for a canonical reference path."""
    return escape_sequences_for(DRAGONFLY_MIN if dragonfly else DIAMETER2_MIN, routing)


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a feasibility walk along a reference path."""

    feasible: bool
    #: VC index chosen (greedy lowest) at each hop, empty if infeasible.
    chosen_vcs: tuple[int, ...]
    #: index of the first infeasible hop (or -1).
    failed_hop: int = -1


def walk_reference_path_for(
    policy: FlexVcPolicy,
    routing: str,
    minimal: HopSequence,
    msg_class: MessageClass = MessageClass.REQUEST,
    worst_escape: Optional[HopSequence] = None,
) -> WalkResult:
    """Walk the reference path of a network with minimal path ``minimal``."""
    ref = reference_path_for(minimal, routing)
    escapes = escape_sequences_for(minimal, routing, worst_escape)
    assert len(ref) == len(escapes)
    input_type: Optional[LinkType] = None
    input_vc = -1
    chosen: list[int] = []
    for i, (hop_type, escape) in enumerate(zip(ref, escapes)):
        ctx = HopContext(
            msg_class=msg_class,
            out_type=hop_type,
            intended_remaining=ref[i:],
            escape_from_next=escape,
            input_type=input_type,
            input_vc=input_vc,
        )
        admissible = policy.allowed_vcs(ctx)
        if admissible is None:
            return WalkResult(False, tuple(chosen), failed_hop=i)
        vc = admissible.lo
        chosen.append(vc)
        input_type = hop_type
        input_vc = vc
    return WalkResult(True, tuple(chosen))


def walk_reference_path(
    policy: FlexVcPolicy,
    routing: str,
    dragonfly: bool,
    msg_class: MessageClass = MessageClass.REQUEST,
) -> WalkResult:
    """Walk a canonical reference path under FlexVC (paper Tables I-IV)."""
    minimal = DRAGONFLY_MIN if dragonfly else DIAMETER2_MIN
    return walk_reference_path_for(policy, routing, minimal, msg_class)


def _fits_own_subsequence(
    arrangement: VcArrangement,
    routing: str,
    minimal: HopSequence,
    msg_class: MessageClass,
) -> bool:
    """Does the reference path fit the class's *own* VC sub-sequence?

    This is the paper's notion of a *safe* path: requests within the request
    VCs, replies within the reply VCs.  Replies that need to borrow request
    VCs are "opportunistic" even though they are trivially deadlock-free.
    """
    ref = reference_path_for(minimal, routing)
    for link_type in (LinkType.LOCAL, LinkType.GLOBAL):
        needed = count_hops(ref, link_type)
        if msg_class == MessageClass.REPLY and arrangement.is_reactive:
            available = arrangement.reply_count(link_type)
        else:
            available = arrangement.request_count(link_type)
        if needed > available:
            return False
    return True


def classify_minimal(
    arrangement: VcArrangement,
    routing: str,
    minimal: HopSequence,
    msg_class: MessageClass = MessageClass.REQUEST,
    worst_escape: Optional[HopSequence] = None,
) -> PathSupport:
    """Classify a protocol on a network with minimal path ``minimal``."""
    policy = FlexVcPolicy(arrangement)
    result = walk_reference_path_for(policy, routing, minimal, msg_class, worst_escape)
    if not result.feasible:
        return PathSupport.UNSUPPORTED
    if _fits_own_subsequence(arrangement, routing, minimal, msg_class):
        return PathSupport.SAFE
    return PathSupport.OPPORTUNISTIC


def classify(
    arrangement: VcArrangement,
    routing: str,
    dragonfly: bool,
    msg_class: MessageClass = MessageClass.REQUEST,
) -> PathSupport:
    """Classify one routing protocol / message class under FlexVC."""
    minimal = DRAGONFLY_MIN if dragonfly else DIAMETER2_MIN
    return classify_minimal(arrangement, routing, minimal, msg_class)


_ORDER = {
    PathSupport.SAFE: 2,
    PathSupport.OPPORTUNISTIC: 1,
    PathSupport.UNSUPPORTED: 0,
}


def classify_request_reply(
    arrangement: VcArrangement,
    routing: str,
    dragonfly: bool,
) -> tuple[PathSupport, PathSupport]:
    """(request, reply) classifications for a reactive arrangement."""
    return (
        classify(arrangement, routing, dragonfly, MessageClass.REQUEST),
        classify(arrangement, routing, dragonfly, MessageClass.REPLY),
    )


def combined_support(request: PathSupport, reply: PathSupport) -> PathSupport:
    """Overall support of a request-reply exchange (the weaker of the two)."""
    return request if _ORDER[request] <= _ORDER[reply] else reply


# ---------------------------------------------------------------------------
# Table generators
# ---------------------------------------------------------------------------

ROUTINGS = ("MIN", "VAL", "PAR")


def table1(vc_counts: Iterable[int] = (2, 3, 4, 5)) -> Dict[str, Dict[int, PathSupport]]:
    """Table I: allowed paths in a generic diameter-2 network vs number of VCs."""
    table: Dict[str, Dict[int, PathSupport]] = {}
    for routing in ROUTINGS:
        row: Dict[int, PathSupport] = {}
        for vcs in vc_counts:
            arrangement = VcArrangement.single_class(vcs, 0)
            row[vcs] = classify(arrangement, routing, dragonfly=False)
        table[routing] = row
    return table


DEFAULT_TABLE2_CONFIGS: tuple[tuple[int, int], ...] = ((2, 2), (3, 2), (3, 3), (4, 4), (5, 5))


def table2(
    configs: Sequence[tuple[int, int]] = DEFAULT_TABLE2_CONFIGS,
) -> Dict[str, Dict[tuple[int, int], PathSupport]]:
    """Table II: generic diameter-2 network with request+reply VCs.

    ``configs`` are ``(request_vcs, reply_vcs)`` pairs, e.g. ``(3, 2)`` for the
    3+2=5 configuration.
    """
    table: Dict[str, Dict[tuple[int, int], PathSupport]] = {}
    for routing in ROUTINGS:
        row: Dict[tuple[int, int], PathSupport] = {}
        for req, rep in configs:
            arrangement = VcArrangement.request_reply((req, 0), (rep, 0))
            request, reply = classify_request_reply(arrangement, routing, dragonfly=False)
            row[(req, rep)] = combined_support(request, reply)
        table[routing] = row
    return table


DEFAULT_TABLE3_CONFIGS: tuple[tuple[int, int], ...] = ((2, 1), (3, 1), (2, 2), (3, 2), (4, 2), (5, 2))


def table3(
    configs: Sequence[tuple[int, int]] = DEFAULT_TABLE3_CONFIGS,
) -> Dict[str, Dict[tuple[int, int], PathSupport]]:
    """Table III: Dragonfly, single-class traffic, (local, global) VC counts."""
    table: Dict[str, Dict[tuple[int, int], PathSupport]] = {}
    for routing in ROUTINGS:
        row: Dict[tuple[int, int], PathSupport] = {}
        for local, global_ in configs:
            arrangement = VcArrangement.single_class(local, global_)
            row[(local, global_)] = classify(arrangement, routing, dragonfly=True)
        table[routing] = row
    return table


#: Table IV columns: ((request local/global), (reply local/global)).
DEFAULT_TABLE4_CONFIGS: tuple[tuple[tuple[int, int], tuple[int, int]], ...] = (
    ((2, 1), (2, 1)),
    ((3, 2), (2, 1)),
    ((4, 2), (4, 2)),
    ((5, 2), (5, 2)),
)


def table4(
    configs: Sequence[tuple[tuple[int, int], tuple[int, int]]] = DEFAULT_TABLE4_CONFIGS,
) -> Dict[str, Dict[tuple[tuple[int, int], tuple[int, int]], tuple[PathSupport, PathSupport]]]:
    """Table IV: Dragonfly with request+reply traffic.

    Each cell holds the ``(request, reply)`` classification pair, matching the
    paper's "X / opport." notation for the 4/2 column.
    """
    table: Dict[str, Dict] = {}
    for routing in ROUTINGS:
        row: Dict = {}
        for req, rep in configs:
            arrangement = VcArrangement.request_reply(req, rep)
            row[(req, rep)] = classify_request_reply(arrangement, routing, dragonfly=True)
        table[routing] = row
    return table


def render_table(table: Dict, title: str) -> str:
    """Plain-text rendering of any of the table generators' outputs."""
    lines = [title]
    for routing, row in table.items():
        cells = []
        for key, value in row.items():
            if isinstance(value, tuple):
                rendered = " / ".join(str(v) for v in value)
            else:
                rendered = str(value)
            cells.append(f"{key}: {rendered}")
        lines.append(f"  {routing:4s} | " + " | ".join(cells))
    return "\n".join(lines)
