"""FlexVC: flexible virtual-channel management (Section III of the paper).

FlexVC removes the strict "one VC per hop" order of distance-based deadlock
avoidance.  A packet may be forwarded into *any* VC whose index still leaves
room for an ascending safe path to the destination:

* **Safe hops** (Definition 1): the packet's whole intended remaining path
  fits, per link type, above its current buffer.  The routing relation then
  allows every VC from 0 up to ``n_t - remaining_hops_of_type_t`` — i.e. the
  higher-index VCs are *relegated to later steps of the path* but any lower
  VC is fair game, which is what mitigates head-of-line blocking and absorbs
  bursts.

* **Opportunistic hops** (Definition 2): the intended path itself does not
  fit (e.g. Valiant with only 3/2 Dragonfly VCs), but from the *next* buffer
  there is a safe minimal escape path.  The hop is then allowed into VCs up
  to ``n_t - 1 - escape_hops_of_type_t``, never below the VC currently
  holding the packet (``c_j1 >= c_j0``), and — enforced by the router, not
  the policy — only when the next buffer can hold the entire packet.

* **Request/reply traffic** (Section III-B): the per-type VC space is the
  concatenation ``[request VCs | reply VCs]``.  Requests are confined to the
  request prefix; replies may use the whole range, so the reply sub-sequence
  only needs to be dimensioned for minimal routing while non-minimal reply
  paths opportunistically borrow request VCs (the 3+2=5 and 5/3
  configurations of Tables II and IV).

* **Link-type restrictions** (Section III-C): all checks are done per link
  type, so the same code covers the Dragonfly (local/global) and generic
  diameter-2 networks (single type).
"""

from __future__ import annotations

from typing import Optional

from .arrangement import VcArrangement
from .link_types import LinkType, MessageClass, count_hops
from .vc_policy import HopContext, HopKind, VcPolicy, VcRange


class FlexVcPolicy(VcPolicy):
    """FlexVC buffer-management policy."""

    def __init__(self, arrangement: VcArrangement) -> None:
        super().__init__(arrangement)

    # -- classification ----------------------------------------------------------
    def hop_kind(self, ctx: HopContext) -> HopKind:
        if self._is_safe(ctx):
            return HopKind.SAFE
        if self._opportunistic_range(ctx) is not None:
            return HopKind.OPPORTUNISTIC
        return HopKind.FORBIDDEN

    def _is_safe(self, ctx: HopContext) -> bool:
        return self.remaining_fits(
            ctx.intended_remaining, ctx.msg_class, ctx.input_type, ctx.input_vc
        )

    # -- admissible VCs --------------------------------------------------------------
    def allowed_vcs(self, ctx: HopContext) -> Optional[VcRange]:
        if self._is_safe(ctx):
            return self._safe_range(ctx)
        return self._opportunistic_range(ctx)

    def _safe_range(self, ctx: HopContext) -> Optional[VcRange]:
        ceiling = self.class_ceiling(ctx.out_type, ctx.msg_class)
        remaining_of_type = count_hops(ctx.intended_remaining, ctx.out_type)
        hi = ceiling - remaining_of_type
        if hi < 0:  # pragma: no cover - excluded by _is_safe
            return None
        return VcRange(0, hi)

    def _opportunistic_range(self, ctx: HopContext) -> Optional[VcRange]:
        # The escape (minimal continuation from the next router) must fit in
        # its entirety within the class ceilings ...
        if not self.escape_fits(ctx.escape_from_next, ctx.msg_class):
            return None
        ceiling = self.class_ceiling(ctx.out_type, ctx.msg_class)
        escape_of_type = count_hops(ctx.escape_from_next, ctx.out_type)
        # ... and strictly above the VC chosen for this hop.
        hi = ceiling - 1 - escape_of_type
        if hi < 0:
            return None
        # Definition 2: the next VC may not be lower than the one currently
        # holding the packet (same link type only; the cross-type order is
        # guaranteed by the escape requirement).
        lo = 0
        if ctx.input_type == ctx.out_type and ctx.input_vc >= 0:
            lo = ctx.input_vc
        if lo > hi:
            return None
        return VcRange(lo, hi)


def flexvc(arrangement: VcArrangement) -> FlexVcPolicy:
    """Convenience constructor: ``flexvc(VcArrangement.single_class(4, 2))``."""
    return FlexVcPolicy(arrangement)


def make_policy(name: str, arrangement: VcArrangement) -> VcPolicy:
    """Factory used by the simulation configuration layer.

    ``name`` is ``"baseline"`` (distance-based) or ``"flexvc"``.
    """
    from .baseline import DistanceBasedPolicy

    key = name.strip().lower()
    if key in ("baseline", "distance", "distance-based", "fixed"):
        return DistanceBasedPolicy(arrangement)
    if key in ("flexvc", "flex", "flexible"):
        return FlexVcPolicy(arrangement)
    raise ValueError(f"unknown VC policy {name!r}; expected 'baseline' or 'flexvc'")
