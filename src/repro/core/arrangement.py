"""Virtual-channel arrangements.

A :class:`VcArrangement` describes how many virtual channels are implemented
per link type and per message class, using the notation of the paper:
``4/2`` means 4 local VCs and 2 global VCs; ``6/4 (4/3+2/1)`` means 4/3 VCs
for the request sub-sequence and 2/1 for the reply sub-sequence, 6/4 overall.

Within an input port the VC indices of a given link type are laid out as the
concatenation ``[request VCs | reply VCs]`` (Section III-B): requests may only
use the request prefix, replies may use the full range, which is what lets
FlexVC dimension the reply sub-sequence for minimal routing only and still
support opportunistic non-minimal reply paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from .link_types import LinkType, MessageClass


@dataclass(frozen=True)
class VcArrangement:
    """Number of virtual channels per link type and message class.

    Parameters
    ----------
    request_local, request_global:
        VCs available to request packets (and to replies, opportunistically).
    reply_local, reply_global:
        Additional VCs reserved for replies.  Zero for single-class traffic.
    """

    request_local: int
    request_global: int
    reply_local: int = 0
    reply_global: int = 0

    def __post_init__(self) -> None:
        for name in ("request_local", "request_global", "reply_local", "reply_global"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.request_local == 0:
            raise ValueError("at least one request local VC is required")

    # -- totals ------------------------------------------------------------
    @property
    def total_local(self) -> int:
        return self.request_local + self.reply_local

    @property
    def total_global(self) -> int:
        return self.request_global + self.reply_global

    def total(self, link_type: LinkType) -> int:
        """Total VCs implemented on ports of ``link_type``."""
        return self.total_local if link_type == LinkType.LOCAL else self.total_global

    def request_count(self, link_type: LinkType) -> int:
        return self.request_local if link_type == LinkType.LOCAL else self.request_global

    def reply_count(self, link_type: LinkType) -> int:
        return self.reply_local if link_type == LinkType.LOCAL else self.reply_global

    # -- index ranges -------------------------------------------------------
    def usable_range(self, link_type: LinkType, msg_class: MessageClass) -> range:
        """VC indices a packet of ``msg_class`` may occupy on ``link_type`` ports.

        Requests are confined to the request prefix ``[0, request_count)``;
        replies may use the whole concatenated sequence ``[0, total)``.
        """
        if msg_class == MessageClass.REQUEST:
            return range(self.request_count(link_type))
        return range(self.total(link_type))

    def class_ceiling(self, link_type: LinkType, msg_class: MessageClass) -> int:
        """Highest VC count reachable by ``msg_class`` on ``link_type`` ports."""
        if msg_class == MessageClass.REQUEST:
            return self.request_count(link_type)
        return self.total(link_type)

    @property
    def is_reactive(self) -> bool:
        """True when a reply sub-sequence is provisioned (request-reply traffic)."""
        return self.reply_local > 0 or self.reply_global > 0

    # -- constructors / formatting ------------------------------------------
    @classmethod
    def single_class(cls, local: int, global_: int) -> "VcArrangement":
        """Arrangement for traffic without protocol-deadlock requirements."""
        return cls(request_local=local, request_global=global_)

    @classmethod
    def request_reply(
        cls,
        request: tuple[int, int],
        reply: tuple[int, int],
    ) -> "VcArrangement":
        """Arrangement ``request + reply``, each given as ``(local, global)``."""
        return cls(
            request_local=request[0],
            request_global=request[1],
            reply_local=reply[0],
            reply_global=reply[1],
        )

    def label(self) -> str:
        """Paper-style label, e.g. ``4/2`` or ``6/4 (4/3+2/1)``."""
        if not self.is_reactive:
            return f"{self.request_local}/{self.request_global}"
        return (
            f"{self.total_local}/{self.total_global} "
            f"({self.request_local}/{self.request_global}"
            f"+{self.reply_local}/{self.reply_global})"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()
