"""Virtual-channel policy interface.

A *VC policy* decides which virtual channels a packet may enter on its next
hop.  The distance-based baseline (Section II) admits exactly one VC per hop;
FlexVC (Section III) admits a whole range, bounded above by the escape-path
requirement.  Both are expressed through the same :class:`VcPolicy` interface
so routers, allocators and experiments are agnostic of the mechanism under
study.

The router supplies a :class:`HopContext` describing the hop about to be
taken; the policy answers with the inclusive range of admissible VC indices
(or ``None`` when the hop is not permitted at all, which a correctly
configured routing algorithm never requests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .arrangement import VcArrangement
from .link_types import HopSequence, LinkType, MessageClass, count_hops


class HopKind(Enum):
    """Classification of a hop under FlexVC (Definitions 1 and 2)."""

    SAFE = "safe"
    OPPORTUNISTIC = "opportunistic"
    FORBIDDEN = "forbidden"


@dataclass(frozen=True, slots=True)
class VcRange:
    """Inclusive range ``[lo, hi]`` of admissible VC indices for a hop."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"invalid VC range [{self.lo}, {self.hi}]")

    def __contains__(self, vc: int) -> bool:
        return self.lo <= vc <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return self.hi - self.lo + 1


@dataclass(slots=True)
class HopContext:
    """Everything a VC policy needs to know about the hop being evaluated.

    Attributes
    ----------
    msg_class:
        Request or reply.
    out_type:
        Link type of the output port about to be used.
    intended_remaining:
        Hop-type sequence of the packet's intended route from this hop
        (inclusive) to the destination router.
    escape_from_next:
        Hop-type sequence of the *minimal* path from the next router to the
        destination router — the safe escape of Definition 2.
    input_type:
        Link type of the input port currently holding the packet, or ``None``
        for packets still in an injection buffer.
    input_vc:
        VC index currently occupied (``-1`` at injection).
    phase_offsets:
        ``(local, global)`` reference-slot offsets of the packet's current
        routing phase — used only by the distance-based baseline to align
        hops onto the canonical reference path (e.g. the second minimal
        segment of a Valiant path starts at offsets ``(2, 1)``).
    phase_position:
        Hops already taken within the current phase.
    phase_global_taken:
        Number of global hops already traversed within the current phase
        (truthy after the first; used to discriminate the l0/l2-style local
        slots of a phase, and to order the successive global slots of
        topologies whose minimal paths take several global hops).
    """

    msg_class: MessageClass
    out_type: LinkType
    intended_remaining: HopSequence
    escape_from_next: HopSequence
    input_type: Optional[LinkType] = None
    input_vc: int = -1
    phase_offsets: tuple[int, int] = (0, 0)
    phase_position: int = 0
    phase_global_taken: int = 0

    def __post_init__(self) -> None:
        if not self.intended_remaining:
            raise ValueError("intended_remaining must contain at least the current hop")
        if self.intended_remaining[0] != self.out_type:
            raise ValueError(
                "first hop of intended_remaining must match out_type "
                f"({self.intended_remaining[0]!r} != {self.out_type!r})"
            )


class VcPolicy(ABC):
    """Common interface of the distance-based baseline and FlexVC."""

    def __init__(self, arrangement: VcArrangement) -> None:
        self.arrangement = arrangement

    # -- main entry points ---------------------------------------------------
    @abstractmethod
    def allowed_vcs(self, ctx: HopContext) -> Optional[VcRange]:
        """Admissible output VC indices for the hop, or ``None`` if forbidden."""

    @abstractmethod
    def hop_kind(self, ctx: HopContext) -> HopKind:
        """Classify the hop as safe, opportunistic or forbidden."""

    def evaluate(self, ctx: HopContext) -> tuple[Optional[VcRange], Optional[HopKind]]:
        """Combined ``(allowed_vcs, hop_kind)`` evaluation of one hop.

        Candidate construction needs both answers; policies whose two
        methods share intermediate work (e.g. the baseline's slot
        computation) override this to compute it once.  Returns
        ``(None, None)`` for forbidden hops.
        """
        vc_range = self.allowed_vcs(ctx)
        if vc_range is None:
            return None, None
        return vc_range, self.hop_kind(ctx)

    # -- shared helpers -------------------------------------------------------
    def class_ceiling(self, link_type: LinkType, msg_class: MessageClass) -> int:
        return self.arrangement.class_ceiling(link_type, msg_class)

    def remaining_fits(
        self,
        remaining: HopSequence,
        msg_class: MessageClass,
        input_type: Optional[LinkType],
        input_vc: int,
    ) -> bool:
        """Does ``remaining`` admit a strictly-increasing per-type assignment?

        The check counts hops per link type and compares against the class
        ceiling, additionally reserving the indices at or below ``input_vc``
        for the type of the buffer currently holding the packet (Definition 1:
        the safe path must ascend *from the current channel*).
        """
        for link_type in (LinkType.LOCAL, LinkType.GLOBAL):
            needed = count_hops(remaining, link_type)
            ceiling = self.class_ceiling(link_type, msg_class)
            if input_type == link_type and input_vc >= 0:
                ceiling -= input_vc + 1
            if needed > ceiling:
                return False
        return True

    def escape_fits(self, escape: HopSequence, msg_class: MessageClass) -> bool:
        """Does the escape path fit at all within the class ceilings?"""
        for link_type in (LinkType.LOCAL, LinkType.GLOBAL):
            if count_hops(escape, link_type) > self.class_ceiling(link_type, msg_class):
                return False
        return True
