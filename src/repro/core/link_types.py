"""Link types, hop sequences and reference paths.

Low-diameter networks classify their links into disjoint sets that are
traversed in a fixed order (Section II of the paper): local/global links in a
Dragonfly, per-dimension links in a Flattened Butterfly, a single class in
generic diameter-2 networks such as Slim Flies.  Deadlock avoidance assigns
virtual-channel indices *per link type*, so most of the FlexVC machinery
reasons about *hop-type sequences*: tuples of :class:`LinkType` describing the
remaining hops of a path.

This module provides the :class:`LinkType` enumeration, helpers to count hop
types, and the canonical *reference paths* used by the paper for the
Dragonfly and for generic diameter-2 networks (Tables I-IV).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Sequence


class LinkType(IntEnum):
    """Classification of a network link / hop.

    ``LOCAL`` and ``GLOBAL`` follow the Dragonfly terminology.  Topologies
    without link-type restrictions (generic diameter-2 networks) declare all
    their links as ``LOCAL``; topologies with two traversal stages (e.g. the
    two dimensions of a 2D Flattened Butterfly under DOR) map the first stage
    to ``LOCAL`` and the second to ``GLOBAL``.
    """

    LOCAL = 0
    GLOBAL = 1


class MessageClass(IntEnum):
    """Message class for protocol-deadlock avoidance (Section III-B)."""

    REQUEST = 0
    REPLY = 1


#: Convenient aliases used when writing hop sequences by hand.
L = LinkType.LOCAL
G = LinkType.GLOBAL

HopSequence = tuple[LinkType, ...]


def count_hops(seq: Iterable[LinkType], link_type: LinkType) -> int:
    """Number of hops of ``link_type`` in ``seq``."""
    return sum(1 for h in seq if h == link_type)


def hop_counts(seq: Iterable[LinkType]) -> tuple[int, int]:
    """Return ``(local_hops, global_hops)`` of a hop sequence."""
    n_local = 0
    n_global = 0
    for h in seq:
        if h == LinkType.LOCAL:
            n_local += 1
        else:
            n_global += 1
    return n_local, n_global


def sequence_str(seq: Sequence[LinkType]) -> str:
    """Human readable rendering, e.g. ``l-g-l`` for a Dragonfly MIN path."""
    if not seq:
        return "(empty)"
    return "-".join("l" if h == LinkType.LOCAL else "g" for h in seq)


# ---------------------------------------------------------------------------
# Canonical reference paths (Section II, "Routing or link-type restrictions")
# ---------------------------------------------------------------------------

#: Dragonfly minimal reference path: l0 - g1 - l2 (2 local VCs / 1 global VC).
DRAGONFLY_MIN: HopSequence = (L, G, L)

#: Dragonfly Valiant ("Valiant-node") reference path: l0-g1-l2-l3-g4-l5 (4/2).
DRAGONFLY_VAL: HopSequence = (L, G, L, L, G, L)

#: Dragonfly Progressive Adaptive Routing reference path (5/2):
#: l0-l1-g2-l3-l4-g5-l6 (an additional local hop before the possible
#: in-transit diversion).
DRAGONFLY_PAR: HopSequence = (L, L, G, L, L, G, L)

#: Generic diameter-2 network (Slim Fly, adaptive Flattened Butterfly)
#: minimal reference path: 2 hops of a single link class.
DIAMETER2_MIN: HopSequence = (L, L)

#: Generic diameter-2 Valiant reference path: 4 hops.
DIAMETER2_VAL: HopSequence = (L, L, L, L)

#: Generic diameter-2 PAR reference path: one extra hop before diverting.
DIAMETER2_PAR: HopSequence = (L, L, L, L, L)


def reference_path_for(minimal: HopSequence, routing: str) -> HopSequence:
    """Reference path of ``routing`` on a network whose worst-case minimal
    path is ``minimal``.

    ``MIN`` is the minimal path itself; ``VAL`` concatenates two minimal
    segments (source to intermediate, intermediate to destination); ``PAR``
    prepends one additional hop of the first link type (the pre-diversion
    minimal hop).  Instantiated with the Dragonfly's l-g-l and the generic
    diameter-2 network's l-l these reproduce the paper's Section II paths.
    """
    if not minimal:
        raise ValueError("minimal reference sequence must not be empty")
    key = routing.upper()
    if key == "MIN":
        return minimal
    if key == "VAL":
        return minimal + minimal
    if key == "PAR":
        return (minimal[0],) + minimal + minimal
    raise ValueError(f"unknown routing {routing!r}; expected MIN, VAL or PAR")


def reference_path(routing: str, dragonfly: bool) -> HopSequence:
    """Return the canonical reference path for ``routing``.

    Parameters
    ----------
    routing:
        One of ``"MIN"``, ``"VAL"`` or ``"PAR"`` (case-insensitive).
    dragonfly:
        ``True`` for the Dragonfly (typed local/global links), ``False`` for a
        generic diameter-2 network with a single link class.
    """
    return reference_path_for(DRAGONFLY_MIN if dragonfly else DIAMETER2_MIN, routing)


def reference_vc_requirements_for(minimal: HopSequence, routing: str) -> tuple[int, int]:
    """VCs (local, global) distance-based deadlock avoidance needs for
    ``routing`` on a network with worst-case minimal path ``minimal``."""
    return hop_counts(reference_path_for(minimal, routing))


def reference_vc_requirements(routing: str, dragonfly: bool) -> tuple[int, int]:
    """VCs (local, global) required by distance-based deadlock avoidance.

    These are the per-virtual-network requirements quoted in Section II:
    2/1 for Dragonfly MIN, 4/2 for VAL, 5/2 for PAR; 2, 4 and 5 single-class
    VCs for generic diameter-2 networks.
    """
    return hop_counts(reference_path(routing, dragonfly))
