"""VC selection functions (Section VI-A).

Once the VC policy has produced the admissible range for a hop, a *selection
function* picks the concrete virtual channel among those with enough credits
for the whole packet (virtual cut-through).  The paper evaluates four
policies: Join-the-Shortest-Queue (default, best on average), highest-index,
lowest-index and random.

Hot-path note: the router inlines the stock JSQ/highest/lowest behaviours
directly into its credit-scan loop (``repro.router.router._selection_mode``
identity-checks ``type(selection).choose`` against the classes below, so a
subclass that overrides ``choose`` automatically falls back to the generic
call).  If you change the semantics of one of these ``choose`` methods, the
inlined copies must change with it — ``tests/test_alloc_equivalence.py``
exercises every stock selection against the non-inlined reference
implementation and will catch a divergence.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence


class VcSelection(ABC):
    """Strategy choosing one VC among the admissible candidates."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        candidates: Sequence[int],
        free_space: Sequence[int],
        rng: Optional[random.Random] = None,
    ) -> int:
        """Pick one VC.

        Parameters
        ----------
        candidates:
            Admissible VC indices that already passed the credit check
            (non-empty).
        free_space:
            ``free_space[i]`` is the number of free phits currently available
            to ``candidates[i]`` downstream — what JSQ compares.
        rng:
            Random source for stochastic policies.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class JoinShortestQueue(VcSelection):
    """Pick the candidate with the most free space (least occupied queue)."""

    name = "jsq"

    def choose(self, candidates, free_space, rng=None):
        if not candidates:
            raise ValueError("no candidate VCs")
        best = 0
        best_free = free_space[0]
        for i in range(1, len(candidates)):
            if free_space[i] > best_free:
                best = i
                best_free = free_space[i]
        return candidates[best]


class HighestVc(VcSelection):
    """Pick the highest admissible index."""

    name = "highest"

    def choose(self, candidates, free_space, rng=None):
        if not candidates:
            raise ValueError("no candidate VCs")
        return max(candidates)


class LowestVc(VcSelection):
    """Pick the lowest admissible index (worst performer in the paper)."""

    name = "lowest"

    def choose(self, candidates, free_space, rng=None):
        if not candidates:
            raise ValueError("no candidate VCs")
        return min(candidates)


class RandomVc(VcSelection):
    """Pick uniformly at random among the candidates."""

    name = "random"

    def choose(self, candidates, free_space, rng=None):
        if not candidates:
            raise ValueError("no candidate VCs")
        if rng is None:
            # Falling back to the module-level generator here would silently
            # decouple the run from config.seed; every real caller threads the
            # simulation's seeded Random through, so a missing rng is a bug.
            raise ValueError("RandomVc.choose requires the simulation's seeded rng")
        return candidates[rng.randrange(len(candidates))]


_SELECTIONS = {
    "jsq": JoinShortestQueue,
    "join-shortest-queue": JoinShortestQueue,
    "highest": HighestVc,
    "highest-vc": HighestVc,
    "lowest": LowestVc,
    "lowest-vc": LowestVc,
    "random": RandomVc,
}


def make_selection(name: str) -> VcSelection:
    """Instantiate a selection function by name (``jsq``/``highest``/``lowest``/``random``)."""
    try:
        return _SELECTIONS[name.strip().lower()]()
    except KeyError as exc:
        raise ValueError(
            f"unknown VC selection {name!r}; expected one of {sorted(set(_SELECTIONS))}"
        ) from exc
