"""Distance-based (fixed per-hop VC) baseline policy.

This is the deadlock-avoidance mechanism the paper compares against
(Guenther-style increasing VC order, Section II): every hop of the reference
path is bound to exactly one virtual channel.  Minimal traffic therefore only
ever touches the lowest-indexed VCs, Valiant traffic walks through the whole
sequence, and a hop never has more than a single admissible buffer — which is
precisely the source of head-of-line blocking that FlexVC removes.

Slot assignment
---------------
Hops are aligned onto the canonical reference path of the packet's routing
phase.  A routing phase is one minimal segment (the whole path for MIN, each
of the two minimal segments of a Valiant path, the pre-diversion hop plus the
two segments for PAR).  Each phase owns a contiguous window of reference
slots, communicated by the routing algorithm through
:attr:`HopContext.phase_offsets`:

* a *global* hop uses the phase's single global slot;
* a *local* hop uses the phase's first local slot while the phase's global
  hop has not been traversed yet, and the second one afterwards;
* in networks without link-type restrictions the slot is simply the hop's
  position within the phase.

Requests use the request sub-sequence of the arrangement; replies use the
reply sub-sequence, offset past the request VCs (separate virtual networks,
as in Cray Cascade).
"""

from __future__ import annotations

from typing import Optional

from .arrangement import VcArrangement
from .link_types import LinkType, MessageClass
from .vc_policy import HopContext, HopKind, VcPolicy, VcRange


class DistanceBasedPolicy(VcPolicy):
    """Classic distance-based deadlock avoidance with one fixed VC per hop."""

    def __init__(self, arrangement: VcArrangement) -> None:
        super().__init__(arrangement)

    # -- slot computation -----------------------------------------------------
    def slot_for(self, ctx: HopContext) -> int:
        """Reference slot (within the packet's virtual network) for this hop.

        Slots align hops onto the phase's canonical reference segment: global
        hops occupy the phase's global slots in traversal order; local hops
        use the pre-global local slots while no global hop has been taken and
        the post-global slots (which start after the single pre-global local
        slot of every supported reference shape) afterwards.  For the
        Dragonfly/Flattened-Butterfly shapes (at most one global hop, at most
        one local hop on each side of it) this reduces exactly to the
        l0/g1/l2 assignment of Section II.
        """
        local_offset, global_offset = ctx.phase_offsets
        globals_taken = int(ctx.phase_global_taken)
        if ctx.out_type == LinkType.GLOBAL:
            return global_offset + globals_taken
        # Local (or untyped) hop.
        if any(h == LinkType.GLOBAL for h in ctx.intended_remaining) or globals_taken:
            # Typed network: discriminate the before-/after-global local slots.
            locals_taken = ctx.phase_position - globals_taken
            if globals_taken:
                return local_offset + max(locals_taken, 1)
            return local_offset + locals_taken
        # Untyped network (no global hops anywhere): position within the phase.
        return local_offset + ctx.phase_position

    def _class_offset(self, link_type: LinkType, msg_class: MessageClass) -> int:
        """Index of the first VC of the packet's virtual network."""
        if msg_class == MessageClass.REPLY:
            return self.arrangement.request_count(link_type)
        return 0

    def _subsequence_size(self, link_type: LinkType, msg_class: MessageClass) -> int:
        if msg_class == MessageClass.REPLY and self.arrangement.is_reactive:
            return self.arrangement.reply_count(link_type)
        return self.arrangement.request_count(link_type)

    # -- VcPolicy interface -----------------------------------------------------
    def allowed_vcs(self, ctx: HopContext) -> Optional[VcRange]:
        slot = self.slot_for(ctx)
        size = self._subsequence_size(ctx.out_type, ctx.msg_class)
        if slot >= size:
            return None
        vc = self._class_offset(ctx.out_type, ctx.msg_class) + slot
        return VcRange(vc, vc)

    def hop_kind(self, ctx: HopContext) -> HopKind:
        # The baseline only admits hops whose entire remaining path fits the
        # per-class sub-sequence; there is no opportunistic mode.
        slot = self.slot_for(ctx)
        size = self._subsequence_size(ctx.out_type, ctx.msg_class)
        if slot >= size:
            return HopKind.FORBIDDEN
        for link_type in (LinkType.LOCAL, LinkType.GLOBAL):
            needed = sum(1 for h in ctx.intended_remaining if h == link_type)
            if needed > self._subsequence_size(link_type, ctx.msg_class):
                return HopKind.FORBIDDEN
        return HopKind.SAFE


def distance_based(arrangement: VcArrangement) -> DistanceBasedPolicy:
    """Convenience constructor mirroring :func:`repro.core.flexvc.flexvc`."""
    return DistanceBasedPolicy(arrangement)
