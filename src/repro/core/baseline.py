"""Distance-based (fixed per-hop VC) baseline policy.

This is the deadlock-avoidance mechanism the paper compares against
(Guenther-style increasing VC order, Section II): every hop of the reference
path is bound to exactly one virtual channel.  Minimal traffic therefore only
ever touches the lowest-indexed VCs, Valiant traffic walks through the whole
sequence, and a hop never has more than a single admissible buffer — which is
precisely the source of head-of-line blocking that FlexVC removes.

Slot assignment
---------------
Hops are aligned onto the canonical reference path of the packet's routing
phase.  A routing phase is one minimal segment (the whole path for MIN, each
of the two minimal segments of a Valiant path, the pre-diversion hop plus the
two segments for PAR).  Each phase owns a contiguous window of reference
slots, communicated by the routing algorithm through
:attr:`HopContext.phase_offsets`:

* a *global* hop uses the phase's single global slot;
* a *local* hop uses the phase's first local slot while the phase's global
  hop has not been traversed yet, and the second one afterwards;
* in networks without link-type restrictions the slot is simply the hop's
  position within the phase.

Requests use the request sub-sequence of the arrangement; replies use the
reply sub-sequence, offset past the request VCs (separate virtual networks,
as in Cray Cascade).
"""

from __future__ import annotations

from typing import Optional

from .arrangement import VcArrangement
from .link_types import LinkType, MessageClass
from .vc_policy import HopContext, HopKind, VcPolicy, VcRange


class DistanceBasedPolicy(VcPolicy):
    """Classic distance-based deadlock avoidance with one fixed VC per hop."""

    def __init__(self, arrangement: VcArrangement) -> None:
        super().__init__(arrangement)
        # Dense precomputed slot table (see PhaseVcTable): slot_for becomes
        # a single indexed lookup for in-bounds phase state.  The table is a
        # pure function of the (static) closed form, so it is built once per
        # process and shared by every policy instance.  Function-level
        # import: ``repro.routing`` imports ``repro.core`` at module load.
        from ..routing.route_table import PhaseVcTable

        self._slot_table = PhaseVcTable.shared(self._slot_closed_form)
        #: interned VcRange singletons per slot VC (ranges here are always
        #: single-VC; construction of the frozen dataclass is not free).
        # devtools: unbounded-ok(keyed by slot VC index: at most num_vcs entries)
        self._range_cache: dict[int, VcRange] = {}

    # -- slot computation -----------------------------------------------------
    @staticmethod
    def _slot_closed_form(out_is_global: int, local_offset: int,
                          global_offset: int, globals_taken: int,
                          position: int, has_global_remaining: int) -> int:
        """Closed-form slot assignment over plain ints (table generator)."""
        if out_is_global:
            return global_offset + globals_taken
        if has_global_remaining or globals_taken:
            locals_taken = position - globals_taken
            if globals_taken:
                return local_offset + max(locals_taken, 1)
            return local_offset + locals_taken
        return local_offset + position

    def slot_for(self, ctx: HopContext) -> int:
        """Reference slot (within the packet's virtual network) for this hop.

        Slots align hops onto the phase's canonical reference segment: global
        hops occupy the phase's global slots in traversal order; local hops
        use the pre-global local slots while no global hop has been taken and
        the post-global slots (which start after the single pre-global local
        slot of every supported reference shape) afterwards.  For the
        Dragonfly/Flattened-Butterfly shapes (at most one global hop, at most
        one local hop on each side of it) this reduces exactly to the
        l0/g1/l2 assignment of Section II.

        The arithmetic is precomputed into ``self._slot_table`` — the hop
        evaluates as one dense-table index (inlined here); out-of-bounds
        phase state (never reached by the canonical reference shapes) falls
        back to the closed form.
        """
        local_offset, global_offset = ctx.phase_offsets
        globals_taken = int(ctx.phase_global_taken)
        position = ctx.phase_position
        out_is_global = 1 if ctx.out_type == LinkType.GLOBAL else 0
        has_global = 1 if (
            LinkType.GLOBAL in ctx.intended_remaining
        ) else 0
        if (0 <= local_offset < 8 and 0 <= global_offset < 8
                and 0 <= globals_taken < 8 and 0 <= position < 16):
            index = (((out_is_global * 8 + local_offset) * 8 + global_offset)
                     * 8 + globals_taken) * 16 + position
            return self._slot_table._table[index * 2 + has_global]
        return self._slot_closed_form(
            out_is_global, local_offset, global_offset, globals_taken,
            position, has_global,
        )

    def _class_offset(self, link_type: LinkType, msg_class: MessageClass) -> int:
        """Index of the first VC of the packet's virtual network."""
        if msg_class == MessageClass.REPLY:
            return self.arrangement.request_count(link_type)
        return 0

    def _subsequence_size(self, link_type: LinkType, msg_class: MessageClass) -> int:
        if msg_class == MessageClass.REPLY and self.arrangement.is_reactive:
            return self.arrangement.reply_count(link_type)
        return self.arrangement.request_count(link_type)

    # -- VcPolicy interface -----------------------------------------------------
    def allowed_vcs(self, ctx: HopContext) -> Optional[VcRange]:
        slot = self.slot_for(ctx)
        size = self._subsequence_size(ctx.out_type, ctx.msg_class)
        if slot >= size:
            return None
        vc = self._class_offset(ctx.out_type, ctx.msg_class) + slot
        cached = self._range_cache.get(vc)
        if cached is None:
            cached = self._range_cache[vc] = VcRange(vc, vc)
        return cached

    def evaluate(self, ctx: HopContext):
        """Combined allowed_vcs + hop_kind with one slot computation."""
        slot = self.slot_for(ctx)
        size = self._subsequence_size(ctx.out_type, ctx.msg_class)
        if slot >= size:
            return None, None
        vc = self._class_offset(ctx.out_type, ctx.msg_class) + slot
        cached = self._range_cache.get(vc)
        if cached is None:
            cached = self._range_cache[vc] = VcRange(vc, vc)
        needed_local = 0
        needed_global = 0
        for hop in ctx.intended_remaining:
            if hop == LinkType.LOCAL:
                needed_local += 1
            else:
                needed_global += 1
        if (needed_local > self._subsequence_size(LinkType.LOCAL, ctx.msg_class)
                or needed_global
                > self._subsequence_size(LinkType.GLOBAL, ctx.msg_class)):
            return cached, HopKind.FORBIDDEN
        return cached, HopKind.SAFE

    def hop_kind(self, ctx: HopContext) -> HopKind:
        # The baseline only admits hops whose entire remaining path fits the
        # per-class sub-sequence; there is no opportunistic mode.
        slot = self.slot_for(ctx)
        size = self._subsequence_size(ctx.out_type, ctx.msg_class)
        if slot >= size:
            return HopKind.FORBIDDEN
        needed_local = 0
        needed_global = 0
        for hop in ctx.intended_remaining:
            if hop == LinkType.LOCAL:
                needed_local += 1
            else:
                needed_global += 1
        if needed_local > self._subsequence_size(LinkType.LOCAL, ctx.msg_class):
            return HopKind.FORBIDDEN
        if needed_global > self._subsequence_size(LinkType.GLOBAL, ctx.msg_class):
            return HopKind.FORBIDDEN
        return HopKind.SAFE


def distance_based(arrangement: VcArrangement) -> DistanceBasedPolicy:
    """Convenience constructor mirroring :func:`repro.core.flexvc.flexvc`."""
    return DistanceBasedPolicy(arrangement)
