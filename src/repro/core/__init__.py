"""Core FlexVC machinery: VC arrangements, policies, selection and feasibility."""

from .arrangement import VcArrangement
from .baseline import DistanceBasedPolicy, distance_based
from .feasibility import (
    PathSupport,
    classify,
    classify_request_reply,
    combined_support,
    table1,
    table2,
    table3,
    table4,
)
from .flexvc import FlexVcPolicy, flexvc, make_policy
from .link_types import (
    DIAMETER2_MIN,
    DIAMETER2_PAR,
    DIAMETER2_VAL,
    DRAGONFLY_MIN,
    DRAGONFLY_PAR,
    DRAGONFLY_VAL,
    HopSequence,
    LinkType,
    MessageClass,
    count_hops,
    hop_counts,
    reference_path,
    reference_vc_requirements,
    sequence_str,
)
from .mincred import PortOccupancyLedger, SplitOccupancy
from .vc_policy import HopContext, HopKind, VcPolicy, VcRange
from .vc_selection import (
    HighestVc,
    JoinShortestQueue,
    LowestVc,
    RandomVc,
    VcSelection,
    make_selection,
)

__all__ = [
    "VcArrangement",
    "DistanceBasedPolicy",
    "distance_based",
    "FlexVcPolicy",
    "flexvc",
    "make_policy",
    "PathSupport",
    "classify",
    "classify_request_reply",
    "combined_support",
    "table1",
    "table2",
    "table3",
    "table4",
    "HopContext",
    "HopKind",
    "VcPolicy",
    "VcRange",
    "LinkType",
    "MessageClass",
    "HopSequence",
    "count_hops",
    "hop_counts",
    "reference_path",
    "reference_vc_requirements",
    "sequence_str",
    "DRAGONFLY_MIN",
    "DRAGONFLY_VAL",
    "DRAGONFLY_PAR",
    "DIAMETER2_MIN",
    "DIAMETER2_VAL",
    "DIAMETER2_PAR",
    "SplitOccupancy",
    "PortOccupancyLedger",
    "VcSelection",
    "JoinShortestQueue",
    "HighestVc",
    "LowestVc",
    "RandomVc",
    "make_selection",
]
