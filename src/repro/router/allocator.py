"""Iterative input-first separable allocator (Table V).

Each allocation iteration proceeds in two stages:

1. **Input stage** — every input port proposes at most one request (the router
   picks the VC round-robin and performs routing, credit and output-buffer
   checks before proposing; see :meth:`repro.router.router.Router._propose`).
2. **Output stage** — every output resource (a network output port or an
   ejection port) grants at most one of the requests targeting it, using a
   rotating round-robin priority over input ports for fairness.

The router runs ``speedup`` iterations per cycle, which is how the paper's 2x
crossbar frequency speedup is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..packet import Packet


@dataclass(slots=True)
class Request:
    """One input port's proposal for the current allocation iteration."""

    input_index: int
    input_vc: int
    packet: Packet
    #: hashable key of the contended output resource: ``("out", port)`` for a
    #: network output, ``("eject", node, msg_class)`` for a consumption port.
    resource: Hashable
    #: chosen output VC (network outputs only).
    out_vc: int = -1
    #: opaque candidate handle the router uses to execute the grant.
    candidate: Optional[object] = None


class SeparableAllocator:
    """Output-stage arbiter with rotating round-robin priority."""

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 1:
            raise ValueError("num_inputs must be >= 1")
        self.num_inputs = num_inputs
        self._priority = 0

    def arbitrate(self, requests: List[Request]) -> List[Request]:
        """Grant at most one request per output resource.

        ``requests`` must contain at most one entry per input port (the input
        stage guarantees this).  Returns the granted subset.
        """
        if len(requests) == 1:
            # Uncontended fast path; the priority still rotates exactly as in
            # the general case so arbitration history is unchanged.
            self._priority = (self._priority + 1) % self.num_inputs
            return requests
        by_resource: Dict[Hashable, List[Request]] = {}
        for request in requests:
            by_resource.setdefault(request.resource, []).append(request)

        grants: List[Request] = []
        for resource_requests in by_resource.values():
            winner = min(
                resource_requests,
                key=lambda r: (r.input_index - self._priority) % self.num_inputs,
            )
            grants.append(winner)
        # Rotate priority so no input port starves.
        self._priority = (self._priority + 1) % self.num_inputs
        return grants
