"""Router microarchitecture: ports, buffers wiring, allocation and credits."""

from .allocator import Request, SeparableAllocator
from .credits import CreditTracker
from .ports import EjectionPort, InputPort, OutputPort
from .router import Router, make_port_buffer
from .saturation import SaturationBoard

__all__ = [
    "Router",
    "make_port_buffer",
    "InputPort",
    "OutputPort",
    "EjectionPort",
    "CreditTracker",
    "SeparableAllocator",
    "Request",
    "SaturationBoard",
]
