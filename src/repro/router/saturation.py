"""Group-level saturation board used by Piggyback routing.

Each Dragonfly router measures the occupancy of its global ports and
piggybacks it to the other routers of its group.  A global port is considered
*saturated* when its occupancy exceeds the group-wide average by the
configured factor (50% in the paper).  The board stores the posted occupancy
values; the saturation comparison is evaluated on demand so that the average
always reflects the latest measurements of every router in the group.

For per-VC sensing with request-reply traffic two values are kept per port
(one per sub-path first VC), hence the ``class_index`` dimension.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..metrics import SimulationResult

#: default relative accepted-load shortfall above which a sweep point counts
#: as saturated (see :func:`is_saturated_point`).
DEFAULT_SATURATION_MARGIN = 0.05


def is_saturated_point(
    result: "SimulationResult", margin: float = DEFAULT_SATURATION_MARGIN
) -> bool:
    """Is a whole sweep point saturated (network rejects offered load)?

    Complements the in-simulation :class:`SaturationBoard` (per-port, per
    cycle) at sweep granularity: a point is saturated when its accepted load
    falls short of the offered load by more than ``margin`` (relative), i.e.
    the network has crossed its throughput knee and additional offered load
    only deepens queues.  A suspected deadlock always counts as saturated.
    The adaptive sweep scheduler uses this to stop climbing a series' load
    ladder once consecutive points are saturated.
    """
    if result.deadlock_suspected:
        return True
    if result.offered_load <= 0.0:
        return False
    return result.accepted_load < result.offered_load * (1.0 - margin)


class SaturationBoard:
    """Shared occupancy/saturation state of all global ports of one group."""

    def __init__(
        self,
        positions: int,
        global_ports: int,
        classes: int = 2,
        saturation_factor: float = 1.5,
    ) -> None:
        if positions < 1 or global_ports < 1 or classes < 1:
            raise ValueError("positions, global_ports and classes must be >= 1")
        if saturation_factor <= 0:
            raise ValueError("saturation_factor must be > 0")
        self.positions = positions
        self.global_ports = global_ports
        self.classes = classes
        self.saturation_factor = saturation_factor
        self._ports = positions * global_ports
        self._values = [[0] * self._ports for _ in range(classes)]
        self._sums = [0] * classes

    def _index(self, position: int, global_port: int) -> int:
        if not 0 <= position < self.positions:
            raise ValueError(f"position {position} out of range")
        if not 0 <= global_port < self.global_ports:
            raise ValueError(f"global port {global_port} out of range")
        return position * self.global_ports + global_port

    def _check_class(self, class_index: int) -> None:
        if not 0 <= class_index < self.classes:
            raise ValueError(f"class index {class_index} out of range")

    # -- posting measurements ---------------------------------------------------
    def post(self, position: int, global_port: int, class_index: int, occupancy: int) -> None:
        """Publish the occupancy (in phits) of one global port."""
        self._check_class(class_index)
        if occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        index = self._index(position, global_port)
        values = self._values[class_index]
        self._sums[class_index] += occupancy - values[index]
        values[index] = occupancy

    # -- queries ---------------------------------------------------------------------
    def average(self, class_index: int) -> float:
        self._check_class(class_index)
        return self._sums[class_index] / self._ports

    def occupancy(self, position: int, global_port: int, class_index: int) -> int:
        self._check_class(class_index)
        return self._values[class_index][self._index(position, global_port)]

    def is_saturated(self, position: int, global_port: int, class_index: int) -> bool:
        """Does this port exceed the group average by the saturation factor?"""
        value = self.occupancy(position, global_port, class_index)
        if value <= 0:
            return False
        return value > self.saturation_factor * self.average(class_index)

    def saturated_count(self, class_index: int = 0) -> int:
        """Number of currently saturated ports (diagnostics/tests)."""
        return sum(
            1
            for position in range(self.positions)
            for port in range(self.global_ports)
            if self.is_saturated(position, port, class_index)
        )
