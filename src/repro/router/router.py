"""Cycle-level router model.

Combined input-output buffered router (Section IV): per-VC input buffers
(statically partitioned or DAMQ), an iterative input-first separable
allocator running ``speedup`` iterations per cycle, small per-port output
buffers decoupling the crossbar from link serialization, credit-based virtual
cut-through flow control, and separate consumption ports for requests and
replies.

One :class:`Router` instance owns the injection queues of its ``p`` attached
nodes, its network input/output ports, and (for Piggyback routing in a
Dragonfly) a reference to its group's saturation board.

Hot-path architecture (see DESIGN.md §6)
----------------------------------------
The allocator runs every cycle for every active router, so its state is kept
in flat preallocated per-router slabs (plain lists indexed by small
integers) instead of object attributes:

* ``_in_state`` — per alloc-input ``[resident, min_ready]`` pairs shared
  with the :class:`InputPort` objects (``bind_hot_state``);
* ``_in_busy`` / ``_in_rr`` — input crossbar timers and round-robin VC
  pointers, owned entirely by the router;
* ``_out_state`` — per output port ``[xbar_busy, grant_stamp, grants,
  buf_occ]`` shared with the :class:`OutputPort` objects;
* ``_credit_free`` — downstream free space per ``(port, vc)``, maintained by
  the credit mirrors (``BufferOrganization.bind_free_slab``);
* ``_eject_busy`` — ejection busy timers per ``(node, msg_class)``;
* ``_inj_free`` — injection buffer free space per ``(node, vc)``.

Forwarding plans are computed once per head packet and cached per
``(port, vc)`` on the input port (``InputPort.head_plans``), invalidated
when the head changes (pop).  Within a cycle, allocation iterations after
the first only rescan inputs that proposed a request in the previous
iteration: output resources are consumed monotonically within a cycle and
non-proposing ports' heads are unchanged, so the skip is behaviour-identical
to the full rescan (the property test in ``tests/test_alloc_equivalence.py``
checks this against :class:`repro.router.reference.ReferenceRouter`).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..buffers.base import BufferOrganization
from ..buffers.damq import DamqBuffer
from ..buffers.fifo import StaticallyPartitionedBuffer
from ..config import RouterConfig, RoutingConfig
from ..core.arrangement import VcArrangement
from ..core.link_types import LinkType, MessageClass
from ..core.vc_selection import (
    HighestVc,
    JoinShortestQueue,
    LowestVc,
    VcSelection,
)
from ..metrics import ResidentLedger
from ..packet import Packet, RouteKind
from ..routing.base import CandidateHop, EjectionRequest, RoutingAlgorithm
from ..topology.base import Topology
from .allocator import SeparableAllocator
from .credits import CreditTracker
from .ports import EjectionPort, InputPort, OutputPort
from .saturation import SaturationBoard

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import Engine

#: sentinel "no deterministic retry time" (asynchronous wake only).
NEVER = 1 << 62

#: module-level binding of the hot-path route-kind comparison.
_MINIMAL = RouteKind.MINIMAL

#: inline VC-selection modes (identity-checked against the stock selection
#: classes; anything else falls back to the generic ``choose`` call).
_SEL_GENERIC = -1
_SEL_JSQ = 0
_SEL_HIGHEST = 1
_SEL_LOWEST = 2


def _selection_mode(selection: VcSelection) -> int:
    """Inline mode of ``selection`` — only for the exact stock behaviours."""
    choose = type(selection).choose
    if choose is JoinShortestQueue.choose:
        return _SEL_JSQ
    if choose is HighestVc.choose:
        return _SEL_HIGHEST
    if choose is LowestVc.choose:
        return _SEL_LOWEST
    return _SEL_GENERIC


def make_port_buffer(
    router_config: RouterConfig,
    num_vcs: int,
    is_global: bool,
) -> BufferOrganization:
    """Build the buffer organization of one network port.

    The same constructor is used for the downstream input port and for the
    upstream credit mirror, which keeps both views structurally identical.
    """
    port_capacity = router_config.port_capacity(num_vcs, is_global)
    if router_config.buffer_organization == "damq":
        return DamqBuffer.from_fraction(
            num_vcs, port_capacity, router_config.damq_private_fraction
        )
    per_vc = router_config.vc_capacity(num_vcs, is_global)
    return StaticallyPartitionedBuffer(num_vcs, per_vc)


class Router:
    """One network router plus the injection/ejection machinery of its nodes."""

    def __init__(
        self,
        router_id: int,
        topology: Topology,
        engine: "Engine",
        router_config: RouterConfig,
        routing_config: RoutingConfig,
        arrangement: VcArrangement,
        routing: RoutingAlgorithm,
        selection: VcSelection,
        rng: random.Random,
        on_delivery: Callable[[Packet, int], None],
        on_injection: Optional[Callable[[Packet, int], None]] = None,
    ) -> None:
        self.router_id = router_id
        self.topology = topology
        self.engine = engine
        self.router_config = router_config
        self.routing_config = routing_config
        self.arrangement = arrangement
        self.routing = routing
        self.selection = selection
        self.rng = rng
        self.on_delivery = on_delivery
        self.on_injection = on_injection
        self.speedup = router_config.speedup
        self._pipeline_latency = router_config.pipeline_latency
        self.saturation_board: Optional[SaturationBoard] = None
        #: position of this router on its group's saturation board.
        self.saturation_position = -1
        #: (output_port, board_index) pairs of the global ports (lazy).
        self._saturation_ports: Optional[List] = None
        self._saturation_posts = False

        # Transit-only routers (e.g. Megafly spines) attach no nodes.
        self.nodes = list(topology.nodes_of_router(router_id))
        p = len(self.nodes)
        self.num_nodes = p

        # -- network ports ------------------------------------------------------
        self.input_ports: Dict[int, InputPort] = {}
        self.output_ports: Dict[int, OutputPort] = {}
        for info in topology.ports(router_id):
            num_vcs = arrangement.total(info.link_type)
            in_buffer = make_port_buffer(
                router_config, num_vcs, info.link_type == LinkType.GLOBAL
            )
            self.input_ports[info.port] = InputPort(
                port_id=info.port,
                link_type=info.link_type,
                num_vcs=num_vcs,
                buffer=in_buffer,
                pipeline_latency=router_config.pipeline_latency,
            )
            mirror = make_port_buffer(
                router_config, num_vcs, info.link_type == LinkType.GLOBAL
            )
            self.output_ports[info.port] = OutputPort(
                port_id=info.port,
                link_type=info.link_type,
                credit_tracker=CreditTracker(mirror),
                output_buffer_phits=router_config.output_buffer_phits,
            )

        # -- injection / ejection -------------------------------------------------
        self.injection_ports: List[InputPort] = []
        for node_idx in range(p):
            buffer = StaticallyPartitionedBuffer(
                router_config.num_injection_vcs, router_config.injection_vc_phits
            )
            self.injection_ports.append(
                InputPort(
                    port_id=-(node_idx + 1),
                    link_type=None,
                    num_vcs=router_config.num_injection_vcs,
                    buffer=buffer,
                    pipeline_latency=router_config.pipeline_latency,
                    is_injection=True,
                )
            )
        #: per-node ejection ports indexed by ``MessageClass`` value
        #: (REQUEST=0, REPLY=1) — a list, not a dict, because one exists per
        #: node and dicts carry per-instance hash-table overhead.
        self.ejection_ports: List[List[EjectionPort]] = [
            [
                EjectionPort(self.nodes[i], MessageClass.REQUEST),
                EjectionPort(self.nodes[i], MessageClass.REPLY),
            ]
            for i in range(p)
        ]
        #: per-node injection backlogs — plain lists (see InputPort.queues
        #: for the deque-vs-list memory rationale; one exists per node).
        self.source_queues: List[List[Packet]] = [[] for _ in range(p)]
        self.injection_busy_until: List[int] = [0] * p
        #: earliest cycle any source-queue head could enter an injection
        #: buffer (0 = scan needed; reset by enqueue_source).  Purely a
        #: skip-the-scan gate: a gated cycle is one where the scan would
        #: provably be a no-op.
        self._inject_gate = 0

        # -- allocator bookkeeping ----------------------------------------------------
        # Allocation inputs: injection ports first, then network ports in
        # ascending port order.
        self._alloc_inputs: List[InputPort] = list(self.injection_ports) + [
            self.input_ports[port] for port in sorted(self.input_ports)
        ]
        self.allocator = SeparableAllocator(len(self._alloc_inputs))
        self.resident_packets = 0

        # -- hot-state slabs (see module docstring) -------------------------------
        n_in = len(self._alloc_inputs)
        self._n_in = n_in
        self._in_state: List[int] = [0, 0, -1] * n_in
        for index, port in enumerate(self._alloc_inputs):
            port.bind_hot_state(self._in_state, 3 * index)
        self._in_busy: List[int] = [0] * n_in
        self._in_rr: List[int] = [0] * n_in
        #: per alloc-input credit-dependency masks of the recorded per-port
        #: blocked verdicts, and their union (quick pre-filter for returns).
        self._pv_masks: List[int] = [0] * n_in
        self._pv_any_mask = 0

        out_ids = sorted(self.output_ports)
        lookup = (max(out_ids) + 1) if out_ids else 0
        self._out_state: List[int] = [0] * (4 * len(out_ids))
        self._out_base: List[int] = [-1] * lookup
        self._cfree_base: List[int] = [-1] * lookup
        self._out_cap: List[int] = [0] * lookup
        self._out_pending: List[Optional[list]] = [None] * lookup
        self._out_by_port: List[Optional[OutputPort]] = [None] * lookup
        self._input_by_port: List[Optional[InputPort]] = [None] * lookup
        self._credit_free: List[int] = [0] * sum(
            self.output_ports[port].credits.num_vcs for port in out_ids
        )
        cfree_base = 0
        for j, port in enumerate(out_ids):
            op = self.output_ports[port]
            op.bind_hot_state(self._out_state, 4 * j)
            self._out_base[port] = 4 * j
            self._cfree_base[port] = cfree_base
            op.credits.mirror.bind_free_slab(self._credit_free, cfree_base)
            cfree_base += op.credits.num_vcs
            self._out_cap[port] = op.output_buffer_capacity
            self._out_pending[port] = op._pending_releases
            self._out_by_port[port] = op
            self._input_by_port[port] = self.input_ports[port]
            op._debit = self._make_debit(op)

        #: per-output-port bitmask over the ``_credit_free`` slab indices,
        #: used to record which credit returns can unblock a sleeping router.
        #: DAMQ mirrors share one pool across the port's VCs, so any credit
        #: of the port can raise any VC's free space and the whole port span
        #: is recorded; statically partitioned mirrors record the exact
        #: candidate VC range instead (``None`` here selects that path).
        self._port_credit_masks: List[int] = [0] * lookup
        self._port_is_damq: List[bool] = [False] * lookup
        for port in out_ids:
            op = self.output_ports[port]
            span = op.credits.num_vcs
            self._port_credit_masks[port] = (
                ((1 << span) - 1) << self._cfree_base[port]
            )
            self._port_is_damq[port] = isinstance(op.credits.mirror, DamqBuffer)

        self._eject_flat: List[Optional[EjectionPort]] = [None] * (2 * p)
        self._eject_busy: List[int] = [0] * (2 * p)
        for i in range(p):
            for msg_class in (MessageClass.REQUEST, MessageClass.REPLY):
                slot = 2 * i + msg_class
                ejection = self.ejection_ports[i][msg_class]
                ejection.bind_hot_state(self._eject_busy, slot)
                self._eject_flat[slot] = ejection

        n_inj_vcs = router_config.num_injection_vcs
        self._n_inj_vcs = n_inj_vcs
        self._inj_free: List[int] = [0] * (p * n_inj_vcs)
        for i, port in enumerate(self.injection_ports):
            port.buffer.bind_free_slab(self._inj_free, i * n_inj_vcs)

        self._sel_mode = _selection_mode(selection)
        #: all slab references the allocator needs, bundled so ``_allocate``
        #: binds them with one attribute load + tuple unpack per call.
        self._hot_refs = (
            self._alloc_inputs, self._in_state, self._in_busy, self._in_rr,
            self._out_state, self._credit_free, self._eject_busy,
            self._pv_masks,
        )

        # -- activity tracking ---------------------------------------------------------
        #: index assigned by Engine.register_router; -1 until registered.
        self.engine_index = -1
        #: bound active-set insert, installed by Engine.register_router.
        self.engine_activate: Optional[Callable[[int], None]] = None
        #: O(1) work counters so pump() never scans queues when idle.
        self._source_backlog = 0
        self._injection_resident = 0
        #: cycle of the outstanding pipeline-wake event (-1 when none).
        self._next_wake = -1
        #: result of the last request-less allocation pass: the earliest cycle
        #: a retry could succeed (NEVER = only an async event can unblock),
        #: or -1 when allocation is not known to be blocked.  Reset by wake().
        self._alloc_sleep_until = -1
        #: bitmask over ``_credit_free`` indices the blocked verdict depends
        #: on: a credit return whose slab bit is set clears the verdict; all
        #: other credit returns leave the router asleep (they cannot change
        #: the outcome of the recorded pass).
        self._blocked_credit_mask = 0
        #: shared network-wide resident-packet counter (see Simulation).
        self.resident_ledger: Optional[ResidentLedger] = None

        # -- statistics ---------------------------------------------------------------
        self.packets_injected = 0
        self.packets_delivered = 0
        self.misrouted_packets = 0

        # -- probe dispatch (None = unsubscribed, zero-cost) ---------------------------
        #: ``hook(packet, now)`` fired on a packet's first non-minimal hop.
        self.on_misroute: Optional[Callable[[Packet, int], None]] = None
        #: ``hook(router_id, now, retry_cycle)`` fired when a stepped router
        #: with resident packets produces no allocation request.
        self.on_stall: Optional[Callable[[int, int, int], None]] = None

        #: specialized grant/allocation entry points (closures over the
        #: slabs); the full-rescan ReferenceRouter replaces ``_allocate``
        #: with its own method but shares the grant executor.
        self._execute_grant: Callable[[tuple, int], None] = (
            self._make_grant_executor()
        )
        self._allocate: Callable[[int], None] = self._make_allocator()
        self.pump: Callable[[int], bool] = self._make_pump()

    # ------------------------------------------------------------------
    # External interface (wiring and traffic)
    # ------------------------------------------------------------------
    def attach_saturation_board(self, board: SaturationBoard, position: int = 0) -> None:
        self.saturation_board = board
        self.saturation_position = position
        self._saturation_ports = None
        #: whether this router posts measurements (owns global ports) or only
        #: reads the board at injection time (e.g. Megafly leaves).
        self._saturation_posts = any(
            op.link_type == LinkType.GLOBAL for op in self.output_ports.values()
        )
        self.wake()

    def wake(self) -> None:
        """Re-register with the engine's active set (idempotent).

        Every wake signals a state change (arrival, credit return, timer
        expiry), so any recorded allocation blockage is stale and dropped.
        """
        self._alloc_sleep_until = -1
        if self.engine_activate is not None:
            self.engine_activate(self.engine_index)

    def receive_network(self, packet: Packet, port: int, vc: int, now: int) -> None:
        """Deliver a packet arriving from a link into input ``port`` / VC ``vc``.

        An arrival deliberately does *not* clear a recorded allocation
        blockage: the new head cannot be granted before it clears the router
        pipeline, so the verdict's expiry is merely clamped down to that
        cycle (below) and a timed wake re-evaluates exactly then.
        """
        self._input_by_port[port].receive(packet, vc, now)
        self.resident_packets += 1
        if self.resident_ledger is not None:
            self.resident_ledger.count += 1
        # A recorded router-level verdict cannot cover this arrival; pull its
        # expiry forward to the cycle the new head clears the pipeline so the
        # allocator re-evaluates exactly then.
        ready = now + self._pipeline_latency
        blocked = self._alloc_sleep_until
        if 0 <= blocked and ready < blocked:
            self._alloc_sleep_until = ready
        if self.engine_activate is not None:
            if self.saturation_board is None and ready > now:
                self.engine.schedule_wake(ready, self.engine_index)
            else:
                self.engine_activate(self.engine_index)

    def _make_debit(self, op: OutputPort) -> Callable[[int, int, bool], None]:
        """Fused grant-time credit debit for ``op`` (mirror + ledger + slab).

        Statically partitioned mirrors touch exactly one VC and one
        free-slab entry, so the whole debit inlines into one closure; DAMQ
        mirrors keep the generic ``CreditTracker.debit`` path.
        """
        tracker = op.credits
        mirror = tracker.mirror
        if type(mirror) is not StaticallyPartitionedBuffer:
            return tracker.debit
        occupancy = mirror._occupancy
        capacity = mirror._capacity
        credit_free = self._credit_free
        base = self._cfree_base[op.port_id]
        ledger_vcs = tracker.ledger.per_vc

        def debit(vc: int, phits: int, minimal: bool) -> None:
            occ = occupancy[vc] + phits
            if occ > capacity[vc]:
                mirror.allocate(vc, phits)  # raises the canonical overflow
            occupancy[vc] = occ
            credit_free[base + vc] = capacity[vc] - occ
            split = ledger_vcs[vc]
            if minimal:
                split.minimal += phits
            else:
                split.nonminimal += phits

        return debit

    def resolve_candidate(self, candidate: CandidateHop) -> tuple:
        """Burn this router's slab indices into a memoized candidate.

        Returns the allocator's evaluation record ``(out_port, vc_lo, vc_hi,
        out_state_base, credit_free_base, out_buffer_capacity,
        pending_releases, credit_fail_mask)``; safe because candidates are
        memoized per router.
        """
        out_port = candidate.out_port
        lo = candidate.vc_lo
        hi = candidate.vc_hi
        cb = self._cfree_base[out_port]
        if self._port_is_damq[out_port]:
            fail_mask = self._port_credit_masks[out_port]
        else:
            fail_mask = ((1 << (hi - lo + 1)) - 1) << (cb + lo)
        return (
            out_port, lo, hi, self._out_base[out_port], cb,
            self._out_cap[out_port], self._out_pending[out_port], fail_mask,
        )

    def make_network_receiver(self, port: int) -> Callable[[Packet, int, int], None]:
        """Flattened per-link delivery callback (``receive_network`` body with
        the input port pre-bound — one Python frame per arrival instead of
        two)."""
        input_port = self._input_by_port[port]
        pipeline_latency = self._pipeline_latency
        schedule_wake = self.engine.schedule_wake
        buffer = input_port.buffer
        if (type(buffer) is StaticallyPartitionedBuffer
                and pipeline_latency > 0):
            # Fused fast path: the entire InputPort.receive body inlines
            # here (buffer accounting, queue append, hot-slab update),
            # saving two frames per arrival.  Occupancy-probe dispatch is
            # read through the port so late probe wiring still works.
            occupancy = buffer._occupancy
            capacity = buffer._capacity
            queues = input_port.queues
            hot = input_port._hot
            hb = input_port._hb

            def deliver(packet: Packet, vc: int, now: int) -> None:
                size = packet.size_phits
                occ = occupancy[vc] + size
                if occ > capacity[vc]:
                    buffer.allocate(vc, size)  # raises the canonical overflow
                occupancy[vc] = occ
                packet.current_vc = vc
                ready = now + pipeline_latency
                queue = queues[vc]
                if queue is None:
                    queue = queues[vc] = []
                queue.append((packet, ready))
                resident = hot[hb] + 1
                hot[hb] = resident
                if resident == 1 or ready < hot[hb + 1]:
                    hot[hb + 1] = ready
                hot[hb + 2] = -1
                hook = input_port.on_occupancy
                if hook is not None:
                    hook(vc, size, occ, now)
                self.resident_packets += 1
                ledger = self.resident_ledger
                if ledger is not None:
                    ledger.count += 1
                blocked = self._alloc_sleep_until
                if 0 <= blocked and ready < blocked:
                    self._alloc_sleep_until = ready
                if self.saturation_board is None:
                    # Nothing this arrival enables can happen before the
                    # head clears the router pipeline, so wake exactly then
                    # instead of pumping a guaranteed no-op cycle now.
                    schedule_wake(ready, self.engine_index)
                else:
                    # Piggyback board readers are stepped every cycle while
                    # packets are pending (time-varying congestion state).
                    self.engine_activate(self.engine_index)

            return deliver

        receive = input_port.receive

        def deliver(packet: Packet, vc: int, now: int) -> None:
            receive(packet, vc, now)
            self.resident_packets += 1
            ledger = self.resident_ledger
            if ledger is not None:
                ledger.count += 1
            ready = now + pipeline_latency
            blocked = self._alloc_sleep_until
            if 0 <= blocked and ready < blocked:
                self._alloc_sleep_until = ready
            if self.saturation_board is None and ready > now:
                # Nothing this arrival enables can happen before the head
                # clears the router pipeline, so wake exactly then instead
                # of pumping a guaranteed no-op cycle now.  (An active
                # router keeps stepping regardless; the extra wake is a
                # cheap set-insert.)
                schedule_wake(ready, self.engine_index)
            else:
                # Piggyback board readers must be stepped every cycle while
                # packets are pending (time-varying congestion state);
                # zero-latency pipelines make the head routable this cycle.
                self.engine_activate(self.engine_index)

        return deliver

    def make_credit_sink(self, port: int) -> Callable[[int, int, bool], None]:
        """Credit-return callback for the reverse channel of output ``port``.

        Replaces the generic ``wake`` activity hook: a returning credit only
        re-activates the router when the recorded allocation blockage
        actually depends on it (its bit in ``_blocked_credit_mask``).  A
        router sleeping *without* a verdict has no pipeline-ready head, and a
        credit cannot create one, so nothing needs to happen then.
        """
        tracker = self.output_ports[port].credits
        mirror = tracker.mirror
        base = self._cfree_base[port]
        in_state = self._in_state
        pv_masks = self._pv_masks
        n_in = self._n_in
        if type(mirror) is StaticallyPartitionedBuffer:
            # Fused fast path: statically partitioned mirrors release into
            # one VC and refresh one free-slab entry, so the whole return
            # (mirror + ledger + slab + wake filtering) inlines here.
            occupancy = mirror._occupancy
            capacity = mirror._capacity
            credit_free = self._credit_free
            ledger_vcs = tracker.ledger.per_vc

            def credit_return(vc: int, phits: int, minimal: bool) -> None:
                occ = occupancy[vc] - phits
                if occ < 0:
                    mirror.release(vc, phits)  # raises the canonical underflow
                occupancy[vc] = occ
                credit_free[base + vc] = capacity[vc] - occ
                split = ledger_vcs[vc]
                if minimal:
                    if phits > split.minimal:
                        raise ValueError(
                            f"removing {phits} minimal phits but only "
                            f"{split.minimal} accounted"
                        )
                    split.minimal -= phits
                else:
                    if phits > split.nonminimal:
                        raise ValueError(
                            f"removing {phits} non-minimal phits but only "
                            f"{split.nonminimal} accounted"
                        )
                    split.nonminimal -= phits
                bit = 1 << (base + vc)
                if self._pv_any_mask & bit:
                    # Clear the per-port blocked verdicts that depended on
                    # this credit so the next pass re-evaluates them.
                    for index in range(n_in):
                        if pv_masks[index] & bit:
                            in_state[3 * index + 2] = -1
                            pv_masks[index] = 0
                if (self._alloc_sleep_until >= 0
                        and (self._blocked_credit_mask >> (base + vc)) & 1):
                    self._alloc_sleep_until = -1
                    self.engine_activate(self.engine_index)

            return credit_return

        credit = tracker.credit

        def credit_return(vc: int, phits: int, minimal: bool) -> None:
            credit(vc, phits, minimal)
            bit = 1 << (base + vc)
            if self._pv_any_mask & bit:
                # Clear the per-port blocked verdicts that depended on this
                # credit so the next allocation pass re-evaluates them.
                for index in range(n_in):
                    if pv_masks[index] & bit:
                        in_state[3 * index + 2] = -1
                        pv_masks[index] = 0
            if (self._alloc_sleep_until >= 0
                    and (self._blocked_credit_mask >> (base + vc)) & 1):
                self._alloc_sleep_until = -1
                self.engine_activate(self.engine_index)

        return credit_return

    def enqueue_source(self, packet: Packet, now: int) -> None:
        """Queue a newly generated packet at its source node."""
        local = packet.src_node - self.nodes[0]
        if not 0 <= local < self.num_nodes:
            raise ValueError(
                f"packet source node {packet.src_node} is not attached to router {self.router_id}"
            )
        packet.created_at = packet.created_at if packet.created_at else now
        self.source_queues[local].append(packet)
        self._source_backlog += 1
        self._inject_gate = 0
        self.wake()

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def _make_pump(self) -> Callable[[int], bool]:
        """Build the merged has_work + step entry point as a closure.

        Returns False (and schedules any needed timed wake) when stepping
        would be a no-op, exactly like ``has_work``; otherwise performs the
        cycle's work and returns True.  The engine calls this once per
        active router per cycle, so the state it reads is prebound.
        """
        router = self
        in_state = self._in_state
        n_in = self._n_in
        source_queues = self.source_queues
        injection_busy_until = self.injection_busy_until
        num_nodes = self.num_nodes
        inject_from_sources = self._inject_from_sources
        schedule_wake = self.engine.schedule_wake

        def pump(now: int) -> bool:
            if router.saturation_board is not None:
                if (router._saturation_posts or router.resident_packets
                        or router._injection_resident or router._source_backlog):
                    router.step(now)
                    return True
                return False
            blocked = router._alloc_sleep_until
            if blocked >= 0 and blocked <= now:
                router._alloc_sleep_until = blocked = -1
            earliest = -1
            work = False
            if router.resident_packets or router._injection_resident:
                if blocked < 0:
                    for base in range(0, 3 * n_in, 3):
                        if in_state[base]:
                            ready = in_state[base + 1]
                            if ready <= now:
                                work = True
                                break
                            if earliest < 0 or ready < earliest:
                                earliest = ready
                elif blocked < NEVER:
                    earliest = blocked
            if not work and router._source_backlog:
                for local in range(num_nodes):
                    if source_queues[local]:
                        busy = injection_busy_until[local]
                        if busy <= now:
                            work = True
                            break
                        if earliest < 0 or busy < earliest:
                            earliest = busy
            if not work:
                if earliest >= 0 and router._next_wake != earliest:
                    router._next_wake = earliest
                    schedule_wake(earliest, router.engine_index)
                return False
            # Inlined step() body (saturation-board routers take the step()
            # call above; plain routers never reach _update_saturation).
            if router._source_backlog and now >= router._inject_gate:
                inject_from_sources(now)
            if router.resident_packets or router._injection_resident:
                blocked = router._alloc_sleep_until
                if blocked < 0 or blocked <= now:
                    router._allocate(now)
            return True

        return pump

    def step(self, now: int) -> None:
        if self._source_backlog and now >= self._inject_gate:
            self._inject_from_sources(now)
        if self.resident_packets or self._injection_resident:
            blocked = self._alloc_sleep_until
            if blocked < 0 or blocked <= now:
                self._allocate(now)
        if self.saturation_board is not None and self._saturation_posts:
            self._update_saturation()

    # -- injection --------------------------------------------------------------------
    def _inject_from_sources(self, now: int) -> None:
        inj_free = self._inj_free
        n_vcs = self._n_inj_vcs
        # Probe hook bound once per step, outside the per-node loop.
        on_injection = self.on_injection
        #: earliest cycle the next scan could make progress (serialization
        #: timers; a full injection buffer keeps polling every cycle since
        #: its space frees through asynchronous allocator grants).
        gate = NEVER
        for local in range(self.num_nodes):
            queue = self.source_queues[local]
            if not queue:
                continue
            busy = self.injection_busy_until[local]
            if busy > now:
                if busy < gate:
                    gate = busy
                continue
            packet = queue[0]
            size = packet.size_phits
            base = local * n_vcs
            best_vc = -1
            best_free = -1
            for vc in range(n_vcs):
                free = inj_free[base + vc]
                if free >= size and free > best_free:
                    best_vc, best_free = vc, free
            if best_vc < 0:
                if now + 1 < gate:
                    gate = now + 1
                continue
            queue.pop(0)
            self._source_backlog -= 1
            # The packet finishes serializing from the node after size cycles.
            self.injection_ports[local].receive(packet, best_vc, now + size)
            # Same verdict clamp as receive_network: the injected head
            # becomes routable after pipeline latency on top of its
            # serialization, which a recorded verdict cannot know about.
            ready = now + size + self._pipeline_latency
            blocked = self._alloc_sleep_until
            if 0 <= blocked and ready < blocked:
                self._alloc_sleep_until = ready
            self._injection_resident += 1
            self.injection_busy_until[local] = now + size
            if queue and now + size < gate:
                gate = now + size
            packet.injected_at = now
            self.packets_injected += 1
            if on_injection is not None:
                on_injection(packet, now)
        self._inject_gate = gate

    # -- allocation ---------------------------------------------------------------------
    def _make_allocator(self) -> Callable[[int], None]:
        """Build this router's specialized allocation closure.

        One cycle of iterative input-first separable allocation.  The whole
        input stage (round-robin VC pick, head-plan lookup, ejection/
        crossbar/grant-cap/output-buffer/credit admission) and the output
        stage (one grant per resource under rotating round-robin priority)
        are inlined over the flat hot-state slabs, which are captured as
        closure variables so each call binds nothing; requests are plain
        tuples ``(input_index, input_vc, packet, resource_key, out_vc,
        candidate)``.  Check-for-check identical to the layered reference
        implementation in :mod:`repro.router.reference`.
        """
        router = self
        (alloc_inputs, in_state, in_busy, in_rr, out_state, credit_free,
         eject_busy, pv_masks) = self._hot_refs
        speedup = self.speedup
        sel_mode = self._sel_mode
        allocator = self.allocator
        num_inputs = allocator.num_inputs
        routing_plan = self.routing.plan
        execute_grant = self._execute_grant
        first_node = self.nodes[0] if self.nodes else 0
        router_id = self.router_id
        full_scan = range(self._n_in)
        #: per alloc-input constants, one list index + unpack per evaluation.
        port_data = [
            (port.queues, port.head_plans, port.rr_orders, port.num_vcs,
             None if port.is_injection else port.link_type,
             port.is_injection)
            for port in alloc_inputs
        ]

        def allocate(now: int) -> None:
            router._alloc_sleep_until = -1
            reject_until = NEVER
            credit_mask = 0
            # Alloc-input indices to evaluate; iterations after the first
            # only revisit inputs that proposed (output resources are
            # consumed monotonically within the cycle, so a port with
            # nothing requestable stays that way until the next cycle).
            scan = full_scan
            for iteration in range(speedup):
                requests: list = []
                proposed: list = []
                retry = NEVER
                for index in scan:
                    base = 3 * index
                    # Skip empty ports and ports whose every head packet is
                    # still in the router pipeline — the scan below could not
                    # find a packet, so the skip is behaviour-identical, O(1).
                    if in_state[base] == 0:
                        continue
                    busy = in_busy[index]
                    if busy > now:
                        if busy < retry:
                            retry = busy
                        continue
                    min_ready = in_state[base + 1]
                    if min_ready > now:
                        # No routable head yet; the fold makes a recorded
                        # router verdict cover this port's pipeline exit.
                        if min_ready < reject_until:
                            reject_until = min_ready
                        continue
                    blocked_until = in_state[base + 2]
                    if blocked_until >= 0:
                        if now < blocked_until:
                            # Recorded per-port verdict still holds: nothing
                            # on this port is requestable before
                            # ``blocked_until`` or a credit return matching
                            # its mask (head changes cleared the verdict in
                            # receive/pop).  Fold its blockers into the
                            # router-level bookkeeping and skip the scan.
                            credit_mask |= pv_masks[index]
                            if blocked_until < reject_until:
                                reject_until = blocked_until
                            continue
                        in_state[base + 2] = -1
                    # Input stage: one requestable head packet (round-robin).
                    (queues, head_plans, rr_orders, num_vcs, input_type,
                     is_injection) = port_data[index]
                    request = None
                    p_retry = NEVER
                    p_mask = 0
                    for vc in rr_orders[in_rr[index]]:
                        queue = queues[vc]
                        if not queue:
                            continue
                        packet, ready = queue[0]
                        if ready > now:
                            # Not routable yet: part of the port verdict so
                            # the head is re-evaluated the cycle it clears.
                            if ready < p_retry:
                                p_retry = ready
                            continue
                        plan = head_plans[vc]
                        if plan is None:
                            # Inlined _plan_for: compute and cache the head's
                            # forwarding plan on the port.
                            if is_injection:
                                plan = routing_plan(router, packet, None, -1)
                            else:
                                plan = routing_plan(router, packet, input_type, vc)
                            head_plans[vc] = plan
                        if type(plan) is EjectionRequest:
                            slot = plan.slot
                            if slot < 0:
                                # Router-unique: only the destination router
                                # ever plans an ejection for this pair.
                                slot = 2 * (plan.node - first_node) + plan.msg_class
                                plan.slot = slot
                            ejection_busy = eject_busy[slot]
                            if ejection_busy > now:
                                if ejection_busy < p_retry:
                                    p_retry = ejection_busy
                                continue
                            # Ejection resource keys are the (small) negative
                            # ints, disjoint from the output-port keys.
                            request = (index, vc, packet, -1 - slot, -1, plan)
                        else:
                            size = packet.size_phits
                            for candidate in plan:
                                (out_port, lo, hi, ob, cb, cap, pending,
                                 fail_mask) = candidate.hot
                                out_busy = out_state[ob]
                                if out_busy > now:
                                    if out_busy < p_retry:
                                        p_retry = out_busy
                                    continue
                                if out_state[ob + 1] == now and out_state[ob + 2] >= speedup:
                                    # Grant cap resets next cycle.
                                    if now + 1 < p_retry:
                                        p_retry = now + 1
                                    continue
                                occupancy = out_state[ob + 3]
                                if pending and pending[0][0] <= now:
                                    # Output-buffer reclamations are lazy,
                                    # not wake events.
                                    while pending and pending[0][0] <= now:
                                        occupancy -= pending.pop(0)[1]
                                    out_state[ob + 3] = occupancy
                                if occupancy + size > cap:
                                    # Space can only reappear when the oldest
                                    # pending reclamation matures.
                                    release = pending[0][0] if pending else now + 1
                                    if release < p_retry:
                                        p_retry = release
                                    continue
                                out_vc = -1
                                if sel_mode == _SEL_JSQ:
                                    best_free = -1
                                    for ovc in range(lo, hi + 1):
                                        free = credit_free[cb + ovc]
                                        if free >= size and free > best_free:
                                            out_vc, best_free = ovc, free
                                elif sel_mode == _SEL_LOWEST:
                                    for ovc in range(lo, hi + 1):
                                        if credit_free[cb + ovc] >= size:
                                            out_vc = ovc
                                            break
                                elif sel_mode == _SEL_HIGHEST:
                                    for ovc in range(hi, lo - 1, -1):
                                        if credit_free[cb + ovc] >= size:
                                            out_vc = ovc
                                            break
                                else:
                                    candidates: List[int] = []
                                    free_list: List[int] = []
                                    for ovc in range(lo, hi + 1):
                                        free = credit_free[cb + ovc]
                                        if free >= size:
                                            candidates.append(ovc)
                                            free_list.append(free)
                                    if candidates:
                                        out_vc = router.selection.choose(
                                            candidates, free_list, router.rng
                                        )
                                if out_vc < 0:
                                    # Blocked purely on downstream credits:
                                    # record which returns could change it.
                                    p_mask |= fail_mask
                                    continue
                                request = (index, vc, packet, out_port, out_vc, candidate)
                                break
                        if request is not None:
                            next_vc = vc + 1
                            in_rr[index] = 0 if next_vc >= num_vcs else next_vc
                            requests.append(request)
                            proposed.append(index)
                            break
                    if request is None:
                        # Record the per-port verdict: skip this port until
                        # the earliest deterministic blocker expires or a
                        # matching credit returns (receive/pop clear it on
                        # head changes).
                        in_state[base + 2] = p_retry
                        pv_masks[index] = p_mask
                        credit_mask |= p_mask
                        if p_retry < reject_until:
                            reject_until = p_retry
                if not requests:
                    if iteration == 0:
                        if reject_until < retry:
                            retry = reject_until
                        if router.on_stall is not None:
                            router.on_stall(router_id, now, retry)
                        if router.saturation_board is None:
                            # Nothing was requestable: record the earliest
                            # cycle a deterministic blocker (crossbar,
                            # ejection port, grant cap) expires so pump()
                            # can sleep until then; async blockers (credits)
                            # re-activate the router via the credit sinks.
                            # Piggyback routers are exempt: they are stepped
                            # every cycle regardless (saturation sensing),
                            # and their injection decisions read time-varying
                            # congestion state, so skipping allocation passes
                            # would change results.
                            router._alloc_sleep_until = retry
                            router._blocked_credit_mask = credit_mask
                    break
                # Output stage (inlined separable allocator, identical to
                # SeparableAllocator.arbitrate): at most one grant per
                # resource, rotating round-robin priority over input ports.
                # A network grant leaves the input crossbar busy for at
                # least one cycle, so only arbitration *losers* and inputs
                # granted an ejection (which does not use the crossbar) can
                # re-propose; when neither exists the next scan provably
                # yields nothing and is skipped.
                if len(requests) == 1:
                    allocator._priority = (allocator._priority + 1) % num_inputs
                    request = requests[0]
                    execute_grant(request, now)
                    if request[3] >= 0:
                        break  # network grant: input crossbar now busy
                else:
                    by_resource: dict = {}
                    for request in requests:
                        key = request[3]
                        bucket = by_resource.get(key)
                        if bucket is None:
                            by_resource[key] = [request]
                        else:
                            bucket.append(request)
                    priority = allocator._priority
                    any_eject = False
                    for bucket in by_resource.values():
                        winner = bucket[0]
                        if len(bucket) > 1:
                            best_rank = (winner[0] - priority) % num_inputs
                            for contender in bucket:
                                rank = (contender[0] - priority) % num_inputs
                                if rank < best_rank:
                                    best_rank = rank
                                    winner = contender
                        if winner[3] < 0:
                            any_eject = True
                        execute_grant(winner, now)
                    allocator._priority = (priority + 1) % num_inputs
                    if not any_eject and len(by_resource) == len(requests):
                        break  # no losers: nothing can re-propose this cycle
                if not router.resident_packets and not router._injection_resident:
                    # The grants drained the router: the next iteration's
                    # scan could not find a head, so skipping it is
                    # behaviour-identical.
                    break
                scan = proposed
            # The union of the live per-port credit masks (iteration 0 visits
            # every port, so folded skips plus fresh records cover them all).
            router._pv_any_mask = credit_mask

        return allocate

    def _plan_for(self, port: InputPort, vc: int, packet: Packet):
        """Compute (and cache on the port) the head packet's forwarding plan."""
        input_type = None if port.is_injection else port.link_type
        input_vc = -1 if port.is_injection else vc
        plan = self.routing.plan(self, packet, input_type, input_vc)
        port.head_plans[vc] = plan
        return plan

    def _make_grant_executor(self) -> Callable[[tuple, int], None]:
        """Build the grant-execution closure (pop, debit, transmit).

        All router-local references are captured once; the resident ledger
        and probe hooks are read through ``router`` because they are wired
        after construction.
        """
        router = self
        alloc_inputs = self._alloc_inputs
        out_by_port = self._out_by_port
        in_busy = self._in_busy
        out_state = self._out_state
        speedup = self.speedup
        schedule_call = self.engine.schedule_call
        on_hop_taken = self.routing.on_hop_taken
        router_id = self.router_id

        def execute_grant(grant: tuple, now: int) -> None:
            index, input_vc, packet, key, out_vc, candidate = grant
            port = alloc_inputs[index]
            if key < 0:
                router._eject(port, input_vc, packet, candidate, now)
                return
            ob = candidate.hot[3]
            op = out_by_port[key]
            # Integer ceiling of size/speedup (no math.ceil/float division).
            size = packet.size_phits
            xbar_time = -(-size // speedup)
            if xbar_time < 1:
                xbar_time = 1
            # -- inlined InputPort.pop (returns credits upstream for network
            # ports; the credit is tagged with the class the space was
            # debited under, i.e. *before* on_hop_taken may retag it).
            port.queues[input_vc].pop(0)
            port.head_plans[input_vc] = None
            port._buf_release(input_vc, size)
            hot = port._hot
            hb = port._hb
            resident = hot[hb] - 1
            hot[hb] = resident
            hot[hb + 2] = -1
            if resident:
                min_ready = -1
                for queue in port.queues:
                    if queue:
                        ready = queue[0][1]
                        if min_ready < 0 or ready < min_ready:
                            min_ready = ready
                hot[hb + 1] = min_ready
            channel = port.credit_channel
            if channel is not None:
                schedule_call(
                    now + channel.latency, channel._deliver,
                    (input_vc, size, packet.credit_tag_minimal),
                )
            hook = port.on_occupancy
            if hook is not None:
                hook(input_vc, -size, port.buffer.occupancy(input_vc), now)
            if port.is_injection:
                router._injection_resident -= 1
            else:
                router.resident_packets -= 1
                ledger = router.resident_ledger
                if ledger is not None:
                    ledger.count -= 1
            # Routing state update; detour-affecting hops take the generic
            # path, plain hops inline the counter bumps.
            if candidate.simple_hop:
                packet.hops += 1
                packet.phase_position += 1
                if candidate.is_global_hop:
                    packet.phase_global_taken += 1
            else:
                on_hop_taken(packet, candidate)
            # Debit downstream credits under the (possibly updated) class.
            minimal_tag = packet.route_kind == _MINIMAL
            op._debit(out_vc, size, minimal_tag)
            packet.credit_tag_minimal = minimal_tag
            in_busy[index] = now + xbar_time
            out_state[ob] = now + xbar_time
            if out_state[ob + 1] != now:
                out_state[ob + 1] = now
                out_state[ob + 2] = 1
            else:
                out_state[ob + 2] += 1
            # Output-buffer admission was checked by the proposal this cycle
            # and at most one grant per output per iteration can land, so
            # the space reservation needs no re-check.
            out_state[ob + 3] += size
            op.packets_forwarded += 1
            # Transmission timing is fully determined here (FIFO link, known
            # crossbar and serialization delays), so the send is scheduled
            # now instead of polling an output queue every cycle: the packet
            # starts serializing once it has crossed the crossbar and the
            # link is free.
            link = op.link
            if link is None:
                raise RuntimeError(f"output port {op.port_id} of router "
                                   f"{router_id} has no link attached")
            start = now + xbar_time
            if link.busy_until > start:
                start = link.busy_until
            tail_out = link.transmit(packet, out_vc, start)
            op.schedule_release(tail_out, size)
            if not minimal_tag and packet.hops == 1:
                router.misrouted_packets += 1
                if router.on_misroute is not None:
                    router.on_misroute(packet, now)

        return execute_grant

    def _eject(self, port: InputPort, input_vc: int, packet: Packet,
               request: EjectionRequest, now: int) -> None:
        ejection = self._eject_flat[request.slot]
        port.pop(input_vc, now, packet.credit_tag_minimal)
        if port.is_injection:
            self._injection_resident -= 1
        else:
            self.resident_packets -= 1
            if self.resident_ledger is not None:
                self.resident_ledger.count -= 1
        done = ejection.consume(packet, now)
        packet.delivered_at = done
        self.packets_delivered += 1
        self.engine.schedule_call(done, self.on_delivery, (packet, done))

    # -- congestion sensing --------------------------------------------------------------------
    def _update_saturation(self) -> None:
        """Refresh this router's saturation bits on the group board (Piggyback)."""
        board = self.saturation_board
        assert board is not None
        global_ports = self._saturation_ports
        if global_ports is None:
            topo = self.topology
            global_ports = [
                (op, topo.global_port_index(self.router_id, port))
                for port, op in sorted(self.output_ports.items())
                if op.link_type == LinkType.GLOBAL
            ]
            self._saturation_ports = global_ports
        if not global_ports:
            return
        position = self.saturation_position
        per_vc = self.routing_config.pb_sensing == "vc"
        minimal_only = self.routing_config.pb_min_credits_only
        class_indices = (0, 1) if (per_vc and self.arrangement.is_reactive) else (0,)
        for class_index in class_indices:
            if class_index == 0:
                vc = 0
            else:
                vc = min(self.arrangement.request_global,
                         self.arrangement.total_global - 1)
            for op, gport in global_ports:
                occupancy = op.credits.occupancy_metric(per_vc, vc, minimal_only)
                board.post(position, gport, class_index, occupancy)
