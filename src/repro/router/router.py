"""Cycle-level router model.

Combined input-output buffered router (Section IV): per-VC input buffers
(statically partitioned or DAMQ), an iterative input-first separable
allocator running ``speedup`` iterations per cycle, small per-port output
buffers decoupling the crossbar from link serialization, credit-based virtual
cut-through flow control, and separate consumption ports for requests and
replies.

One :class:`Router` instance owns the injection queues of its ``p`` attached
nodes, its network input/output ports, and (for Piggyback routing in a
Dragonfly) a reference to its group's saturation board.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from ..buffers.base import BufferOrganization
from ..buffers.damq import DamqBuffer
from ..buffers.fifo import StaticallyPartitionedBuffer
from ..config import RouterConfig, RoutingConfig
from ..core.arrangement import VcArrangement
from ..core.link_types import LinkType, MessageClass
from ..core.vc_selection import VcSelection
from ..packet import Packet
from ..routing.base import CandidateHop, EjectionRequest, RoutingAlgorithm
from ..topology.base import Topology
from .allocator import Request, SeparableAllocator
from .credits import CreditTracker
from .ports import EjectionPort, InputPort, OutputPort
from .saturation import SaturationBoard

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import Engine


def make_port_buffer(
    router_config: RouterConfig,
    num_vcs: int,
    is_global: bool,
) -> BufferOrganization:
    """Build the buffer organization of one network port.

    The same constructor is used for the downstream input port and for the
    upstream credit mirror, which keeps both views structurally identical.
    """
    port_capacity = router_config.port_capacity(num_vcs, is_global)
    if router_config.buffer_organization == "damq":
        return DamqBuffer.from_fraction(
            num_vcs, port_capacity, router_config.damq_private_fraction
        )
    per_vc = router_config.vc_capacity(num_vcs, is_global)
    return StaticallyPartitionedBuffer(num_vcs, per_vc)


class Router:
    """One network router plus the injection/ejection machinery of its nodes."""

    def __init__(
        self,
        router_id: int,
        topology: Topology,
        engine: "Engine",
        router_config: RouterConfig,
        routing_config: RoutingConfig,
        arrangement: VcArrangement,
        routing: RoutingAlgorithm,
        selection: VcSelection,
        rng: random.Random,
        on_delivery: Callable[[Packet, int], None],
        on_injection: Optional[Callable[[Packet, int], None]] = None,
    ) -> None:
        self.router_id = router_id
        self.topology = topology
        self.engine = engine
        self.router_config = router_config
        self.routing_config = routing_config
        self.arrangement = arrangement
        self.routing = routing
        self.selection = selection
        self.rng = rng
        self.on_delivery = on_delivery
        self.on_injection = on_injection
        self.speedup = router_config.speedup
        self.saturation_board: Optional[SaturationBoard] = None

        p = topology.nodes_per_router
        self.num_nodes = p
        self.nodes = list(topology.nodes_of_router(router_id))

        # -- network ports ------------------------------------------------------
        self.input_ports: Dict[int, InputPort] = {}
        self.output_ports: Dict[int, OutputPort] = {}
        for info in topology.ports(router_id):
            num_vcs = arrangement.total(info.link_type)
            in_buffer = make_port_buffer(
                router_config, num_vcs, info.link_type == LinkType.GLOBAL
            )
            self.input_ports[info.port] = InputPort(
                port_id=info.port,
                link_type=info.link_type,
                num_vcs=num_vcs,
                buffer=in_buffer,
                pipeline_latency=router_config.pipeline_latency,
            )
            mirror = make_port_buffer(
                router_config, num_vcs, info.link_type == LinkType.GLOBAL
            )
            self.output_ports[info.port] = OutputPort(
                port_id=info.port,
                link_type=info.link_type,
                credit_tracker=CreditTracker(mirror),
                output_buffer_phits=router_config.output_buffer_phits,
            )

        # -- injection / ejection -------------------------------------------------
        self.injection_ports: List[InputPort] = []
        for node_idx in range(p):
            buffer = StaticallyPartitionedBuffer(
                router_config.num_injection_vcs, router_config.injection_vc_phits
            )
            self.injection_ports.append(
                InputPort(
                    port_id=-(node_idx + 1),
                    link_type=None,
                    num_vcs=router_config.num_injection_vcs,
                    buffer=buffer,
                    pipeline_latency=router_config.pipeline_latency,
                    is_injection=True,
                )
            )
        self.ejection_ports: List[Dict[MessageClass, EjectionPort]] = [
            {
                MessageClass.REQUEST: EjectionPort(self.nodes[i], MessageClass.REQUEST),
                MessageClass.REPLY: EjectionPort(self.nodes[i], MessageClass.REPLY),
            }
            for i in range(p)
        ]
        self.source_queues: List[Deque[Packet]] = [deque() for _ in range(p)]
        self.injection_busy_until: List[int] = [0] * p

        # -- allocator bookkeeping ----------------------------------------------------
        # Allocation inputs: injection ports first, then network ports in
        # ascending port order.
        self._alloc_inputs: List[InputPort] = list(self.injection_ports) + [
            self.input_ports[port] for port in sorted(self.input_ports)
        ]
        self.allocator = SeparableAllocator(len(self._alloc_inputs))
        self._grant_cycle = -1
        self.resident_packets = 0

        # -- statistics ---------------------------------------------------------------
        self.packets_injected = 0
        self.packets_delivered = 0
        self.misrouted_packets = 0

    # ------------------------------------------------------------------
    # External interface (wiring and traffic)
    # ------------------------------------------------------------------
    def attach_saturation_board(self, board: SaturationBoard) -> None:
        self.saturation_board = board

    def receive_network(self, packet: Packet, port: int, vc: int, now: int) -> None:
        """Deliver a packet arriving from a link into input ``port`` / VC ``vc``."""
        self.input_ports[port].receive(packet, vc, now)
        self.resident_packets += 1

    def enqueue_source(self, packet: Packet, now: int) -> None:
        """Queue a newly generated packet at its source node."""
        local = packet.src_node - self.nodes[0]
        if not 0 <= local < self.num_nodes:
            raise ValueError(
                f"packet source node {packet.src_node} is not attached to router {self.router_id}"
            )
        packet.created_at = packet.created_at if packet.created_at else now
        self.source_queues[local].append(packet)

    def has_work(self) -> bool:
        if self.saturation_board is not None:
            # Piggyback needs fresh saturation bits even while the router is
            # otherwise idle (outstanding downstream credits keep draining).
            return True
        if self.resident_packets > 0:
            return True
        if any(self.source_queues):
            return True
        if any(port.resident_packets for port in self.injection_ports):
            return True
        return any(op.has_pending() for op in self.output_ports.values())

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self._inject_from_sources(now)
        self._allocate(now)
        self._transmit(now)
        if self.saturation_board is not None:
            self._update_saturation()

    # -- injection --------------------------------------------------------------------
    def _inject_from_sources(self, now: int) -> None:
        for local in range(self.num_nodes):
            queue = self.source_queues[local]
            if not queue or self.injection_busy_until[local] > now:
                continue
            packet = queue[0]
            port = self.injection_ports[local]
            best_vc = -1
            best_free = -1
            for vc in range(port.num_vcs):
                free = port.buffer.free_for(vc)
                if free >= packet.size_phits and free > best_free:
                    best_vc, best_free = vc, free
            if best_vc < 0:
                continue
            queue.popleft()
            # The packet finishes serializing from the node after size cycles.
            port.receive(packet, best_vc, now + packet.size_phits)
            self.injection_busy_until[local] = now + packet.size_phits
            packet.injected_at = now
            self.packets_injected += 1
            if self.on_injection is not None:
                self.on_injection(packet, now)

    # -- allocation ---------------------------------------------------------------------
    def _allocate(self, now: int) -> None:
        if self._grant_cycle != now:
            self._grant_cycle = now
            for op in self.output_ports.values():
                op.grants_this_cycle = 0
        for _ in range(self.speedup):
            requests: List[Request] = []
            for index, port in enumerate(self._alloc_inputs):
                if port.xbar_busy_until > now:
                    continue
                if port.resident_packets == 0 and not port.is_injection:
                    continue
                request = self._propose(index, port, now)
                if request is not None:
                    requests.append(request)
            if not requests:
                break
            for grant in self.allocator.arbitrate(requests):
                self._execute_grant(grant, now)

    def _propose(self, input_index: int, port: InputPort, now: int) -> Optional[Request]:
        """Input stage: pick one requestable head packet from ``port`` (round-robin)."""
        num_vcs = port.num_vcs
        for offset in range(num_vcs):
            vc = (port.rr_pointer + offset) % num_vcs
            packet = port.head(vc, now)
            if packet is None:
                continue
            request = self._request_for(input_index, port, vc, packet, now)
            if request is not None:
                port.rr_pointer = (vc + 1) % num_vcs
                return request
        return None

    def _request_for(
        self, input_index: int, port: InputPort, vc: int, packet: Packet, now: int
    ) -> Optional[Request]:
        plan = self._plan_for(port, vc, packet)
        if isinstance(plan, EjectionRequest):
            local = plan.node - self.nodes[0]
            ejection = self.ejection_ports[local][plan.msg_class]
            if not ejection.idle_at(now):
                return None
            return Request(
                input_index=input_index,
                input_vc=vc,
                packet=packet,
                resource=("eject", local, plan.msg_class),
                candidate=plan,
            )
        for candidate in plan:
            request = self._forward_request(input_index, vc, packet, candidate, now)
            if request is not None:
                return request
        return None

    def _plan_for(self, port: InputPort, vc: int, packet: Packet):
        cache = packet.plan_cache
        if cache is not None and cache[0] == self.router_id and cache[1] == vc:
            return cache[2]
        input_type = None if port.is_injection else port.link_type
        input_vc = -1 if port.is_injection else vc
        plan = self.routing.plan(self, packet, input_type, input_vc)
        packet.plan_cache = (self.router_id, vc, plan)
        return plan

    def _forward_request(
        self, input_index: int, vc: int, packet: Packet,
        candidate: CandidateHop, now: int,
    ) -> Optional[Request]:
        op = self.output_ports[candidate.out_port]
        if op.xbar_busy_until > now or op.grants_this_cycle >= self.speedup:
            return None
        if not op.buffer_space_for(packet.size_phits):
            return None
        tracker = op.credits
        candidates: List[int] = []
        free: List[int] = []
        for out_vc in candidate.vc_range:
            if tracker.can_send(out_vc, packet.size_phits):
                candidates.append(out_vc)
                free.append(tracker.free_for(out_vc))
        if not candidates:
            return None
        chosen = self.selection.choose(candidates, free, self.rng)
        return Request(
            input_index=input_index,
            input_vc=vc,
            packet=packet,
            resource=("out", candidate.out_port),
            out_vc=chosen,
            candidate=candidate,
        )

    def _execute_grant(self, grant: Request, now: int) -> None:
        port = self._alloc_inputs[grant.input_index]
        packet = grant.packet
        if isinstance(grant.candidate, EjectionRequest):
            self._eject(port, grant, now)
            return
        candidate: CandidateHop = grant.candidate
        op = self.output_ports[candidate.out_port]
        xbar_time = max(1, math.ceil(packet.size_phits / self.speedup))
        minimal_tag = packet.is_minimal and not candidate.abandons_detour
        # Pop from the input buffer (returns credits upstream for network ports).
        port.pop(grant.input_vc, now, packet.credit_tag_minimal)
        if not port.is_injection:
            self.resident_packets -= 1
        # Debit downstream credits under the packet's (possibly updated) class.
        self.routing.on_hop_taken(packet, candidate)
        minimal_tag = packet.is_minimal
        op.credits.debit(grant.out_vc, packet.size_phits, minimal_tag)
        packet.credit_tag_minimal = minimal_tag
        port.xbar_busy_until = now + xbar_time
        op.xbar_busy_until = now + xbar_time
        op.grants_this_cycle += 1
        op.accept(packet, grant.out_vc, ready_cycle=now + xbar_time)
        if not packet.is_minimal and packet.hops == 1:
            self.misrouted_packets += 1

    def _eject(self, port: InputPort, grant: Request, now: int) -> None:
        packet = grant.packet
        request: EjectionRequest = grant.candidate
        local = request.node - self.nodes[0]
        ejection = self.ejection_ports[local][request.msg_class]
        port.pop(grant.input_vc, now, packet.credit_tag_minimal)
        if not port.is_injection:
            self.resident_packets -= 1
        done = ejection.consume(packet, now)
        packet.delivered_at = done
        packet.plan_cache = None
        self.packets_delivered += 1
        self.engine.schedule(done, lambda t, p=packet: self.on_delivery(p, t))

    # -- transmission ------------------------------------------------------------------------
    def _transmit(self, now: int) -> None:
        for op in self.output_ports.values():
            if not op.send_queue:
                continue
            link = op.link
            if link is None:
                raise RuntimeError(f"output port {op.port_id} of router {self.router_id} "
                                   "has no link attached")
            packet, out_vc, ready = op.send_queue[0]
            if ready > now or not link.idle_at(now):
                continue
            op.send_queue.popleft()
            tail_out = link.transmit(packet, out_vc, now)
            self.engine.schedule(
                tail_out, lambda t, o=op, size=packet.size_phits: o.release_buffer(size)
            )

    # -- congestion sensing --------------------------------------------------------------------
    def _update_saturation(self) -> None:
        """Refresh this router's saturation bits on the group board (Piggyback)."""
        from ..topology.dragonfly import Dragonfly

        topo = self.topology
        if not isinstance(topo, Dragonfly):  # pragma: no cover - PB is Dragonfly-only here
            return
        board = self.saturation_board
        assert board is not None
        position = topo.position_in_group(self.router_id)
        global_ports = [
            (port, op) for port, op in self.output_ports.items()
            if op.link_type == LinkType.GLOBAL
        ]
        if not global_ports:
            return
        per_vc = self.routing_config.pb_sensing == "vc"
        minimal_only = self.routing_config.pb_min_credits_only
        class_indices = (0, 1) if (per_vc and self.arrangement.is_reactive) else (0,)
        for class_index in class_indices:
            if class_index == 0:
                vc = 0
            else:
                vc = min(self.arrangement.request_global,
                         self.arrangement.total_global - 1)
            for port, op in global_ports:
                gport = port - topo.num_local_ports
                occupancy = op.credits.occupancy_metric(per_vc, vc, minimal_only)
                board.post(position, gport, class_index, occupancy)
