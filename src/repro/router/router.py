"""Cycle-level router model.

Combined input-output buffered router (Section IV): per-VC input buffers
(statically partitioned or DAMQ), an iterative input-first separable
allocator running ``speedup`` iterations per cycle, small per-port output
buffers decoupling the crossbar from link serialization, credit-based virtual
cut-through flow control, and separate consumption ports for requests and
replies.

One :class:`Router` instance owns the injection queues of its ``p`` attached
nodes, its network input/output ports, and (for Piggyback routing in a
Dragonfly) a reference to its group's saturation board.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from ..buffers.base import BufferOrganization
from ..buffers.damq import DamqBuffer
from ..buffers.fifo import StaticallyPartitionedBuffer
from ..config import RouterConfig, RoutingConfig
from ..core.arrangement import VcArrangement
from ..core.link_types import LinkType, MessageClass
from ..core.vc_selection import VcSelection
from ..metrics import ResidentLedger
from ..packet import Packet
from ..routing.base import CandidateHop, EjectionRequest, RoutingAlgorithm
from ..topology.base import Topology
from .allocator import Request, SeparableAllocator
from .credits import CreditTracker
from .ports import EjectionPort, InputPort, OutputPort
from .saturation import SaturationBoard

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import Engine

#: sentinel "no deterministic retry time" (asynchronous wake only).
NEVER = 1 << 62


def make_port_buffer(
    router_config: RouterConfig,
    num_vcs: int,
    is_global: bool,
) -> BufferOrganization:
    """Build the buffer organization of one network port.

    The same constructor is used for the downstream input port and for the
    upstream credit mirror, which keeps both views structurally identical.
    """
    port_capacity = router_config.port_capacity(num_vcs, is_global)
    if router_config.buffer_organization == "damq":
        return DamqBuffer.from_fraction(
            num_vcs, port_capacity, router_config.damq_private_fraction
        )
    per_vc = router_config.vc_capacity(num_vcs, is_global)
    return StaticallyPartitionedBuffer(num_vcs, per_vc)


class Router:
    """One network router plus the injection/ejection machinery of its nodes."""

    def __init__(
        self,
        router_id: int,
        topology: Topology,
        engine: "Engine",
        router_config: RouterConfig,
        routing_config: RoutingConfig,
        arrangement: VcArrangement,
        routing: RoutingAlgorithm,
        selection: VcSelection,
        rng: random.Random,
        on_delivery: Callable[[Packet, int], None],
        on_injection: Optional[Callable[[Packet, int], None]] = None,
    ) -> None:
        self.router_id = router_id
        self.topology = topology
        self.engine = engine
        self.router_config = router_config
        self.routing_config = routing_config
        self.arrangement = arrangement
        self.routing = routing
        self.selection = selection
        self.rng = rng
        self.on_delivery = on_delivery
        self.on_injection = on_injection
        self.speedup = router_config.speedup
        self.saturation_board: Optional[SaturationBoard] = None
        #: position of this router on its group's saturation board.
        self.saturation_position = -1
        #: (output_port, board_index) pairs of the global ports (lazy).
        self._saturation_ports: Optional[List] = None
        self._saturation_posts = False

        # Transit-only routers (e.g. Megafly spines) attach no nodes.
        self.nodes = list(topology.nodes_of_router(router_id))
        p = len(self.nodes)
        self.num_nodes = p

        # -- network ports ------------------------------------------------------
        self.input_ports: Dict[int, InputPort] = {}
        self.output_ports: Dict[int, OutputPort] = {}
        for info in topology.ports(router_id):
            num_vcs = arrangement.total(info.link_type)
            in_buffer = make_port_buffer(
                router_config, num_vcs, info.link_type == LinkType.GLOBAL
            )
            self.input_ports[info.port] = InputPort(
                port_id=info.port,
                link_type=info.link_type,
                num_vcs=num_vcs,
                buffer=in_buffer,
                pipeline_latency=router_config.pipeline_latency,
            )
            mirror = make_port_buffer(
                router_config, num_vcs, info.link_type == LinkType.GLOBAL
            )
            self.output_ports[info.port] = OutputPort(
                port_id=info.port,
                link_type=info.link_type,
                credit_tracker=CreditTracker(mirror),
                output_buffer_phits=router_config.output_buffer_phits,
            )

        # -- injection / ejection -------------------------------------------------
        self.injection_ports: List[InputPort] = []
        for node_idx in range(p):
            buffer = StaticallyPartitionedBuffer(
                router_config.num_injection_vcs, router_config.injection_vc_phits
            )
            self.injection_ports.append(
                InputPort(
                    port_id=-(node_idx + 1),
                    link_type=None,
                    num_vcs=router_config.num_injection_vcs,
                    buffer=buffer,
                    pipeline_latency=router_config.pipeline_latency,
                    is_injection=True,
                )
            )
        self.ejection_ports: List[Dict[MessageClass, EjectionPort]] = [
            {
                MessageClass.REQUEST: EjectionPort(self.nodes[i], MessageClass.REQUEST),
                MessageClass.REPLY: EjectionPort(self.nodes[i], MessageClass.REPLY),
            }
            for i in range(p)
        ]
        self.source_queues: List[Deque[Packet]] = [deque() for _ in range(p)]
        self.injection_busy_until: List[int] = [0] * p

        # -- allocator bookkeeping ----------------------------------------------------
        # Allocation inputs: injection ports first, then network ports in
        # ascending port order.
        self._alloc_inputs: List[InputPort] = list(self.injection_ports) + [
            self.input_ports[port] for port in sorted(self.input_ports)
        ]
        self._output_list: List[OutputPort] = list(self.output_ports.values())
        self.allocator = SeparableAllocator(len(self._alloc_inputs))
        self.resident_packets = 0

        # -- activity tracking ---------------------------------------------------------
        #: index assigned by Engine.register_router; -1 until registered.
        self.engine_index = -1
        #: bound active-set insert, installed by Engine.register_router.
        self.engine_activate: Optional[Callable[[int], None]] = None
        #: O(1) work counters so has_work() never scans queues.
        self._source_backlog = 0
        self._injection_resident = 0
        #: cycle of the outstanding pipeline-wake event (-1 when none).
        self._next_wake = -1
        #: result of the last request-less allocation pass: the earliest cycle
        #: a retry could succeed (NEVER = only an async event can unblock),
        #: or -1 when allocation is not known to be blocked.  Reset by wake().
        self._alloc_sleep_until = -1
        #: cycle at which that pass ran — heads that clear the router
        #: pipeline later were not part of the verdict and invalidate it.
        self._alloc_blocked_at = -1
        #: shared network-wide resident-packet counter (see Simulation).
        self.resident_ledger: Optional[ResidentLedger] = None

        # -- statistics ---------------------------------------------------------------
        self.packets_injected = 0
        self.packets_delivered = 0
        self.misrouted_packets = 0

        # -- probe dispatch (None = unsubscribed, zero-cost) ---------------------------
        #: ``hook(packet, now)`` fired on a packet's first non-minimal hop.
        self.on_misroute: Optional[Callable[[Packet, int], None]] = None
        #: ``hook(router_id, now, retry_cycle)`` fired when a stepped router
        #: with resident packets produces no allocation request.
        self.on_stall: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------------
    # External interface (wiring and traffic)
    # ------------------------------------------------------------------
    def attach_saturation_board(self, board: SaturationBoard, position: int = 0) -> None:
        self.saturation_board = board
        self.saturation_position = position
        self._saturation_ports = None
        #: whether this router posts measurements (owns global ports) or only
        #: reads the board at injection time (e.g. Megafly leaves).
        self._saturation_posts = any(
            op.link_type == LinkType.GLOBAL for op in self.output_ports.values()
        )
        self.wake()

    def wake(self) -> None:
        """Re-register with the engine's active set (idempotent).

        Every wake signals a state change (arrival, credit return, timer
        expiry), so any recorded allocation blockage is stale and dropped.
        """
        self._alloc_sleep_until = -1
        if self.engine_activate is not None:
            self.engine_activate(self.engine_index)

    def receive_network(self, packet: Packet, port: int, vc: int, now: int) -> None:
        """Deliver a packet arriving from a link into input ``port`` / VC ``vc``."""
        self.input_ports[port].receive(packet, vc, now)
        self.resident_packets += 1
        if self.resident_ledger is not None:
            self.resident_ledger.count += 1
        self._alloc_sleep_until = -1
        if self.engine_activate is not None:
            self.engine_activate(self.engine_index)

    def enqueue_source(self, packet: Packet, now: int) -> None:
        """Queue a newly generated packet at its source node."""
        local = packet.src_node - self.nodes[0]
        if not 0 <= local < self.num_nodes:
            raise ValueError(
                f"packet source node {packet.src_node} is not attached to router {self.router_id}"
            )
        packet.created_at = packet.created_at if packet.created_at else now
        self.source_queues[local].append(packet)
        self._source_backlog += 1
        self.wake()

    def has_work(self) -> bool:
        """Does stepping this router this cycle have any possible effect?

        A step is a no-op — it touches no state and draws no randomness —
        when every pending activity is gated on a future cycle: source
        packets still serializing into their injection buffers, and buffered
        packets still traversing the router pipeline (granted packets need
        no stepping at all — their transmission is scheduled as an event at
        grant time).  All remaining deadlines are known and can only move
        through events that re-activate this router, so instead of being
        polled the router sleeps and schedules a wake for the earliest of
        them.  Skipping the no-op cycles is therefore bit-identical to the
        polled execution model.
        """
        if self.saturation_board is not None:
            # Piggyback needs fresh saturation bits even while the router is
            # otherwise idle (outstanding downstream credits keep draining),
            # and board-reading injection decisions must see every cycle's
            # state while packets are pending.  A board reader with no global
            # ports and no pending work steps as a pure no-op, so it may
            # sleep; arrivals and source enqueues wake it.
            if (self._saturation_posts or self.resident_packets
                    or self._injection_resident or self._source_backlog):
                return True
            return False
        now = self.engine.now
        blocked = self._alloc_sleep_until
        if blocked >= 0:
            if blocked <= now:
                # The deterministic blocker expired.
                self._alloc_sleep_until = blocked = -1
            else:
                # The verdict only covers heads that were routable when it
                # was recorded; a head that cleared the pipeline since then
                # was never evaluated and invalidates it.
                blocked_at = self._alloc_blocked_at
                for port in self._alloc_inputs:
                    if (port.resident_packets and port.min_ready <= now
                            and port.has_head_ready_in(blocked_at, now)):
                        self._alloc_sleep_until = blocked = -1
                        break
        earliest = -1
        if self.resident_packets or self._injection_resident:
            for port in self._alloc_inputs:
                if port.resident_packets:
                    ready = port.min_ready
                    if ready <= now:
                        if blocked < 0:
                            return True
                        if blocked < NEVER and (earliest < 0 or blocked < earliest):
                            earliest = blocked
                        # Heads behind the blocked one still need a timed
                        # wake when they clear the pipeline.
                        upcoming = port.next_head_ready_after(now)
                        if upcoming >= 0 and (earliest < 0 or upcoming < earliest):
                            earliest = upcoming
                    elif earliest < 0 or ready < earliest:
                        earliest = ready
        if self._source_backlog:
            for local in range(self.num_nodes):
                if self.source_queues[local]:
                    busy = self.injection_busy_until[local]
                    if busy <= now:
                        return True
                    if earliest < 0 or busy < earliest:
                        earliest = busy
        if earliest >= 0 and self._next_wake != earliest:
            self._next_wake = earliest
            self.engine.schedule_wake(earliest, self.engine_index)
        return False

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        if self._source_backlog:
            self._inject_from_sources(now)
        if self.resident_packets or self._injection_resident:
            blocked = self._alloc_sleep_until
            if blocked < 0 or blocked <= now:
                self._allocate(now)
        if self.saturation_board is not None and self._saturation_posts:
            self._update_saturation()

    # -- injection --------------------------------------------------------------------
    def _inject_from_sources(self, now: int) -> None:
        for local in range(self.num_nodes):
            queue = self.source_queues[local]
            if not queue or self.injection_busy_until[local] > now:
                continue
            packet = queue[0]
            port = self.injection_ports[local]
            best_vc = -1
            best_free = -1
            for vc in range(port.num_vcs):
                free = port.buffer.free_for(vc)
                if free >= packet.size_phits and free > best_free:
                    best_vc, best_free = vc, free
            if best_vc < 0:
                continue
            queue.popleft()
            self._source_backlog -= 1
            # The packet finishes serializing from the node after size cycles.
            port.receive(packet, best_vc, now + packet.size_phits)
            self._injection_resident += 1
            self.injection_busy_until[local] = now + packet.size_phits
            packet.injected_at = now
            self.packets_injected += 1
            if self.on_injection is not None:
                self.on_injection(packet, now)

    # -- allocation ---------------------------------------------------------------------
    def _allocate(self, now: int) -> None:
        """One cycle of iterative input-first separable allocation.

        The input stage (round-robin VC pick, plan lookup, ejection/credit/
        output admission) is inlined into this loop: it runs for every active
        router every cycle, and the flat form saves several Python calls per
        proposal while remaining check-for-check identical to the layered
        original.
        """
        self._alloc_sleep_until = -1
        alloc_inputs = self._alloc_inputs
        output_ports = self.output_ports
        speedup = self.speedup
        router_id = self.router_id
        # Transit-only routers never eject, so the anchor is never read.
        first_node = self.nodes[0] if self.nodes else 0
        choose = self.selection.choose
        rng = self.rng
        reject_until = NEVER
        for iteration in range(speedup):
            requests: List[Request] = []
            retry = NEVER
            for index, port in enumerate(alloc_inputs):
                # Skip empty ports and ports whose every head packet is still
                # in the router pipeline — the scan below could not find a
                # packet, so the skip is behaviour-identical but O(1).
                if port.resident_packets == 0:
                    continue
                busy = port.xbar_busy_until
                if busy > now:
                    if busy < retry:
                        retry = busy
                    continue
                if port.min_ready > now:
                    continue
                # Input stage: pick one requestable head packet (round-robin).
                num_vcs = port.num_vcs
                queues = port.queues
                rr_pointer = port.rr_pointer
                for offset in range(num_vcs):
                    vc = rr_pointer + offset
                    if vc >= num_vcs:
                        vc -= num_vcs
                    queue = queues[vc]
                    if not queue:
                        continue
                    packet, ready = queue[0]
                    if ready > now:
                        continue
                    cache = packet.plan_cache
                    if cache is not None and cache[0] == router_id and cache[1] == vc:
                        plan = cache[2]
                    else:
                        plan = self._plan_for(port, vc, packet)
                    request = None
                    if type(plan) is EjectionRequest:
                        local = plan.node - first_node
                        ejection = self.ejection_ports[local][plan.msg_class]
                        ejection_busy = ejection.busy_until
                        if ejection_busy > now:
                            if ejection_busy < reject_until:
                                reject_until = ejection_busy
                            continue
                        request = Request(
                            input_index=index,
                            input_vc=vc,
                            packet=packet,
                            resource=("eject", local, plan.msg_class),
                            candidate=plan,
                        )
                    else:
                        size = packet.size_phits
                        for candidate in plan:
                            op = output_ports[candidate.out_port]
                            out_busy = op.xbar_busy_until
                            if out_busy > now:
                                if out_busy < reject_until:
                                    reject_until = out_busy
                                continue
                            if op.grant_stamp == now and op.grants_this_cycle >= speedup:
                                if now + 1 < reject_until:
                                    reject_until = now + 1
                                continue
                            if not op.buffer_space_for(size, now):
                                # Output-buffer reclamations are lazy, not
                                # wake events: poll again next cycle.
                                if now + 1 < reject_until:
                                    reject_until = now + 1
                                continue
                            tracker = op.credits
                            vc_range = candidate.vc_range
                            candidates: List[int] = []
                            free: List[int] = []
                            for out_vc in range(vc_range.lo, vc_range.hi + 1):
                                space = tracker.free_for(out_vc)
                                if space >= size:
                                    candidates.append(out_vc)
                                    free.append(space)
                            if not candidates:
                                continue
                            request = Request(
                                input_index=index,
                                input_vc=vc,
                                packet=packet,
                                resource=("out", candidate.out_port),
                                out_vc=choose(candidates, free, rng),
                                candidate=candidate,
                            )
                            break
                    if request is not None:
                        next_vc = vc + 1
                        port.rr_pointer = 0 if next_vc >= num_vcs else next_vc
                        requests.append(request)
                        break
            if not requests:
                if iteration == 0:
                    if reject_until < retry:
                        retry = reject_until
                    if self.on_stall is not None:
                        self.on_stall(router_id, now, retry)
                    if self.saturation_board is None:
                        # Nothing was requestable: record the earliest cycle a
                        # deterministic blocker (crossbar, ejection port, grant
                        # cap) expires so has_work() can sleep until then; async
                        # blockers (credits) re-activate the router via wake().
                        # Piggyback routers are exempt: they are stepped every
                        # cycle regardless (saturation sensing), and their
                        # injection decisions read time-varying congestion state,
                        # so skipping allocation passes would change results.
                        self._alloc_sleep_until = retry
                        self._alloc_blocked_at = now
                break
            for grant in self.allocator.arbitrate(requests):
                self._execute_grant(grant, now)

    def _plan_for(self, port: InputPort, vc: int, packet: Packet):
        cache = packet.plan_cache
        if cache is not None and cache[0] == self.router_id and cache[1] == vc:
            return cache[2]
        input_type = None if port.is_injection else port.link_type
        input_vc = -1 if port.is_injection else vc
        plan = self.routing.plan(self, packet, input_type, input_vc)
        packet.plan_cache = (self.router_id, vc, plan)
        return plan

    def _execute_grant(self, grant: Request, now: int) -> None:
        port = self._alloc_inputs[grant.input_index]
        packet = grant.packet
        if isinstance(grant.candidate, EjectionRequest):
            self._eject(port, grant, now)
            return
        candidate: CandidateHop = grant.candidate
        op = self.output_ports[candidate.out_port]
        # Integer ceiling of size/speedup (avoids math.ceil + float division).
        xbar_time = -(-packet.size_phits // self.speedup)
        if xbar_time < 1:
            xbar_time = 1
        # Pop from the input buffer (returns credits upstream for network ports).
        port.pop(grant.input_vc, now, packet.credit_tag_minimal)
        if port.is_injection:
            self._injection_resident -= 1
        else:
            self.resident_packets -= 1
            if self.resident_ledger is not None:
                self.resident_ledger.count -= 1
        # Debit downstream credits under the packet's (possibly updated) class.
        self.routing.on_hop_taken(packet, candidate)
        minimal_tag = packet.is_minimal
        op.credits.debit(grant.out_vc, packet.size_phits, minimal_tag)
        packet.credit_tag_minimal = minimal_tag
        port.xbar_busy_until = now + xbar_time
        op.xbar_busy_until = now + xbar_time
        if op.grant_stamp != now:
            op.grant_stamp = now
            op.grants_this_cycle = 0
        op.grants_this_cycle += 1
        op.accept(packet)
        # Transmission timing is fully determined here (FIFO link, known
        # crossbar and serialization delays), so the send is scheduled now
        # instead of polling an output queue every cycle: the packet starts
        # serializing once it has crossed the crossbar and the link is free.
        link = op.link
        if link is None:
            raise RuntimeError(f"output port {op.port_id} of router {self.router_id} "
                               "has no link attached")
        start = now + xbar_time
        if link.busy_until > start:
            start = link.busy_until
        tail_out = link.transmit(packet, grant.out_vc, start)
        op.schedule_release(tail_out, packet.size_phits)
        if not packet.is_minimal and packet.hops == 1:
            self.misrouted_packets += 1
            if self.on_misroute is not None:
                self.on_misroute(packet, now)

    def _eject(self, port: InputPort, grant: Request, now: int) -> None:
        packet = grant.packet
        request: EjectionRequest = grant.candidate
        local = request.node - self.nodes[0]
        ejection = self.ejection_ports[local][request.msg_class]
        port.pop(grant.input_vc, now, packet.credit_tag_minimal)
        if port.is_injection:
            self._injection_resident -= 1
        else:
            self.resident_packets -= 1
            if self.resident_ledger is not None:
                self.resident_ledger.count -= 1
        done = ejection.consume(packet, now)
        packet.delivered_at = done
        packet.plan_cache = None
        self.packets_delivered += 1
        self.engine.schedule(done, lambda t, p=packet: self.on_delivery(p, t))

    # -- congestion sensing --------------------------------------------------------------------
    def _update_saturation(self) -> None:
        """Refresh this router's saturation bits on the group board (Piggyback)."""
        board = self.saturation_board
        assert board is not None
        global_ports = self._saturation_ports
        if global_ports is None:
            topo = self.topology
            global_ports = [
                (op, topo.global_port_index(self.router_id, port))
                for port, op in sorted(self.output_ports.items())
                if op.link_type == LinkType.GLOBAL
            ]
            self._saturation_ports = global_ports
        if not global_ports:
            return
        position = self.saturation_position
        per_vc = self.routing_config.pb_sensing == "vc"
        minimal_only = self.routing_config.pb_min_credits_only
        class_indices = (0, 1) if (per_vc and self.arrangement.is_reactive) else (0,)
        for class_index in class_indices:
            if class_index == 0:
                vc = 0
            else:
                vc = min(self.arrangement.request_global,
                         self.arrangement.total_global - 1)
            for op, gport in global_ports:
                occupancy = op.credits.occupancy_metric(per_vc, vc, minimal_only)
                board.post(position, gport, class_index, occupancy)
