"""Router ports: network inputs, network outputs, injection and ejection.

The router is combined input-output buffered (Section IV): every network
input port holds per-VC queues backed by a
:class:`~repro.buffers.base.BufferOrganization`, every network output port
holds a small output buffer that decouples crossbar traversal from link
serialization, and each attached node owns an injection port (three deep VC
buffers in Table V) and two consumption (ejection) ports — one for requests,
one for replies — so that request-reply protocol deadlock is resolved at the
endpoints as in Cray Cascade.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..buffers.base import BufferOrganization
from ..core.link_types import LinkType, MessageClass
from ..link import CreditChannel, Link
from ..packet import Packet
from .credits import CreditTracker


class InputPort:
    """Per-VC queues of a network input port (or an injection port)."""

    def __init__(
        self,
        port_id: int,
        link_type: Optional[LinkType],
        num_vcs: int,
        buffer: BufferOrganization,
        pipeline_latency: int,
        is_injection: bool = False,
    ) -> None:
        if buffer.num_vcs != num_vcs:
            raise ValueError("buffer organization VC count must match num_vcs")
        self.port_id = port_id
        self.link_type = link_type
        self.num_vcs = num_vcs
        self.buffer = buffer
        self.pipeline_latency = pipeline_latency
        self.is_injection = is_injection
        #: per-VC FIFO of (packet, ready_cycle) pairs.
        self.queues: list[Deque[tuple[Packet, int]]] = [deque() for _ in range(num_vcs)]
        #: reverse channel returning credits to the upstream output port.
        self.credit_channel: Optional[CreditChannel] = None
        #: round-robin pointer over VCs used by the allocator.
        self.rr_pointer = 0
        #: crossbar availability of this input.
        self.xbar_busy_until = 0
        #: number of packets currently resident in the port.
        self.resident_packets = 0

    # -- arrival --------------------------------------------------------------
    def receive(self, packet: Packet, vc: int, now: int) -> None:
        """Store an arriving packet into VC ``vc``; it becomes routable after
        the router pipeline latency."""
        self.buffer.allocate(vc, packet.size_phits)
        packet.current_vc = vc
        self.queues[vc].append((packet, now + self.pipeline_latency))
        self.resident_packets += 1

    # -- head access -------------------------------------------------------------
    def head(self, vc: int, now: int) -> Optional[Packet]:
        """Head packet of VC ``vc`` if it has cleared the pipeline, else None."""
        queue = self.queues[vc]
        if not queue:
            return None
        packet, ready = queue[0]
        return packet if ready <= now else None

    def pop(self, vc: int, now: int, minimal: bool) -> Packet:
        """Remove the head packet of ``vc``, free its space and return credits."""
        packet, _ = self.queues[vc].popleft()
        self.buffer.release(vc, packet.size_phits)
        self.resident_packets -= 1
        if self.credit_channel is not None:
            self.credit_channel.send_credit(vc, packet.size_phits, minimal, now)
        return packet

    def occupancy(self, vc: int) -> int:
        return self.buffer.occupancy(vc)

    def is_empty(self) -> bool:
        return self.resident_packets == 0


class OutputPort:
    """Network output port: credit tracker, output buffer and link access."""

    def __init__(
        self,
        port_id: int,
        link_type: LinkType,
        credit_tracker: CreditTracker,
        output_buffer_phits: int,
    ) -> None:
        self.port_id = port_id
        self.link_type = link_type
        self.credits = credit_tracker
        self.output_buffer_capacity = output_buffer_phits
        self.output_buffer_occupancy = 0
        #: packets that have crossed (or are crossing) the crossbar, waiting
        #: for the link: (packet, out_vc, ready_cycle).
        self.send_queue: Deque[tuple[Packet, int, int]] = deque()
        self.xbar_busy_until = 0
        self.link: Optional[Link] = None
        #: grants handed out in the current cycle (bounded by the speedup).
        self.grants_this_cycle = 0
        #: utilization accounting.
        self.packets_forwarded = 0

    def attach_link(self, link: Link) -> None:
        self.link = link

    # -- admission -----------------------------------------------------------------
    def buffer_space_for(self, phits: int) -> bool:
        return self.output_buffer_occupancy + phits <= self.output_buffer_capacity

    def accept(self, packet: Packet, out_vc: int, ready_cycle: int) -> None:
        """Reserve output-buffer space for a granted packet."""
        if not self.buffer_space_for(packet.size_phits):
            raise RuntimeError("output buffer overflow — allocator must check space first")
        self.output_buffer_occupancy += packet.size_phits
        self.send_queue.append((packet, out_vc, ready_cycle))
        self.packets_forwarded += 1

    def release_buffer(self, phits: int) -> None:
        if phits > self.output_buffer_occupancy:
            raise RuntimeError("output buffer underflow")
        self.output_buffer_occupancy -= phits

    def has_pending(self) -> bool:
        return bool(self.send_queue)


class EjectionPort:
    """Consumption port of one node for one message class (1 phit/cycle)."""

    def __init__(self, node: int, msg_class: MessageClass) -> None:
        self.node = node
        self.msg_class = msg_class
        self.busy_until = 0
        self.packets_consumed = 0
        self.phits_consumed = 0

    def idle_at(self, now: int) -> bool:
        return self.busy_until <= now

    def consume(self, packet: Packet, now: int) -> int:
        """Start consuming ``packet``; returns its completion cycle."""
        if not self.idle_at(now):
            raise RuntimeError("ejection port busy")
        done = now + packet.size_phits
        self.busy_until = done
        self.packets_consumed += 1
        self.phits_consumed += packet.size_phits
        return done
