"""Router ports: network inputs, network outputs, injection and ejection.

The router is combined input-output buffered (Section IV): every network
input port holds per-VC queues backed by a
:class:`~repro.buffers.base.BufferOrganization`, every network output port
holds a small output buffer that decouples crossbar traversal from link
serialization, and each attached node owns an injection port (three deep VC
buffers in Table V) and two consumption (ejection) ports — one for requests,
one for replies — so that request-reply protocol deadlock is resolved at the
endpoints as in Cray Cascade.

Hot-state layout
----------------
The fields the allocator reads every cycle (resident counts, pipeline
readiness, ejection busy timers, output crossbar/grant/buffer state) live in
flat per-router slabs — preallocated lists indexed by a single integer — and
each port object is *bound* to its slice at construction time via
``bind_hot_state``.  Ports created standalone (unit tests, tools) own a
private mini-slab, so the methods below behave identically either way; the
attribute names of the old object-per-field layout remain available as
read-only properties.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffers.base import BufferOrganization
from ..core.link_types import LinkType, MessageClass
from ..link import CreditChannel, Link
from ..packet import Packet
from .credits import CreditTracker

#: input-port slab offsets (stride 3): resident packet count, earliest head
#: pipeline-ready cycle, and the port's blocked-verdict expiry (-1 = none —
#: the allocator must evaluate the port; see Router._allocate).
IN_RESIDENT = 0
IN_MIN_READY = 1
IN_BLOCKED = 2
IN_STRIDE = 3

#: output-port slab offsets (stride 4).
OUT_XBAR_BUSY = 0
OUT_GRANT_STAMP = 1
OUT_GRANTS = 2
OUT_BUF_OCC = 3

#: shared round-robin visit orders keyed by VC count (every port with the
#: same ``num_vcs`` scans VCs in the same precomputed orders).
_RR_ORDERS: dict[int, tuple[tuple[int, ...], ...]] = {}


def _rr_orders(num_vcs: int) -> tuple[tuple[int, ...], ...]:
    orders = _RR_ORDERS.get(num_vcs)
    if orders is None:
        orders = _RR_ORDERS[num_vcs] = tuple(
            tuple((start + offset) % num_vcs for offset in range(num_vcs))
            for start in range(num_vcs)
        )
    return orders


class InputPort:
    """Per-VC queues of a network input port (or an injection port)."""

    __slots__ = (
        "port_id", "link_type", "num_vcs", "buffer", "pipeline_latency",
        "is_injection", "queues", "credit_channel", "head_plans", "rr_orders",
        "on_occupancy", "_hot", "_hb", "_buf_allocate", "_buf_release",
    )

    def __init__(
        self,
        port_id: int,
        link_type: Optional[LinkType],
        num_vcs: int,
        buffer: BufferOrganization,
        pipeline_latency: int,
        is_injection: bool = False,
    ) -> None:
        if buffer.num_vcs != num_vcs:
            raise ValueError("buffer organization VC count must match num_vcs")
        self.port_id = port_id
        self.link_type = link_type
        self.num_vcs = num_vcs
        self.buffer = buffer
        self.pipeline_latency = pipeline_latency
        self.is_injection = is_injection
        #: per-VC FIFO of (packet, ready_cycle) pairs.  Slots start as None
        #: and get their queue on first arrival — at 10^5-endpoint scale
        #: most of the millions of VC queues never see a packet during
        #: short runs.  Consumers already treat an empty queue as falsy,
        #: which None satisfies; only the arrival paths (here and the two
        #: fused receive clones) create.  The queue is a plain list, not a
        #: deque: its depth is bounded by the VC's buffer capacity in
        #: packets (small), ``pop(0)`` on a short list is cheap, and an
        #: empty deque costs ~11x the memory of an empty list — once
        #: steady-state traffic has touched every (port, VC) pair, that
        #: difference is hundreds of MB at system scale.
        self.queues: list[Optional[List[tuple[Packet, int]]]] = [None] * num_vcs
        #: precomputed round-robin visit orders: ``rr_orders[p]`` is the VC
        #: scan sequence starting at pointer ``p`` (allocator inner loop).
        #: Identical for every port with the same VC count, so shared
        #: process-wide instead of rebuilt per port.
        self.rr_orders: tuple[tuple[int, ...], ...] = _rr_orders(num_vcs)
        #: reverse channel returning credits to the upstream output port.
        self.credit_channel: Optional[CreditChannel] = None
        #: per-VC cached forwarding plan of the current head packet, computed
        #: once by the router and invalidated when the head changes (pop).
        #: Arrivals never stale an entry: a VC whose head changes through
        #: ``receive`` was empty, so its entry was already None.
        self.head_plans: List[Optional[object]] = [None] * num_vcs
        #: probe dispatch ``hook(vc, delta_phits, occupancy, now)``; None (the
        #: default) keeps the no-probe receive/pop paths dispatch-free.
        self.on_occupancy = None
        #: hot-state slab slice [resident, min_ready, blocked_until];
        #: standalone ports own a private slab until a router binds them
        #: into its shared one.
        self._hot: list = [0, 0, -1]
        self._hb = 0
        #: bound buffer mutators (one attribute chase less per phit move).
        self._buf_allocate = buffer.allocate
        self._buf_release = buffer.release

    def bind_hot_state(self, slab: list, base: int) -> None:
        """Move this port's hot counters into ``slab[base:base+3]``."""
        hot = self._hot
        hb = self._hb
        for offset in range(IN_STRIDE):
            slab[base + offset] = hot[hb + offset]
        self._hot = slab
        self._hb = base

    @property
    def resident_packets(self) -> int:
        """Number of packets currently resident in the port."""
        return self._hot[self._hb + IN_RESIDENT]

    @property
    def min_ready(self) -> int:
        """Earliest cycle at which any head packet clears the pipeline (only
        meaningful while ``resident_packets > 0``)."""
        return self._hot[self._hb + IN_MIN_READY]

    # -- arrival --------------------------------------------------------------
    def receive(self, packet: Packet, vc: int, now: int) -> None:
        """Store an arriving packet into VC ``vc``; it becomes routable after
        the router pipeline latency."""
        self._buf_allocate(vc, packet.size_phits)
        packet.current_vc = vc
        ready = now + self.pipeline_latency
        queue = self.queues[vc]
        if queue is None:
            queue = self.queues[vc] = []
        queue.append((packet, ready))
        hot = self._hot
        base = self._hb
        resident = hot[base] + 1
        hot[base] = resident
        if resident == 1 or ready < hot[base + 1]:
            hot[base + 1] = ready
        # A recorded blocked verdict never covers this new head, so it must
        # be re-evaluated (the head only becomes routable at ``ready``).
        hot[base + 2] = -1
        if self.on_occupancy is not None:
            self.on_occupancy(vc, packet.size_phits, self.buffer.occupancy(vc), now)

    # -- head access -------------------------------------------------------------
    def head(self, vc: int, now: int) -> Optional[Packet]:
        """Head packet of VC ``vc`` if it has cleared the pipeline, else None."""
        queue = self.queues[vc]
        if not queue:
            return None
        packet, ready = queue[0]
        return packet if ready <= now else None

    def pop(self, vc: int, now: int, minimal: bool) -> Packet:
        """Remove the head packet of ``vc``, free its space and return credits."""
        packet, _ = self.queues[vc].pop(0)
        self.head_plans[vc] = None
        self._buf_release(vc, packet.size_phits)
        hot = self._hot
        base = self._hb
        resident = hot[base] - 1
        hot[base] = resident
        hot[base + 2] = -1  # head changed: any blocked verdict is stale
        if resident:
            min_ready = -1
            for queue in self.queues:
                if queue:
                    ready = queue[0][1]
                    if min_ready < 0 or ready < min_ready:
                        min_ready = ready
            hot[base + 1] = min_ready
        if self.credit_channel is not None:
            self.credit_channel.send_credit(vc, packet.size_phits, minimal, now)
        if self.on_occupancy is not None:
            self.on_occupancy(vc, -packet.size_phits, self.buffer.occupancy(vc), now)
        return packet

    def occupancy(self, vc: int) -> int:
        return self.buffer.occupancy(vc)

    def is_empty(self) -> bool:
        return self.resident_packets == 0


class OutputPort:
    """Network output port: credit tracker, output buffer and link access."""

    __slots__ = (
        "port_id", "link_type", "credits", "output_buffer_capacity",
        "_pending_releases", "link", "packets_forwarded", "_hot", "_hb",
        "_debit",
    )

    def __init__(
        self,
        port_id: int,
        link_type: LinkType,
        credit_tracker: CreditTracker,
        output_buffer_phits: int,
    ) -> None:
        self.port_id = port_id
        self.link_type = link_type
        self.credits = credit_tracker
        self.output_buffer_capacity = output_buffer_phits
        #: (cycle, phits) reclamations applied lazily by buffer_space_for —
        #: cheaper than scheduling one engine event per transmitted packet.
        #: A plain list, not a deque: it holds at most the few transmissions
        #: in flight on one link, and an empty deque costs ~11x the memory
        #: of an empty list — measurable with one instance per output port
        #: at 10^5-endpoint scale.
        self._pending_releases: list[tuple[int, int]] = []
        self.link: Optional[Link] = None
        #: utilization accounting.
        self.packets_forwarded = 0
        #: hot-state slab slice [xbar_busy, grant_stamp, grants, buf_occ].
        #: The grant stamp makes the per-cycle grant counter self-resetting,
        #: so the allocator never sweeps output ports at the top of a cycle.
        self._hot: list = [0, -1, 0, 0]
        self._hb = 0
        #: grant-time credit debit entry point; the owning router replaces
        #: this with a fused closure for statically partitioned mirrors.
        self._debit = credit_tracker.debit

    def bind_hot_state(self, slab: list, base: int) -> None:
        """Move this port's hot counters into ``slab[base:base+4]``."""
        hot = self._hot
        hb = self._hb
        for offset in range(4):
            slab[base + offset] = hot[hb + offset]
        self._hot = slab
        self._hb = base

    @property
    def xbar_busy_until(self) -> int:
        return self._hot[self._hb + OUT_XBAR_BUSY]

    @property
    def grant_stamp(self) -> int:
        return self._hot[self._hb + OUT_GRANT_STAMP]

    @property
    def grants_this_cycle(self) -> int:
        return self._hot[self._hb + OUT_GRANTS]

    @property
    def output_buffer_occupancy(self) -> int:
        return self._hot[self._hb + OUT_BUF_OCC]

    def attach_link(self, link: Link) -> None:
        self.link = link

    # -- admission -----------------------------------------------------------------
    def buffer_space_for(self, phits: int, now: Optional[int] = None) -> bool:
        """Room for ``phits`` in the output buffer (after matured releases)?

        ``now`` lets the port apply pending lazy reclamations first; omit it
        for a pure occupancy check (e.g. the post-grant assertion).
        """
        hot = self._hot
        index = self._hb + OUT_BUF_OCC
        if now is not None:
            pending = self._pending_releases
            while pending and pending[0][0] <= now:
                hot[index] -= pending.pop(0)[1]
        return hot[index] + phits <= self.output_buffer_capacity

    def schedule_release(self, cycle: int, phits: int) -> None:
        """Reclaim ``phits`` of output buffer at ``cycle`` (applied lazily).

        Transmissions finish in FIFO order on the single attached link, so
        the pending queue is naturally sorted by cycle.
        """
        self._pending_releases.append((cycle, phits))


class EjectionPort:
    """Consumption port of one node for one message class (1 phit/cycle)."""

    __slots__ = ("node", "msg_class", "packets_consumed", "phits_consumed",
                 "_hot", "_hb")

    def __init__(self, node: int, msg_class: MessageClass) -> None:
        self.node = node
        self.msg_class = msg_class
        self.packets_consumed = 0
        self.phits_consumed = 0
        #: hot-state slab slice [busy_until].
        self._hot: list = [0]
        self._hb = 0

    def bind_hot_state(self, slab: list, base: int) -> None:
        slab[base] = self._hot[self._hb]
        self._hot = slab
        self._hb = base

    @property
    def busy_until(self) -> int:
        return self._hot[self._hb]

    def idle_at(self, now: int) -> bool:
        return self._hot[self._hb] <= now

    def consume(self, packet: Packet, now: int) -> int:
        """Start consuming ``packet``; returns its completion cycle."""
        if self._hot[self._hb] > now:
            raise RuntimeError("ejection port busy")
        done = now + packet.size_phits
        self._hot[self._hb] = done
        self.packets_consumed += 1
        self.phits_consumed += packet.size_phits
        return done
