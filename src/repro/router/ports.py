"""Router ports: network inputs, network outputs, injection and ejection.

The router is combined input-output buffered (Section IV): every network
input port holds per-VC queues backed by a
:class:`~repro.buffers.base.BufferOrganization`, every network output port
holds a small output buffer that decouples crossbar traversal from link
serialization, and each attached node owns an injection port (three deep VC
buffers in Table V) and two consumption (ejection) ports — one for requests,
one for replies — so that request-reply protocol deadlock is resolved at the
endpoints as in Cray Cascade.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..buffers.base import BufferOrganization
from ..core.link_types import LinkType, MessageClass
from ..link import CreditChannel, Link
from ..packet import Packet
from .credits import CreditTracker


class InputPort:
    """Per-VC queues of a network input port (or an injection port)."""

    def __init__(
        self,
        port_id: int,
        link_type: Optional[LinkType],
        num_vcs: int,
        buffer: BufferOrganization,
        pipeline_latency: int,
        is_injection: bool = False,
    ) -> None:
        if buffer.num_vcs != num_vcs:
            raise ValueError("buffer organization VC count must match num_vcs")
        self.port_id = port_id
        self.link_type = link_type
        self.num_vcs = num_vcs
        self.buffer = buffer
        self.pipeline_latency = pipeline_latency
        self.is_injection = is_injection
        #: per-VC FIFO of (packet, ready_cycle) pairs.
        self.queues: list[Deque[tuple[Packet, int]]] = [deque() for _ in range(num_vcs)]
        #: reverse channel returning credits to the upstream output port.
        self.credit_channel: Optional[CreditChannel] = None
        #: round-robin pointer over VCs used by the allocator.
        self.rr_pointer = 0
        #: crossbar availability of this input.
        self.xbar_busy_until = 0
        #: number of packets currently resident in the port.
        self.resident_packets = 0
        #: earliest cycle at which any head packet clears the pipeline; the
        #: allocator skips the whole port while ``min_ready`` is in the future
        #: (only meaningful while ``resident_packets > 0``).
        self.min_ready = 0
        #: probe dispatch ``hook(vc, delta_phits, occupancy, now)``; None (the
        #: default) keeps the no-probe receive/pop paths dispatch-free.
        self.on_occupancy = None

    # -- arrival --------------------------------------------------------------
    def receive(self, packet: Packet, vc: int, now: int) -> None:
        """Store an arriving packet into VC ``vc``; it becomes routable after
        the router pipeline latency."""
        self.buffer.allocate(vc, packet.size_phits)
        packet.current_vc = vc
        ready = now + self.pipeline_latency
        self.queues[vc].append((packet, ready))
        self.resident_packets += 1
        if self.resident_packets == 1 or ready < self.min_ready:
            self.min_ready = ready
        if self.on_occupancy is not None:
            self.on_occupancy(vc, packet.size_phits, self.buffer.occupancy(vc), now)

    # -- head access -------------------------------------------------------------
    def head(self, vc: int, now: int) -> Optional[Packet]:
        """Head packet of VC ``vc`` if it has cleared the pipeline, else None."""
        queue = self.queues[vc]
        if not queue:
            return None
        packet, ready = queue[0]
        return packet if ready <= now else None

    def pop(self, vc: int, now: int, minimal: bool) -> Packet:
        """Remove the head packet of ``vc``, free its space and return credits."""
        packet, _ = self.queues[vc].popleft()
        self.buffer.release(vc, packet.size_phits)
        self.resident_packets -= 1
        if self.resident_packets:
            min_ready = -1
            for queue in self.queues:
                if queue:
                    ready = queue[0][1]
                    if min_ready < 0 or ready < min_ready:
                        min_ready = ready
            self.min_ready = min_ready
        if self.credit_channel is not None:
            self.credit_channel.send_credit(vc, packet.size_phits, minimal, now)
        if self.on_occupancy is not None:
            self.on_occupancy(vc, -packet.size_phits, self.buffer.occupancy(vc), now)
        return packet

    def has_head_ready_in(self, after: int, now: int) -> bool:
        """Any head packet that became routable in the window ``(after, now]``?

        Used to invalidate a recorded allocation blockage: heads that cleared
        the router pipeline after the blockage verdict were never evaluated
        by it.
        """
        for queue in self.queues:
            if queue:
                ready = queue[0][1]
                if after < ready <= now:
                    return True
        return False

    def next_head_ready_after(self, now: int) -> int:
        """Earliest head-packet ready time strictly after ``now`` (-1 if none).

        Needed when the port already has a routable-but-blocked head: the
        next head to clear the pipeline must re-trigger allocation even
        though ``min_ready`` is already in the past.
        """
        next_ready = -1
        for queue in self.queues:
            if queue:
                ready = queue[0][1]
                if ready > now and (next_ready < 0 or ready < next_ready):
                    next_ready = ready
        return next_ready

    def occupancy(self, vc: int) -> int:
        return self.buffer.occupancy(vc)

    def is_empty(self) -> bool:
        return self.resident_packets == 0


class OutputPort:
    """Network output port: credit tracker, output buffer and link access."""

    def __init__(
        self,
        port_id: int,
        link_type: LinkType,
        credit_tracker: CreditTracker,
        output_buffer_phits: int,
    ) -> None:
        self.port_id = port_id
        self.link_type = link_type
        self.credits = credit_tracker
        self.output_buffer_capacity = output_buffer_phits
        self.output_buffer_occupancy = 0
        #: (cycle, phits) reclamations applied lazily by buffer_space_for —
        #: cheaper than scheduling one engine event per transmitted packet.
        self._pending_releases: Deque[tuple[int, int]] = deque()
        self.xbar_busy_until = 0
        self.link: Optional[Link] = None
        #: grants handed out in the cycle ``grant_stamp`` (bounded by the
        #: speedup); the stamp makes the counter self-resetting, so the
        #: allocator never has to sweep output ports at the top of a cycle.
        self.grants_this_cycle = 0
        self.grant_stamp = -1
        #: utilization accounting.
        self.packets_forwarded = 0

    def attach_link(self, link: Link) -> None:
        self.link = link

    # -- admission -----------------------------------------------------------------
    def buffer_space_for(self, phits: int, now: Optional[int] = None) -> bool:
        """Room for ``phits`` in the output buffer (after matured releases)?

        ``now`` lets the port apply pending lazy reclamations first; omit it
        for a pure occupancy check (e.g. the post-grant assertion).
        """
        if now is not None:
            pending = self._pending_releases
            while pending and pending[0][0] <= now:
                self.output_buffer_occupancy -= pending.popleft()[1]
        return self.output_buffer_occupancy + phits <= self.output_buffer_capacity

    def schedule_release(self, cycle: int, phits: int) -> None:
        """Reclaim ``phits`` of output buffer at ``cycle`` (applied lazily).

        Transmissions finish in FIFO order on the single attached link, so
        the pending queue is naturally sorted by cycle.
        """
        self._pending_releases.append((cycle, phits))

    def accept(self, packet: Packet) -> None:
        """Reserve output-buffer space for a granted packet.

        The transmission itself is scheduled by the router at grant time
        (its start cycle is fully determined by the crossbar and link
        timers), so the port only accounts for the buffered phits here.
        """
        if not self.buffer_space_for(packet.size_phits):
            raise RuntimeError("output buffer overflow — allocator must check space first")
        self.output_buffer_occupancy += packet.size_phits
        self.packets_forwarded += 1


class EjectionPort:
    """Consumption port of one node for one message class (1 phit/cycle)."""

    def __init__(self, node: int, msg_class: MessageClass) -> None:
        self.node = node
        self.msg_class = msg_class
        self.busy_until = 0
        self.packets_consumed = 0
        self.phits_consumed = 0

    def idle_at(self, now: int) -> bool:
        return self.busy_until <= now

    def consume(self, packet: Packet, now: int) -> int:
        """Start consuming ``packet``; returns its completion cycle."""
        if not self.idle_at(now):
            raise RuntimeError("ejection port busy")
        done = now + packet.size_phits
        self.busy_until = done
        self.packets_consumed += 1
        self.phits_consumed += packet.size_phits
        return done
