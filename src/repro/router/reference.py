"""Full-rescan reference allocator, kept for equivalence testing.

:class:`ReferenceRouter` replaces the specialized incremental allocation
closure of :class:`~repro.router.router.Router` with a deliberately naive
implementation: every cycle it re-evaluates **every** input port and VC from
scratch through the layered object APIs (``OutputPort.buffer_space_for``,
``CreditTracker.free_for``, ``VcSelection.choose``,
``SeparableAllocator.arbitrate`` with :class:`Request` objects), with none of
the fast paths — no per-port blocked verdicts, no iteration skip lists, no
inlined arbitration, no selection specialization, no candidate-resolved slab
indices.

It shares with the fast router exactly the pieces whose *timing* is part of
the simulation semantics: the per-``(port, vc)`` head-plan cache (plan
computation has observable side effects — PAR's in-transit evaluation reads
time-varying congestion — so plans must be computed at the same cycle in
both implementations) and the grant executor.  Everything else is
re-derived, which is what makes ``tests/test_alloc_equivalence.py`` a real
check that the incremental machinery is behaviour-identical to the textbook
full rescan.
"""

from __future__ import annotations

from typing import List

from ..routing.base import EjectionRequest
from .allocator import Request
from .router import NEVER, Router


class ReferenceRouter(Router):
    """Router with the pre-optimization full-rescan allocation pass."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Shadow the specialized closure installed by Router.__init__.
        self._allocate = self._allocate_reference

    def _allocate_reference(self, now: int) -> None:
        """One cycle of iterative input-first separable allocation.

        Logic mirrors the paper's description directly; see the module
        docstring for what is intentionally *not* optimized here.
        """
        self._alloc_sleep_until = -1
        alloc_inputs = self._alloc_inputs
        speedup = self.speedup
        selection = self.selection
        rng = self.rng
        reject_until = NEVER
        credit_mask = 0
        for _iteration in range(speedup):
            requests: List[Request] = []
            retry = NEVER
            for index, port in enumerate(alloc_inputs):
                if port.resident_packets == 0:
                    continue
                busy = self._in_busy[index]
                if busy > now:
                    if busy < retry:
                        retry = busy
                    continue
                if port.min_ready > now:
                    if port.min_ready < reject_until:
                        reject_until = port.min_ready
                    continue
                # Clear any stale verdict state left by a fast pass (the
                # reference never records per-port verdicts itself).
                self._in_state[3 * index + 2] = -1
                request = None
                num_vcs = port.num_vcs
                rr_pointer = self._in_rr[index]
                for offset in range(num_vcs):
                    vc = (rr_pointer + offset) % num_vcs
                    head = port.head(vc, now)
                    if head is None:
                        queue = port.queues[vc]
                        if queue and queue[0][1] > now and queue[0][1] < reject_until:
                            reject_until = queue[0][1]
                        continue
                    packet = head
                    plan = port.head_plans[vc]
                    if plan is None:
                        plan = self._plan_for(port, vc, packet)
                    if isinstance(plan, EjectionRequest):
                        slot = plan.slot
                        if slot < 0:
                            slot = 2 * (plan.node - self.nodes[0]) + plan.msg_class
                            plan.slot = slot
                        ejection = self._eject_flat[slot]
                        if not ejection.idle_at(now):
                            if ejection.busy_until < reject_until:
                                reject_until = ejection.busy_until
                            continue
                        request = Request(
                            input_index=index,
                            input_vc=vc,
                            packet=packet,
                            resource=-1 - slot,
                            candidate=plan,
                        )
                    else:
                        size = packet.size_phits
                        for candidate in plan:
                            op = self.output_ports[candidate.out_port]
                            if op.xbar_busy_until > now:
                                if op.xbar_busy_until < reject_until:
                                    reject_until = op.xbar_busy_until
                                continue
                            if (op.grant_stamp == now
                                    and op.grants_this_cycle >= speedup):
                                if now + 1 < reject_until:
                                    reject_until = now + 1
                                continue
                            if not op.buffer_space_for(size, now):
                                if now + 1 < reject_until:
                                    reject_until = now + 1
                                continue
                            tracker = op.credits
                            vc_range = candidate.vc_range
                            candidates: List[int] = []
                            free: List[int] = []
                            for out_vc in range(vc_range.lo, vc_range.hi + 1):
                                space = tracker.free_for(out_vc)
                                if space >= size:
                                    candidates.append(out_vc)
                                    free.append(space)
                            if not candidates:
                                # Track the credit dependency so the router's
                                # sleep verdict wakes correctly on returns
                                # (conservatively: the whole port span).
                                credit_mask |= self._port_credit_masks[
                                    candidate.out_port
                                ]
                                continue
                            request = Request(
                                input_index=index,
                                input_vc=vc,
                                packet=packet,
                                resource=candidate.out_port,
                                out_vc=selection.choose(candidates, free, rng),
                                candidate=candidate,
                            )
                            break
                    if request is not None:
                        self._in_rr[index] = (vc + 1) % num_vcs
                        requests.append(request)
                        break
            if not requests:
                if _iteration == 0:
                    if reject_until < retry:
                        retry = reject_until
                    if self.on_stall is not None:
                        self.on_stall(self.router_id, now, retry)
                    if self.saturation_board is None:
                        self._alloc_sleep_until = retry
                        self._blocked_credit_mask = credit_mask
                break
            for grant in self.allocator.arbitrate(requests):
                self._execute_grant(
                    (grant.input_index, grant.input_vc, grant.packet,
                     grant.resource, grant.out_vc, grant.candidate),
                    now,
                )
