"""Credit-based flow control with optional min/non-min split accounting.

Each output port keeps a :class:`CreditTracker`: a mirror of the downstream
input port's buffer organization (statically partitioned or DAMQ) plus a
:class:`~repro.core.mincred.PortOccupancyLedger` tagging every outstanding
credit with the routing class of its packet.  The mirror answers the virtual
cut-through admission question ("does VC ``v`` downstream have room for the
whole packet?"); the ledger provides the occupancy metrics used by Piggyback
congestion sensing, including the FlexVC-minCred variant that only counts
minimally-routed packets.
"""

from __future__ import annotations

from ..buffers.base import BufferOrganization
from ..core.mincred import PortOccupancyLedger


class CreditTracker:
    """Upstream view of a downstream input port's free space.

    Hot-path note: when the mirror is statically partitioned, the owning
    router fuses :meth:`debit` (grant time) and :meth:`credit` (return time)
    into closures that update the mirror, the ledger and the router's
    ``_credit_free`` slab in one step (``Router._make_debit`` /
    ``Router.make_credit_sink``).  The methods below remain the canonical
    implementations — DAMQ mirrors, the full-rescan reference router and
    standalone users go through them — and the fused paths must stay
    check-for-check identical to them.
    """

    __slots__ = ("mirror", "ledger")

    def __init__(self, mirror: BufferOrganization) -> None:
        self.mirror = mirror
        self.ledger = PortOccupancyLedger(mirror.num_vcs)

    @property
    def num_vcs(self) -> int:
        return self.mirror.num_vcs

    # -- admission ---------------------------------------------------------------
    def can_send(self, vc: int, phits: int) -> bool:
        return self.mirror.can_accept(vc, phits)

    def free_for(self, vc: int) -> int:
        return self.mirror.free_for(vc)

    # -- mutations ----------------------------------------------------------------
    def debit(self, vc: int, phits: int, minimal: bool) -> None:
        """Consume credits when a packet is granted towards VC ``vc``."""
        self.mirror.allocate(vc, phits)
        self.ledger.add(vc, phits, minimal)

    def credit(self, vc: int, phits: int, minimal: bool) -> None:
        """Return credits when the downstream buffer frees the packet."""
        self.mirror.release(vc, phits)
        self.ledger.remove(vc, phits, minimal)

    # -- occupancy metrics (congestion sensing) ----------------------------------------
    def vc_occupancy(self, vc: int, minimal_only: bool = False) -> int:
        return self.ledger.vc_occupancy(vc, minimal_only)

    def port_occupancy(self, minimal_only: bool = False) -> int:
        return self.ledger.port_occupancy(minimal_only)

    def occupancy_metric(self, per_vc: bool, vc: int, minimal_only: bool) -> int:
        """Unified accessor for the four sensing variants of Figure 8."""
        if per_vc:
            return self.vc_occupancy(vc, minimal_only)
        return self.port_occupancy(minimal_only)
