"""Per-figure experiment generators (Figures 5-11 of the paper).

Every function regenerates the data behind one figure of the evaluation
section and returns it as plain Python structures (lists of
:class:`~repro.experiments.runner.Series` or nested dictionaries) that the
benchmark harness prints and EXPERIMENTS.md records.  Absolute values differ
from the paper because the substrate is a scaled pure-Python simulator (see
DESIGN.md), but the comparative shapes — who wins, by roughly what factor,
where crossovers appear — are the reproduction target.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.arrangement import VcArrangement
from .runner import (
    ExperimentScale,
    Series,
    base_config,
    get_scale,
    load_sweep,
    max_throughput,
)

# ---------------------------------------------------------------------------
# Shared series definitions
# ---------------------------------------------------------------------------

def _oblivious_algorithm(pattern: str) -> str:
    """MIN for uniform patterns, Valiant for adversarial traffic (Section V-A)."""
    return "val" if pattern == "adversarial" else "min"


def oblivious_series(
    scale: ExperimentScale,
    pattern: str,
    *,
    speedup: int = 2,
    local_port_phits: Optional[int] = None,
    global_port_phits: Optional[int] = None,
) -> List[Series]:
    """The five comparison points of Figures 5, 6 and 11."""
    algorithm = _oblivious_algorithm(pattern)
    if algorithm == "min":
        min_arrangement = VcArrangement.single_class(2, 1)
        flexvc_arrangements = [
            ("FlexVC 2/1VCs", VcArrangement.single_class(2, 1)),
            ("FlexVC 4/2VCs", VcArrangement.single_class(4, 2)),
            ("FlexVC 8/4VCs", VcArrangement.single_class(8, 4)),
        ]
    else:  # Valiant under ADV needs at least 4/2 for the baseline.
        min_arrangement = VcArrangement.single_class(4, 2)
        flexvc_arrangements = [
            ("FlexVC 4/2VCs", VcArrangement.single_class(4, 2)),
            ("FlexVC 8/4VCs", VcArrangement.single_class(8, 4)),
        ]

    common = dict(
        pattern=pattern,
        algorithm=algorithm,
        speedup=speedup,
        local_port_phits=local_port_phits,
        global_port_phits=global_port_phits,
    )

    series = [
        Series(
            "Baseline",
            lambda a=min_arrangement: base_config(
                scale, vc_policy="baseline", arrangement=a, **common
            ),
        ),
        Series(
            "DAMQ 75%",
            lambda a=min_arrangement: base_config(
                scale, vc_policy="baseline", arrangement=a,
                buffer_organization="damq", **common
            ),
        ),
    ]
    for label, arrangement in flexvc_arrangements:
        series.append(
            Series(
                label,
                lambda a=arrangement: base_config(
                    scale, vc_policy="flexvc", arrangement=a, **common
                ),
            )
        )
    return series


def request_reply_series(scale: ExperimentScale, pattern: str) -> List[Series]:
    """The request-reply comparison points of Figure 7."""
    algorithm = _oblivious_algorithm(pattern)
    if algorithm == "min":
        baseline_arr = VcArrangement.request_reply((2, 1), (2, 1))
        flexvc_arrangements = [
            ("FlexVC 4/2VCs(2/1+2/1)", VcArrangement.request_reply((2, 1), (2, 1))),
            ("FlexVC 5/3VCs(2/1+3/2)", VcArrangement.request_reply((2, 1), (3, 2))),
            ("FlexVC 5/3VCs(3/2+2/1)", VcArrangement.request_reply((3, 2), (2, 1))),
            ("FlexVC 6/4VCs(2/1+4/3)", VcArrangement.request_reply((2, 1), (4, 3))),
            ("FlexVC 6/4VCs(3/2+3/2)", VcArrangement.request_reply((3, 2), (3, 2))),
            ("FlexVC 6/4VCs(4/3+2/1)", VcArrangement.request_reply((4, 3), (2, 1))),
        ]
    else:
        baseline_arr = VcArrangement.request_reply((4, 2), (4, 2))
        flexvc_arrangements = [
            ("FlexVC 8/4VCs(4/2+4/2)", VcArrangement.request_reply((4, 2), (4, 2))),
            ("FlexVC 10/6VCs(5/3+5/3)", VcArrangement.request_reply((5, 3), (5, 3))),
            ("FlexVC 10/6VCs(6/4+4/2)", VcArrangement.request_reply((6, 4), (4, 2))),
        ]
    common = dict(pattern=pattern, algorithm=algorithm, reactive=True)
    series = [
        Series(
            "Baseline",
            lambda a=baseline_arr: base_config(
                scale, vc_policy="baseline", arrangement=a, **common
            ),
        ),
        Series(
            "DAMQ",
            lambda a=baseline_arr: base_config(
                scale, vc_policy="baseline", arrangement=a,
                buffer_organization="damq", **common
            ),
        ),
    ]
    for label, arrangement in flexvc_arrangements:
        series.append(
            Series(
                label,
                lambda a=arrangement: base_config(
                    scale, vc_policy="flexvc", arrangement=a, **common
                ),
            )
        )
    return series


def adaptive_series(scale: ExperimentScale, pattern: str) -> List[Series]:
    """The Piggyback comparison points of Figure 8 (request-reply traffic)."""
    reference_algorithm = _oblivious_algorithm(pattern)
    reference_arr = (
        VcArrangement.request_reply((2, 1), (2, 1))
        if reference_algorithm == "min"
        else VcArrangement.request_reply((4, 2), (4, 2))
    )
    pb_baseline_arr = VcArrangement.request_reply((4, 2), (4, 2))
    pb_flexvc_arr = VcArrangement.request_reply((4, 2), (2, 1))

    series = [
        Series(
            "MIN/VAL" if reference_algorithm == "val" else "MIN",
            lambda: base_config(
                scale, pattern=pattern, algorithm=reference_algorithm,
                vc_policy="baseline", arrangement=reference_arr, reactive=True,
            ),
        ),
    ]
    for sensing in ("vc", "port"):
        series.append(
            Series(
                f"PB - per {sensing.upper()}",
                lambda s=sensing: base_config(
                    scale, pattern=pattern, algorithm="pb", vc_policy="baseline",
                    arrangement=pb_baseline_arr, reactive=True, pb_sensing=s,
                ),
            )
        )
    for sensing in ("vc", "port"):
        series.append(
            Series(
                f"PB FlexVC - per {sensing.upper()}",
                lambda s=sensing: base_config(
                    scale, pattern=pattern, algorithm="pb", vc_policy="flexvc",
                    arrangement=pb_flexvc_arr, reactive=True, pb_sensing=s,
                ),
            )
        )
    for sensing in ("vc", "port"):
        series.append(
            Series(
                f"PB FlexVC - per {sensing.upper()} minCred",
                lambda s=sensing: base_config(
                    scale, pattern=pattern, algorithm="pb", vc_policy="flexvc",
                    arrangement=pb_flexvc_arr, reactive=True, pb_sensing=s,
                    pb_min_credits_only=True,
                ),
            )
        )
    return series


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

DEFAULT_PATTERNS = ("uniform", "bursty", "adversarial")


def figure5(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, List[Series]]:
    """Figure 5: latency/throughput vs offered load under oblivious routing."""
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    loads = list(loads) if loads is not None else list(scale.loads)
    return {
        pattern: load_sweep(oblivious_series(scale, pattern), loads, seeds)
        for pattern in patterns
    }


def figure6(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    capacities: Optional[Sequence[tuple[int, int]]] = None,
    seeds: Optional[int] = None,
    speedup: int = 2,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 6 (and 11 with ``speedup=1``): max throughput vs buffer capacity.

    Returns ``{pattern: {capacity_label: {series_label: accepted_load}}}``.
    """
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    capacities = list(capacities) if capacities is not None else list(scale.buffer_capacities)
    # The paper omits the smallest capacity for ADV (4/2 VCs do not fit
    # usefully in 64/256 phits); keep all capacities but note that the
    # smallest point is the most distorted one.  Every (pattern, capacity,
    # series) point is an independent job, so the whole figure runs as one
    # flat sweep and parallelizes across all of them.
    flat: List[Series] = []
    for pattern in patterns:
        for local_cap, global_cap in capacities:
            for entry in oblivious_series(
                scale, pattern, speedup=speedup,
                local_port_phits=local_cap, global_port_phits=global_cap,
            ):
                flat.append(
                    Series(f"{pattern}|{local_cap}/{global_cap}|{entry.label}", entry.builder)
                )
    max_throughput(flat, seeds)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for entry in flat:
        pattern, capacity_label, label = entry.label.split("|", 2)
        results.setdefault(pattern, {}).setdefault(capacity_label, {})[label] = (
            entry.results[0].accepted_load
        )
    return results


def figure7(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, List[Series]]:
    """Figure 7: request-reply traffic with oblivious routing."""
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    loads = list(loads) if loads is not None else list(scale.loads)
    return {
        pattern: load_sweep(request_reply_series(scale, pattern), loads, seeds)
        for pattern in patterns
    }


def figure8(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, List[Series]]:
    """Figure 8: Piggyback source-adaptive routing, sensing variants, minCred."""
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    loads = list(loads) if loads is not None else list(scale.loads)
    return {
        pattern: load_sweep(adaptive_series(scale, pattern), loads, seeds)
        for pattern in patterns
    }


FIG9_ARRANGEMENTS: tuple[tuple[str, tuple[tuple[int, int], tuple[int, int]]], ...] = (
    ("4/2 (2/1+2/1)", ((2, 1), (2, 1))),
    ("5/3 (2/1+3/2)", ((2, 1), (3, 2))),
    ("5/3 (3/2+2/1)", ((3, 2), (2, 1))),
    ("6/4 (2/1+4/3)", ((2, 1), (4, 3))),
    ("6/4 (3/2+3/2)", ((3, 2), (3, 2))),
    ("6/4 (4/3+2/1)", ((4, 3), (2, 1))),
)

FIG9_SELECTIONS = ("jsq", "highest", "lowest", "random")


def figure9(
    scale: str | ExperimentScale = "tiny",
    seeds: Optional[int] = None,
    arrangements=FIG9_ARRANGEMENTS,
    selections: Sequence[str] = FIG9_SELECTIONS,
) -> Dict[str, Dict[str, float]]:
    """Figure 9: throughput at 100% load vs VC selection function and VC count.

    Returns ``{arrangement_label: {"Baseline": x, "DAMQ": x, "FlexVC <sel>": x}}``.
    """
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    baseline_arr = VcArrangement.request_reply((2, 1), (2, 1))
    # One flat sweep: the two reference points plus every (arrangement,
    # selection) pair run as independent jobs.
    flat: List[Series] = [
        Series(
            "ref|Baseline",
            lambda: base_config(scale, pattern="uniform", algorithm="min", reactive=True,
                                vc_policy="baseline", arrangement=baseline_arr),
        ),
        Series(
            "ref|DAMQ",
            lambda: base_config(scale, pattern="uniform", algorithm="min", reactive=True,
                                vc_policy="baseline", arrangement=baseline_arr,
                                buffer_organization="damq"),
        ),
    ]
    for label, (request, reply) in arrangements:
        arrangement = VcArrangement.request_reply(request, reply)
        for selection in selections:
            flat.append(
                Series(
                    f"{label}|FlexVC {selection}",
                    lambda a=arrangement, s=selection: base_config(
                        scale, pattern="uniform", algorithm="min", reactive=True,
                        vc_policy="flexvc", arrangement=a, vc_selection=s,
                    ),
                )
            )
    max_throughput(flat, seeds)
    accepted = {entry.label: entry.results[0].accepted_load for entry in flat}
    results: Dict[str, Dict[str, float]] = {}
    for label, _ in arrangements:
        row: Dict[str, float] = {
            "Baseline": accepted["ref|Baseline"],
            "DAMQ": accepted["ref|DAMQ"],
        }
        for selection in selections:
            row[f"FlexVC {selection}"] = accepted[f"{label}|FlexVC {selection}"]
        results[label] = row
    return results


DEFAULT_FIG10_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def figure10(
    scale: str | ExperimentScale = "tiny",
    fractions: Sequence[float] = DEFAULT_FIG10_FRACTIONS,
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> List[Series]:
    """Figure 10: DAMQ throughput vs per-VC private reservation (UN, MIN).

    The 0% point is the configuration the paper reports as deadlocking; the
    returned results carry ``deadlock_suspected`` so callers can verify it.
    """
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    loads = list(loads) if loads is not None else list(scale.loads)
    arrangement = VcArrangement.single_class(2, 1)
    series = [
        Series(
            f"reserved {int(fraction * 100)}%",
            lambda f=fraction: base_config(
                scale, pattern="uniform", algorithm="min", vc_policy="baseline",
                arrangement=arrangement, buffer_organization="damq",
                damq_private_fraction=f,
                local_port_phits=128, global_port_phits=512,
            ),
        )
        for fraction in fractions
    ]
    return load_sweep(series, loads, seeds)


def figure11(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    capacities: Optional[Sequence[tuple[int, int]]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 11: maximum throughput without router speedup (speedup = 1)."""
    return figure6(scale, patterns, capacities, seeds, speedup=1)
