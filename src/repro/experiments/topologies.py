"""Cross-topology sweep series: the FlexVC claims on *any* registered network.

The paper pitches FlexVC as a mechanism for any low-diameter network but only
evaluates Dragonfly and Flattened Butterfly.  This module runs the same
baseline-vs-FlexVC comparison, under every routing algorithm, on any topology
registered with :data:`repro.topology.TOPOLOGIES` — the CLI exposes ``hyperx``
and ``megafly`` directly::

    python -m repro.experiments run hyperx megafly --scale tiny --workers 4

Each figure is a load sweep with one series per ``routing/policy`` pair
(MIN/VAL/PAR/PB x baseline/FlexVC).  VC arrangements are not hard-coded per
topology: for each pair the *smallest feasible* arrangement is picked from a
ladder by asking :meth:`SimulationConfig.validate` — i.e. by the same
topology-declared reference-path machinery the simulator itself uses, so a
newly registered topology gets a correct sweep for free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..config import NetworkConfig, RoutingConfig, SimulationConfig, TrafficConfig
from ..core.arrangement import VcArrangement
from .runner import ExperimentScale, Series, base_config, get_scale, load_sweep

#: (local, global) candidate ladder, ascending in total buffer cost.
ARRANGEMENT_LADDER: tuple[tuple[int, int], ...] = (
    (2, 1), (2, 2), (3, 2), (4, 2), (5, 2), (3, 3), (4, 3), (4, 4),
    (5, 3), (5, 4), (6, 4), (8, 4),
)

ROUTINGS = ("min", "val", "par", "pb")
POLICIES = ("baseline", "flexvc")


def minimal_feasible_arrangement(
    network: NetworkConfig,
    algorithm: str,
    vc_policy: str,
    *,
    reactive: bool = False,
    ladder: Sequence[tuple[int, int]] = ARRANGEMENT_LADDER,
) -> VcArrangement:
    """Smallest arrangement of ``ladder`` that validates for the configuration."""
    last_error: Optional[Exception] = None
    for local, global_ in ladder:
        arrangement = (
            VcArrangement.request_reply((local, global_), (local, global_))
            if reactive
            else VcArrangement.single_class(local, global_)
        )
        candidate = SimulationConfig(
            network=network,
            routing=RoutingConfig(algorithm=algorithm, vc_policy=vc_policy),
            arrangement=arrangement,
            traffic=TrafficConfig(reactive=reactive),
        )
        try:
            candidate.validate()
            return arrangement
        except ValueError as exc:
            last_error = exc
    raise ValueError(
        f"no feasible arrangement in the ladder for {algorithm}/{vc_policy} "
        f"on {network.topology}"
    ) from last_error


def topology_series(
    scale: ExperimentScale,
    topology: str,
    pattern: str = "uniform",
    routings: Sequence[str] = ROUTINGS,
    policies: Sequence[str] = POLICIES,
) -> List[Series]:
    """One series per routing/policy pair on ``topology``."""
    network = scale.network_for(topology)
    series: List[Series] = []
    for routing in routings:
        for policy in policies:
            arrangement = minimal_feasible_arrangement(network, routing, policy)
            label = (
                f"{routing.upper()} {'FlexVC' if policy == 'flexvc' else 'Baseline'} "
                f"{arrangement.request_local}/{arrangement.request_global}VCs"
            )
            series.append(
                Series(
                    label,
                    lambda a=arrangement, r=routing, p=policy: base_config(
                        scale, pattern=pattern, algorithm=r, vc_policy=p,
                        arrangement=a, network=network,
                    ),
                )
            )
    return series


def topology_sweep(
    topology: str,
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = ("uniform",),
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, List[Series]]:
    """Load sweep of every routing/policy pair on ``topology``.

    Returns ``{pattern: [Series, ...]}`` like the figure generators, so the
    CLI renders it with the standard series tables.
    """
    scale = get_scale(scale)
    seeds = seeds if seeds is not None else scale.seeds
    loads = list(loads) if loads is not None else list(scale.loads)
    return {
        pattern: load_sweep(topology_series(scale, topology, pattern), loads, seeds)
        for pattern in patterns
    }


def hyperx_sweep(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = ("uniform",),
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, List[Series]]:
    """All routings x policies on the 3D HyperX substrate."""
    return topology_sweep("hyperx", scale, patterns, loads, seeds)


def megafly_sweep(
    scale: str | ExperimentScale = "tiny",
    patterns: Sequence[str] = ("uniform",),
    loads: Optional[Iterable[float]] = None,
    seeds: Optional[int] = None,
) -> Dict[str, List[Series]]:
    """All routings x policies on the Megafly / Dragonfly+ substrate."""
    return topology_sweep("megafly", scale, patterns, loads, seeds)
