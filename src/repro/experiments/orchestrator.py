"""Parallel sweep orchestration: jobs, backends, result store, contexts.

Every experiment of the paper decomposes into independent *jobs* — one
``(series, load, seed)`` point, each a full :class:`~repro.simulation.Simulation`
run.  This module turns that decomposition into infrastructure:

* :class:`SweepSpec` declaratively describes a sweep (series x loads x seeds)
  and expands it into :class:`Job` objects keyed by a stable hash of the
  complete :class:`~repro.config.SimulationConfig` (plus a coarser
  :func:`network_key` identifying the job's network+routing substrate);
* :func:`run_jobs` executes jobs on a backend — a ``ProcessPoolExecutor``
  when ``workers > 1``, serial otherwise — with bit-identical results either
  way because every job owns its RNG.  Jobs are dispatched in *series-affine
  chunks* (one pool task runs several jobs of the same series back to back),
  which amortizes pickle/IPC overhead and keeps each worker's
  :class:`ArtifactCache` hot: topology graphs and route tables are built once
  per ``network_key`` per worker instead of once per job;
* :class:`~repro.store.ResultStore` (re-exported here) persists results
  keyed by config hash — as a crash-safe append-only journal or the legacy
  monolithic JSON file, see :mod:`repro.store` — so an interrupted sweep
  resumes from what it already computed instead of recomputing, repeated
  invocations are served entirely from cache, and concurrent sweep
  processes can share one journal store;
* opt-in **adaptive scheduling** (:class:`AdaptiveSettings`): each series
  climbs its load ladder low to high, and once
  :func:`~repro.router.saturation.is_saturated_point` flags ``cutoff_after``
  consecutive saturated points the remaining higher loads are recorded as
  provenance-flagged *extrapolated* RunRecords instead of simulated —
  saturated points are the slowest of a sweep and past the knee they carry
  no new information;
* opt-in **convergence-window measurement**
  (:class:`~repro.session.ConvergenceSettings`): executed jobs measure in
  batch windows until confidence intervals tighten, capped at the fixed
  budget (results are keyed separately in the store — never mixed with
  fixed-budget runs);
* :func:`orchestration` installs a process-wide context (worker count,
  store, chunking/adaptive/convergence modes) that the thin wrappers in
  :mod:`repro.experiments.runner` (``load_sweep``/``run_point``/
  ``max_throughput``) consult, so every figure generator, benchmark and
  example inherits parallelism and caching without signature changes.

Default-mode sweeps (no adaptive, no convergence) are bit-identical to
per-job dispatch at any worker count and chunk size — chunking and artifact
reuse are execution-strategy changes only, enforced by
``tests/test_sweep_scale.py``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..cache import BoundedLRU
from ..config import SimulationConfig
from ..faults import FaultSpec
from ..metrics import SimulationResult
from ..record import JobFailure, RunRecord
from ..router.saturation import DEFAULT_SATURATION_MARGIN, is_saturated_point
from ..session import ConvergenceSettings
from ..simulation import SimulationArtifacts, build_artifacts
from ..store import (  # noqa: F401 - historical import surface, see below
    FLUSH_INTERVAL_SECONDS,
    STORE_VERSION,
    JournalStore,
    JsonStore,
    ResultStore,
    StoreError,
)

ConfigBuilder = Callable[[], SimulationConfig]

#: store format version; bump when the result schema changes.
#: v1 stored flat ``SimulationResult`` dicts; v2 stores versioned
#: :class:`~repro.record.RunRecord` payloads (summary + telemetry channels +
#: provenance).  v1 files are migrated in memory on open — no re-simulation.
STORE_VERSION = 2

#: default minimum seconds between mid-sweep store flushes (resumability vs
#: I/O); per-store override via ``ResultStore(flush_interval=...)``.
FLUSH_INTERVAL_SECONDS = 5.0

#: store-key marker of adaptive-mode extrapolated records (the full suffix
#: also hashes the :class:`AdaptiveSettings`, see :func:`_adaptive_key_suffix`).
#: Extrapolated results never live under the plain config key, so a later
#: non-adaptive sweep over the same store re-simulates those points instead
#: of silently serving synthesized data.
EXTRAPOLATED_KEY_SUFFIX = ":extrapolated"

#: upper bound of the automatic chunk size (resumability granularity: an
#: interrupted sweep loses at most this many in-flight jobs per worker).
DEFAULT_MAX_CHUNK_JOBS = 8


# ---------------------------------------------------------------------------
# Config hashing
# ---------------------------------------------------------------------------

def _hash_payload(payload: Dict[str, object]) -> str:
    """Stable content hash of a JSON-serializable payload."""
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def config_key(config: SimulationConfig, backend: str = "python") -> str:
    """Stable content hash of a complete simulation configuration.

    Dataclass-derived JSON with sorted keys, so two structurally equal
    configurations (even if built through different code paths) share a key.

    A non-default simulation ``backend`` is hashed into the key so a result
    store never silently mixes backends; the python default adds nothing,
    keeping every pre-existing stored key valid.  (The coarser
    :func:`network_key` deliberately ignores the backend — construction
    artifacts are backend-independent.)
    """
    payload = asdict(config)
    if not config.faults:
        # Mirror the backend rule: the empty default adds nothing, keeping
        # every pre-existing (no-fault) stored key and golden valid.
        payload.pop("faults", None)
    if backend != "python":
        payload["backend"] = backend
    return _hash_payload(payload)


def _network_payload(config_payload: Dict[str, object]) -> Dict[str, object]:
    """The sub-sections of an ``asdict(config)`` payload a network key hashes.

    Single source of truth for what identifies a job's reusable construction
    artifacts — :func:`network_key` and ``SweepSpec.expand`` both hash this.
    """
    return {
        "network": config_payload["network"],
        "routing": config_payload["routing"],
    }


def network_key(config: SimulationConfig) -> str:
    """Content hash of the configuration's network+routing sub-sections.

    Coarser than :func:`config_key`: jobs differing only in traffic, load,
    seed or cycle counts share a network key, which is exactly the
    granularity at which construction artifacts (topology graph, route
    tables, dense adjacency) are reusable.  A 4-series x 10-load x 5-seed
    sweep carries ~4 distinct network keys for its 200 jobs, so each worker
    builds artifacts ~4 times instead of 200.
    """
    return _hash_payload(_network_payload(asdict(config)))


@lru_cache(maxsize=None)
def _converge_key_suffix(settings: ConvergenceSettings) -> str:
    """Store-key suffix isolating convergence-mode results.

    Convergence-window measurement changes the measurement procedure (and
    thus the summary), so its results must never be served to — or from —
    fixed-budget sweeps sharing the store.
    """
    return ":cw" + _hash_payload(asdict(settings))[:8]


@lru_cache(maxsize=None)
def _adaptive_key_suffix(settings: "AdaptiveSettings") -> str:
    """Store-key suffix of extrapolated records under given adaptive settings.

    Hashing the settings into the key mirrors :func:`_converge_key_suffix`:
    an extrapolation is only valid under the margin/cutoff that produced it,
    so a rerun with e.g. a stricter margin (whose cutoff would not have
    fired at those loads) must re-decide instead of serving stale
    synthesized points.
    """
    return EXTRAPOLATED_KEY_SUFFIX + ":" + _hash_payload(asdict(settings))[:8]


# ---------------------------------------------------------------------------
# Jobs and sweep specifications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """One independent simulation run (a single series/load/seed point).

    ``probes`` names registry probes (:data:`repro.probes.PROBES`) attached
    to the run; they add telemetry channels to the persisted RunRecord but
    never change the summary (probed runs are summary-identical by the
    zero-cost dispatch design), so the cache key deliberately ignores them.

    ``network_key`` identifies the job's reusable construction artifacts
    (see :class:`ArtifactCache`); ``converge`` switches the job's
    measurement to the convergence-window controller, which *does* change
    the summary and therefore suffixes the store key (:func:`store_key`).
    """

    key: str
    series: str
    load: float
    seed: int
    config: SimulationConfig
    probes: Tuple[str, ...] = ()
    network_key: str = ""
    converge: Optional[ConvergenceSettings] = None
    #: simulation stepping backend ("python"/"vectorized"/"auto"); part of
    #: the cache key (a non-python backend hashes into ``key``) but not of
    #: ``network_key`` — construction artifacts are backend-independent.
    backend: str = "python"
    #: route-table front-end ("auto"/"dense"/"lazy"); an execution strategy
    #: with identical answers, so it is part of *neither* cache key —
    #: stored results and construction artifacts are shared across modes.
    route_table_mode: str = "auto"


def store_key(job: Job) -> str:
    """Result-store key of a job (config hash, plus measurement-mode suffix)."""
    if job.converge is None:
        return job.key
    return job.key + _converge_key_suffix(job.converge)


@dataclass
class SweepSpec:
    """Declarative description of a sweep: series x loads x seeds.

    ``series`` maps labels to load-agnostic config builders; the offered load
    and seed of every expanded job are applied on top of the built config.
    """

    series: Sequence[Tuple[str, ConfigBuilder]]
    loads: Sequence[float]
    seeds: int = 1
    name: str = "sweep"
    #: probe registry names attached to every expanded job.
    probes: Tuple[str, ...] = ()
    #: simulation backend of every expanded job (see :mod:`repro.kernel`).
    backend: str = "python"

    def __post_init__(self) -> None:
        labels = [label for label, _ in self.series]
        if len(labels) != len(set(labels)):
            raise ValueError(f"duplicate series labels in sweep {self.name!r}: {labels}")
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        from ..kernel import VALID_BACKENDS

        if self.backend not in VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {VALID_BACKENDS}, got {self.backend!r}"
            )

    def expand(self) -> List[Job]:
        """Expand into independent jobs (deterministic order).

        Hashing works off **one** ``asdict`` serialization pass per series:
        the base config's payload is converted once and only the load/seed
        leaves are rewritten per job, instead of re-walking the whole
        dataclass tree for each of the series x loads x seeds points.  The
        resulting keys are identical to ``config_key(job.config)`` (asserted
        by the orchestrator tests); the per-series network key falls out of
        the same pass.
        """
        jobs: List[Job] = []
        probes = tuple(self.probes)
        backend = self.backend
        for label, builder in self.series:
            base = builder()
            payload = asdict(base)
            net_key = _hash_payload(_network_payload(payload))
            if not base.faults:
                # Mirror config_key()'s empty-faults omission.
                payload.pop("faults", None)
            if backend != "python":
                # Mirror config_key()'s backend entry so expanded keys stay
                # identical to config_key(job.config, backend=job.backend).
                payload["backend"] = backend
            traffic_payload = payload["traffic"]
            for load in self.loads:
                loaded = base.with_load(load)
                traffic_payload["load"] = loaded.traffic.load
                for offset in range(self.seeds):
                    config = loaded.with_seed(loaded.seed + offset)
                    payload["seed"] = config.seed
                    jobs.append(
                        Job(
                            key=_hash_payload(payload),
                            series=label,
                            load=load,
                            seed=config.seed,
                            config=config,
                            probes=probes,
                            network_key=net_key,
                            backend=backend,
                        )
                    )
        return jobs


# ---------------------------------------------------------------------------
# Result store (moved to the repro.store package in PR 10)
# ---------------------------------------------------------------------------
#
# The store lived in this module through PR 9; it is now :mod:`repro.store`
# (journaled backend with advisory locking, torn-write recovery and
# compaction, plus the legacy JSON backend with fsynced rename and
# concurrent-writer detection).  The names are re-imported above because
# every test, example and downstream script spells
# ``from repro.experiments.orchestrator import ResultStore`` — the facade
# still auto-detects the on-disk format, so none of those callers change.


# ---------------------------------------------------------------------------
# Per-worker artifact cache
# ---------------------------------------------------------------------------

class ArtifactCache:
    """Bounded memo of ``network_key -> SimulationArtifacts`` (one per process).

    Worker processes live for a whole sweep, so jobs of the same series (and
    of every series sharing a network/routing substrate) reuse one topology
    graph and one dense route table per worker instead of rebuilding them
    per job.  Everything cached is immutable after construction, which keeps
    reuse bit-identical to fresh builds (asserted by the sweep-scale tests).
    """

    def __init__(self, max_entries: int = 8) -> None:
        self._entries = BoundedLRU(max_entries)
        self.hits = 0
        self.misses = 0

    def get(
        self,
        key: str,
        config: SimulationConfig,
        route_table_mode: str = "auto",
    ) -> SimulationArtifacts:
        """Artifacts for ``key``, built under ``route_table_mode`` on a miss.

        The cache key stays mode-free on purpose: every route-table mode
        answers identically, so artifacts built under one mode are valid
        (and cheaper than a rebuild) for jobs requesting another.
        """
        artifacts = self._entries.get(key)
        if artifacts is not None:
            self.hits += 1
            return artifacts
        self.misses += 1
        artifacts = build_artifacts(config, key, route_table_mode=route_table_mode)
        self._entries.put(key, artifacts)
        return artifacts

    def counters(self) -> Tuple[int, int]:
        return self.hits, self.misses


#: the process-local cache ``_execute_job`` consults (one per pool worker;
#: the parent process uses it too for serial execution).
_WORKER_ARTIFACTS = ArtifactCache()


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------

def _apply_test_seams(job_key: str) -> None:
    """Deterministic worker-fault injection for the resilience tests.

    ``REPRO_TEST_CRASH_KEY=<key>[:<marker-path>]`` hard-kills the worker
    process when it picks up job ``<key>``; with a marker path the crash
    fires only while the marker file does not exist (crash-once: the retry
    succeeds), without one it fires on every attempt (retry exhaustion).
    ``REPRO_TEST_HANG_KEY=<key>`` makes the job sleep
    ``REPRO_TEST_HANG_SECONDS`` (default 60) — far past any test timeout —
    standing in for a wedged simulation.  Both are no-ops unless the
    environment variables are set, which only the orchestrator tests do.
    """
    crash_spec = os.environ.get("REPRO_TEST_CRASH_KEY")
    if crash_spec:
        crash_key, _, marker = crash_spec.partition(":")
        if job_key == crash_key and (not marker or not os.path.exists(marker)):
            if marker:
                with open(marker, "w", encoding="utf-8") as handle:
                    handle.write("crashed")
            os._exit(17)
    hang_key = os.environ.get("REPRO_TEST_HANG_KEY")
    if hang_key and job_key == hang_key:
        time.sleep(float(os.environ.get("REPRO_TEST_HANG_SECONDS", "60")))


def _execute_job(job: Job) -> Tuple[str, RunRecord]:
    """Top-level worker function (must be picklable for the process pool).

    Runs the job through the phased Session API so probe names on the job
    yield telemetry channels in the returned :class:`RunRecord`; without
    probes the session is wiring-free and bit-identical to the legacy
    one-shot runner.  Construction artifacts come from the process-local
    :class:`ArtifactCache`; jobs carrying convergence settings measure via
    :meth:`~repro.session.Session.measure_converged` instead of one fixed
    window.
    """
    from ..probes import Probe, make_probes
    from ..session import Session
    from ..simulation import Simulation

    _apply_test_seams(job.key)
    artifacts = _WORKER_ARTIFACTS.get(
        job.network_key or network_key(job.config), job.config,
        route_table_mode=job.route_table_mode,
    )
    probes = make_probes(job.probes)
    backend = job.backend
    if backend != "python" and any(
        getattr(type(probe), "on_alloc_stall", None) is not Probe.on_alloc_stall
        for probe in probes
    ):
        # Stall probes observe the scalar allocator's verdict machinery,
        # which the vectorized kernel never engages; resolve the degrade
        # here (instead of letting Session warn per job) — results are
        # identical either way and provenance records the active backend.
        backend = "python"
    simulation = Simulation(job.config, artifacts=artifacts, backend=backend)
    session = Session(simulation=simulation, probes=probes)
    session.warmup()
    if job.converge is not None:
        session.measure_converged(job.converge)
    else:
        session.measure()
    return job.key, session.record()


#: Per-chunk result: ordered (config-hash, record-or-failure) pairs plus the
#: chunk's artifact-cache (hits, misses) delta.  Failures only appear on the
#: pool executor's resilience paths (crash-retry exhaustion, job timeout).
_ChunkResult = Tuple[List[Tuple[str, "RunRecord | JobFailure"]], Tuple[int, int]]


def _execute_chunk(jobs: Sequence[Job]) -> _ChunkResult:
    """Run a series-affine chunk of jobs in this process, one after another.

    Returns the per-job records in order plus the chunk's artifact-cache
    ``(hits, misses)`` delta, so the parent can report how much construction
    work the cache absorbed.
    """
    hits_before, misses_before = _WORKER_ARTIFACTS.counters()
    records = [_execute_job(job) for job in jobs]
    hits_after, misses_after = _WORKER_ARTIFACTS.counters()
    return records, (hits_after - hits_before, misses_after - misses_before)


class SerialBackend:
    """Run jobs one after another in this process.

    Kept (with :class:`ProcessPoolBackend`) as the public per-job execution
    API; :func:`run_jobs` itself dispatches through the chunk executors
    below.  The backend-vs-chunked equivalence is part of the bit-identity
    test surface.
    """

    def run(self, jobs: Sequence[Job], on_result: Callable[[Job, RunRecord], None]) -> None:
        for job in jobs:
            _, record = _execute_job(job)
            on_result(job, record)


class ProcessPoolBackend:
    """Run jobs on a ``ProcessPoolExecutor`` (falls back to serial on failure).

    Process pools can be unavailable (restricted sandboxes, missing
    ``/dev/shm`` semaphores); in that case the sweep silently degrades to the
    serial backend rather than failing — results are identical either way.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, jobs: Sequence[Job], on_result: Callable[[Job, RunRecord], None]) -> None:
        try:
            executor = ProcessPoolExecutor(max_workers=self.workers)
        except OSError:  # pragma: no cover - environment-dependent
            SerialBackend().run(jobs, on_result)
            return
        try:
            pending = {executor.submit(_execute_job, job): job for job in jobs}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    job = pending.pop(future)
                    _, record = future.result()
                    on_result(job, record)
        finally:
            executor.shutdown()


# -- chunk executors ---------------------------------------------------------
#
# The chunk executors support *incremental* submission (the adaptive
# scheduler submits a series' next load step only after judging the previous
# one), which the fire-and-forget backend API above cannot express.

class _SerialChunkExecutor:
    """Chunk execution in this process; lazily runs on ``next_completed``."""

    def __init__(self) -> None:
        self._queue: deque = deque()

    def submit(self, chunk: Sequence[Job]) -> None:
        self._queue.append(tuple(chunk))

    def pending(self) -> bool:
        return bool(self._queue)

    def next_completed(self) -> "Tuple[Tuple[Job, ...], _ChunkResult]":
        chunk = self._queue.popleft()
        return chunk, _execute_chunk(chunk)

    def shutdown(self) -> None:
        pass


class _PoolChunkExecutor:
    """Chunk execution on a process pool, drained one chunk at a time.

    Two failure modes are survived instead of propagated:

    * **worker crash** (``BrokenProcessPool``): a dead worker kills the whole
      pool — every in-flight future fails at once.  The pool is rebuilt and
      every lost chunk resubmitted, each with a bounded retry budget
      (:data:`MAX_RETRIES` crashes per chunk) and a short linear backoff; a
      chunk that keeps killing workers resolves to per-job
      :class:`JobFailure` entries instead of looping forever.
    * **job timeout** (``job_timeout`` seconds per job): chunks carry a
      submission deadline of ``len(chunk) * job_timeout``.  An expired chunk
      cannot be cancelled cooperatively — its worker is wedged — so the pool
      is terminated and rebuilt; innocent in-flight chunks are resubmitted
      as-is, the expired chunk is re-split into single-job chunks to pinpoint
      the hang, and a single job that *still* exceeds its deadline resolves
      to ``JobFailure("timeout")``.

    ``on_retry`` fires before any resubmission so the caller can checkpoint
    (``run_jobs`` flushes the result store: completed points must not depend
    on the retried chunk ever succeeding).
    """

    #: pool-crash retries per chunk before it resolves to failures.
    MAX_RETRIES = 3
    #: linear backoff base between crash retries (seconds).
    RETRY_BACKOFF_S = 0.1

    def __init__(
        self,
        executor: ProcessPoolExecutor,
        workers: int,
        job_timeout: Optional[float] = None,
        on_retry: Optional[Callable[[Tuple[Job, ...], str], None]] = None,
    ) -> None:
        self._executor = executor
        self._workers = workers
        self._job_timeout = job_timeout
        self._on_retry = on_retry
        #: future -> (chunk, wall-clock deadline).
        self._futures: Dict[object, Tuple[Tuple[Job, ...], float]] = {}
        self._done: deque = deque()
        #: chunk identity (its job keys) -> crash retries spent so far.
        self._retries: Dict[Tuple[str, ...], int] = {}

    @staticmethod
    def _chunk_id(chunk: Tuple[Job, ...]) -> Tuple[str, ...]:
        return tuple(job.key for job in chunk)

    def submit(self, chunk: Sequence[Job]) -> None:
        chunk = tuple(chunk)
        deadline = (
            time.monotonic() + self._job_timeout * len(chunk)
            if self._job_timeout is not None
            else math.inf
        )
        try:
            future = self._executor.submit(_execute_chunk, chunk)
        except BrokenProcessPool:
            # The pool died between our last wait and this submit (e.g. a
            # just-retried chunk crashed its worker again).  Rebuild and
            # submit to the fresh pool; the earlier in-flight futures are
            # already failed and will surface as lost on the next wait.
            self._rebuild_pool(terminate=False)
            future = self._executor.submit(_execute_chunk, chunk)
        self._futures[future] = (chunk, deadline)

    def pending(self) -> bool:
        return bool(self._futures) or bool(self._done)

    def next_completed(self) -> "Tuple[Tuple[Job, ...], _ChunkResult]":
        while not self._done:
            self._wait_once()
        return self._done.popleft()

    def _wait_once(self) -> None:
        timeout = None
        if self._job_timeout is not None and self._futures:
            nearest = min(deadline for _, deadline in self._futures.values())
            timeout = max(0.0, nearest - time.monotonic())
        done, _ = wait(self._futures, timeout=timeout, return_when=FIRST_COMPLETED)
        lost: List[Tuple[Job, ...]] = []
        for future in done:
            chunk, _deadline = self._futures.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool:
                lost.append(chunk)
                continue
            self._done.append((chunk, result))
        if lost:
            # A broken pool dooms every other in-flight future too: reclaim
            # them all, rebuild once, then retry each lost chunk.
            lost.extend(chunk for chunk, _ in self._futures.values())
            self._futures.clear()
            self._rebuild_pool(terminate=False)
            for chunk in lost:
                self._retry_crashed(chunk)
        elif not done and self._job_timeout is not None:
            self._reap_expired()

    def _rebuild_pool(self, terminate: bool) -> None:
        if terminate:
            # A wedged worker never returns from user code; cooperative
            # shutdown would block forever, so kill the worker processes.
            processes = getattr(self._executor, "_processes", None)
            for process in list((processes or {}).values()):
                process.terminate()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=self._workers)

    def _retry_crashed(self, chunk: Tuple[Job, ...]) -> None:
        attempts = self._retries.get(self._chunk_id(chunk), 0) + 1
        self._retries[self._chunk_id(chunk)] = attempts
        if attempts > self.MAX_RETRIES:
            # Crash counts are circumstantial: a pool crash dooms *every*
            # in-flight chunk, so an innocent chunk sharing the pool with a
            # crasher accumulates retries it never caused.  Settle guilt
            # with one isolated run on a throwaway single-worker pool.
            result = self._probe_solo(chunk)
            if result is not None:
                self._done.append((chunk, result))
                return
            failure = JobFailure(
                reason="worker-crash",
                detail=(
                    f"chunk killed its worker pool {attempts} times, "
                    "including an isolated single-worker probe"
                ),
                retries=attempts,
            )
            self._done.append(
                (chunk, ([(job.key, failure) for job in chunk], (0, 0)))
            )
            return
        if self._on_retry is not None:
            self._on_retry(chunk, "worker-crash")
        time.sleep(self.RETRY_BACKOFF_S * attempts)
        self.submit(chunk)

    def _probe_solo(self, chunk: Tuple[Job, ...]) -> Optional[_ChunkResult]:
        """Run ``chunk`` alone on a fresh one-worker pool; None if it crashes
        (or times out) there too — which makes the chunk definitively guilty."""
        if self._on_retry is not None:
            self._on_retry(chunk, "worker-crash")
        solo = ProcessPoolExecutor(max_workers=1)
        timeout = (
            self._job_timeout * len(chunk) if self._job_timeout is not None else None
        )
        try:
            return solo.submit(_execute_chunk, chunk).result(timeout=timeout)
        except (BrokenProcessPool, FuturesTimeoutError):
            processes = getattr(solo, "_processes", None)
            for process in list((processes or {}).values()):
                process.terminate()
            return None
        finally:
            solo.shutdown(wait=False, cancel_futures=True)

    def _reap_expired(self) -> None:
        now = time.monotonic()
        expired: List[Tuple[Job, ...]] = []
        innocent: List[Tuple[Job, ...]] = []
        for chunk, deadline in self._futures.values():
            (expired if deadline <= now else innocent).append(chunk)
        if not expired:
            return
        self._futures.clear()
        self._rebuild_pool(terminate=True)
        for chunk in innocent:
            # Collateral of the pool kill, not suspects: resubmit unchanged
            # (fresh deadline — their elapsed time was lost with the pool).
            self.submit(chunk)
        for chunk in expired:
            if len(chunk) == 1:
                failure = JobFailure(
                    reason="timeout",
                    detail=f"exceeded per-job timeout of {self._job_timeout:g}s",
                    retries=self._retries.get(self._chunk_id(chunk), 0),
                )
                self._done.append((chunk, ([(chunk[0].key, failure)], (0, 0))))
            else:
                # Can't tell which job wedged: re-split so each gets its own
                # deadline and only the true offender fails.
                if self._on_retry is not None:
                    self._on_retry(chunk, "timeout")
                for job in chunk:
                    self.submit((job,))

    def shutdown(self) -> None:
        # On the normal path nothing is pending; on interrupt, don't block
        # on in-flight chunks whose results would be discarded anyway, and
        # drop queued ones so workers wind down promptly.
        self._executor.shutdown(wait=False, cancel_futures=True)


def _make_chunk_executor(
    workers: int,
    job_timeout: Optional[float] = None,
    on_retry: Optional[Callable[[Tuple[Job, ...], str], None]] = None,
) -> "_SerialChunkExecutor | _PoolChunkExecutor":
    if workers > 1:
        try:
            return _PoolChunkExecutor(
                ProcessPoolExecutor(max_workers=workers),
                workers=workers,
                job_timeout=job_timeout,
                on_retry=on_retry,
            )
        except OSError:  # pragma: no cover - environment-dependent
            pass
    return _SerialChunkExecutor()


def _chunk_pending(
    pending: Sequence[Job], chunk_size: Optional[int], workers: int
) -> List[List[Job]]:
    """Group pending jobs into series-affine chunks.

    Jobs of one chunk always belong to one series (identical network key),
    so a worker executing the chunk builds its artifacts at most once.  The
    automatic size balances IPC amortization against load balance and
    resumability: roughly four chunks per worker, capped at
    :data:`DEFAULT_MAX_CHUNK_JOBS` jobs.
    """
    by_series: Dict[str, List[Job]] = {}
    for job in pending:
        by_series.setdefault(job.series, []).append(job)
    size = chunk_size
    if size is None or size <= 0:
        size = max(
            1,
            min(
                DEFAULT_MAX_CHUNK_JOBS,
                math.ceil(len(pending) / (max(1, workers) * 4)),
            ),
        )
    chunks: List[List[Job]] = []
    for series_jobs in by_series.values():
        for start in range(0, len(series_jobs), size):
            chunks.append(series_jobs[start:start + size])
    # Heaviest chunks first (longest-processing-time heuristic): high-load
    # points cost the most wall clock, so scheduling them early shortens the
    # straggler tail on multi-core pools.  Submission order never affects
    # results — jobs are independent and keyed by content hash.
    chunks.sort(key=lambda chunk: -max(job.load for job in chunk))
    return chunks


# ---------------------------------------------------------------------------
# Adaptive scheduling
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdaptiveSettings:
    """Saturation cutoff of the adaptive sweep scheduler (opt-in).

    Each series is processed low load to high.  After every completed
    ``(series, load)`` point the seed-averaged summary is judged by
    :func:`~repro.router.saturation.is_saturated_point` with ``margin``;
    once ``cutoff_after`` *consecutive* points are saturated, all remaining
    higher loads of that series are recorded as extrapolated copies of the
    last simulated point (see :meth:`repro.record.RunRecord.extrapolate`)
    instead of simulated.  Extrapolated records are stored under a suffixed
    key (:data:`EXTRAPOLATED_KEY_SUFFIX`), so they never masquerade as
    simulated results in later non-adaptive runs.
    """

    cutoff_after: int = 2
    margin: float = DEFAULT_SATURATION_MARGIN

    def __post_init__(self) -> None:
        if self.cutoff_after < 1:
            raise ValueError("cutoff_after must be >= 1")
        if not 0.0 <= self.margin < 1.0:
            raise ValueError("margin must be in [0, 1)")


class _SeriesPlan:
    """Per-series load ladder the adaptive scheduler walks bottom-up."""

    def __init__(self, series: str, jobs: Sequence[Job]) -> None:
        self.series = series
        by_load: Dict[float, List[Job]] = {}
        for job in jobs:
            by_load.setdefault(job.load, []).append(job)
        #: (load, jobs-at-load) in ascending load order.
        self.steps: List[Tuple[float, List[Job]]] = sorted(by_load.items())
        self.index = 0
        self.consecutive_saturated = 0
        #: jobs of the current step still executing (the step is judged only
        #: once every seed's result is in).
        self.outstanding = 0
        #: seed -> (summary, config key) of the last evaluated (hence
        #: simulated/cached) step, the extrapolation base once the cutoff
        #: fires.
        self.last_summaries: Dict[int, SimulationResult] = {}
        self.last_keys: Dict[int, str] = {}
        self.last_load: Optional[float] = None

    def remaining_jobs(self) -> List[Job]:
        return [job for _, jobs in self.steps[self.index:] for job in jobs]


def _run_adaptive(
    executor: "_SerialChunkExecutor | _PoolChunkExecutor",
    unique_jobs: Sequence[Job],
    results: Dict[str, SimulationResult],
    settings: AdaptiveSettings,
    on_result: Callable[[Job, RunRecord], None],
    on_artifact_stats: Callable[[int, int], None],
) -> None:
    """Drive per-series load ladders with a saturation cutoff.

    Series advance independently (parallelism across series); within one
    series each load step — all of its seeds, one chunk — must complete
    before the next is submitted, because the next submission *is* the
    scheduling decision.
    """
    from ..simulation import average_results

    by_series: Dict[str, List[Job]] = {}
    for job in unique_jobs:
        by_series.setdefault(job.series, []).append(job)
    plans = {
        series: _SeriesPlan(series, jobs) for series, jobs in by_series.items()
    }
    #: keys of jobs that resolved to a JobFailure — never resubmitted.
    failed_keys: set = set()

    def extrapolate_remaining(plan: _SeriesPlan) -> None:
        base_load = plan.last_load
        for job in plan.remaining_jobs():
            if job.key in results:
                # Already resolved (served from a previous sweep's store
                # entry — simulated or extrapolated): nothing to synthesize.
                continue
            source_summary = plan.last_summaries.get(job.seed)
            source_key = plan.last_keys.get(job.seed)
            if source_summary is None:  # degenerate: no same-seed base
                source_summary = next(iter(plan.last_summaries.values()))
                source_key = next(iter(plan.last_keys.values()), None)
            source = RunRecord.from_summary(source_summary, config_key=source_key)
            record = RunRecord.extrapolate(
                source,
                offered_load=job.load,
                extra_provenance={
                    "config_key": job.key,
                    "adaptive": {
                        "cutoff_after": settings.cutoff_after,
                        "margin": settings.margin,
                        "base_load": base_load,
                    },
                },
            )
            on_result(job, record)
        plan.index = len(plan.steps)

    def advance(plan: _SeriesPlan) -> None:
        # Re-entrancy: advance() only runs when the plan has nothing in
        # flight (plan.outstanding == 0) — either initially or after the
        # last job of its current step completed.
        while plan.index < len(plan.steps):
            if (
                plan.consecutive_saturated >= settings.cutoff_after
                and plan.last_summaries
            ):
                extrapolate_remaining(plan)
                return
            load, step_jobs = plan.steps[plan.index]
            missing = [
                job for job in step_jobs
                if job.key not in results and job.key not in failed_keys
            ]
            if missing:
                # One task per job: the seeds of a step are independent, so
                # they spread across the pool even for single-series sweeps;
                # only the judge-then-continue decision is a barrier.
                for job in missing:
                    executor.submit([job])
                plan.outstanding = len(missing)
                return
            # Step fully resolved (simulated or cached): judge saturation.
            summaries = [
                results[job.key] for job in step_jobs if job.key in results
            ]
            if not summaries:
                # Every seed of the step failed terminally; without a point
                # to judge, abandon the rest of this series' ladder (no
                # extrapolation from failures).
                plan.index = len(plan.steps)
                return
            point = average_results(summaries)
            if is_saturated_point(point, settings.margin):
                plan.consecutive_saturated += 1
            else:
                plan.consecutive_saturated = 0
            plan.last_summaries = {
                job.seed: results[job.key] for job in step_jobs
                if job.key in results
            }
            plan.last_keys = {
                job.seed: job.key for job in step_jobs if job.key in results
            }
            plan.last_load = load
            plan.index += 1

    for plan in plans.values():
        advance(plan)
    while executor.pending():
        chunk, (records, artifact_stats) = executor.next_completed()
        on_artifact_stats(*artifact_stats)
        for job, (_, record) in zip(chunk, records):
            if isinstance(record, JobFailure):
                failed_keys.add(job.key)
            on_result(job, record)
        plan = plans[chunk[0].series]
        plan.outstanding -= 1
        if plan.outstanding == 0:
            advance(plan)


# ---------------------------------------------------------------------------
# Orchestration context
# ---------------------------------------------------------------------------

@dataclass
class OrchestrationContext:
    """Process-wide execution defaults consulted by the sweep wrappers."""

    workers: int = 1
    store: Optional[ResultStore] = None
    #: probe registry names attached to every executed (non-cached) job.
    probes: Tuple[str, ...] = ()
    #: jobs per pool task (None = automatic; 1 = per-job dispatch).
    chunk_size: Optional[int] = None
    #: saturation-cutoff scheduling (None = off: simulate every point).
    adaptive: Optional[AdaptiveSettings] = None
    #: convergence-window measurement (None = off: one fixed window).
    converge: Optional[ConvergenceSettings] = None
    #: stream progress/cache-hit lines to stderr while sweeping.
    verbose: bool = False
    #: simulation backend applied to jobs still carrying the python default
    #: (job keys are recomputed so stores never mix backends).
    backend: str = "python"
    #: route-table front-end applied to jobs still carrying the auto
    #: default (never part of cache keys — modes answer identically).
    route_table_mode: str = "auto"
    #: per-job wall-clock budget in seconds (None = unlimited).  Enforced by
    #: the pool executor only; a hung job resolves to a stored
    #: :class:`JobFailure` instead of wedging the sweep.
    job_timeout: Optional[float] = None
    #: fault-injection spec applied to every job whose config carries no
    #: schedule of its own (resolved per config; rewrites job keys, since
    #: non-empty schedules hash into ``config_key``).
    faults: Optional["FaultSpec"] = None


_CONTEXT_STACK: List[OrchestrationContext] = [OrchestrationContext()]


def current_context() -> OrchestrationContext:
    return _CONTEXT_STACK[-1]


@contextmanager
def orchestration(
    workers: int = 1,
    store: Optional[ResultStore | str] = None,
    probes: Sequence[str] = (),
    chunk_size: Optional[int] = None,
    adaptive: Optional[AdaptiveSettings] = None,
    converge: Optional[ConvergenceSettings] = None,
    verbose: bool = False,
    backend: str = "python",
    route_table_mode: str = "auto",
    job_timeout: Optional[float] = None,
    faults: Optional["FaultSpec"] = None,
) -> Iterator[OrchestrationContext]:
    """Install parallel/caching defaults for every sweep run inside the block.

    ``store`` may be a :class:`ResultStore` or a path (a store is opened and
    flushed on exit).  ``probes`` names registry probes attached to every job
    executed inside the block (cached points are still served from the store
    without telemetry — use ``refresh``/``--force`` to re-run them probed).
    ``chunk_size``, ``adaptive`` and ``converge`` select the sweep-scale
    execution modes documented on :func:`run_jobs`.  ``backend`` selects the
    simulation stepping backend (:mod:`repro.kernel`) for every job that
    does not pin its own; non-python backends rewrite job cache keys.
    ``route_table_mode`` selects the route-table front-end
    (:func:`~repro.routing.route_table.make_route_table`) the same way;
    being answer-identical, it never touches cache keys.
    """
    if isinstance(store, str):
        store = ResultStore(store)
    from ..kernel import VALID_BACKENDS
    from ..routing.route_table import ROUTE_TABLE_MODES

    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"backend must be one of {VALID_BACKENDS}, got {backend!r}"
        )
    if route_table_mode not in ROUTE_TABLE_MODES:
        raise ValueError(
            f"route_table_mode must be one of {ROUTE_TABLE_MODES}, "
            f"got {route_table_mode!r}"
        )
    context = OrchestrationContext(
        workers=max(1, int(workers)),
        store=store,
        probes=tuple(probes),
        chunk_size=chunk_size,
        adaptive=adaptive,
        converge=converge,
        verbose=verbose,
        backend=backend,
        route_table_mode=route_table_mode,
        job_timeout=job_timeout,
        faults=faults,
    )
    _CONTEXT_STACK.append(context)
    try:
        yield context
    finally:
        _CONTEXT_STACK.pop()
        if context.store is not None:
            context.store.flush()


# ---------------------------------------------------------------------------
# Sweep execution
# ---------------------------------------------------------------------------

@dataclass
class JobRunStats:
    """Everything :func:`run_jobs` produced and counted.

    Iterates as the historical ``(results, cache_hits, executed)`` triple,
    so existing ``results, hits, executed = run_jobs(...)`` call sites keep
    working unchanged.
    """

    results: Dict[str, SimulationResult]
    cache_hits: int = 0
    executed: int = 0
    #: adaptive-mode points recorded by extrapolation instead of simulation.
    extrapolated: int = 0
    #: artifact-cache hits/misses accumulated across all workers.
    artifact_hits: int = 0
    artifact_misses: int = 0
    elapsed_s: float = 0.0
    #: executed-job counts by *active* simulation backend (from each
    #: record's provenance, so auto-mode and probe fallbacks count under
    #: the backend that actually ran).
    backend_executed: Dict[str, int] = field(default_factory=dict)
    #: chunk resubmissions after worker crashes / timeout re-splits.
    retries: int = 0
    #: jobs that resolved to a stored :class:`JobFailure` instead of a
    #: result (crash-retry exhaustion or per-job timeout).
    failed: int = 0
    #: job key -> terminal failure, for callers that want the reasons.
    failures: Dict[str, JobFailure] = field(default_factory=dict)
    #: records absorbed from other writer processes sharing the store
    #: (journal format only — a peer sweep's flushed results picked up
    #: before dispatch turn into cache hits instead of re-simulations).
    store_absorbed: int = 0

    def __iter__(self) -> Iterator[object]:
        return iter((self.results, self.cache_hits, self.executed))


class _ProgressReporter:
    """Throttled ``done/total`` + cache accounting lines on stderr."""

    def __init__(self, total: int, stats: JobRunStats, min_interval: float = 1.0) -> None:
        self.total = total
        self.stats = stats
        self.min_interval = min_interval
        self.start = time.monotonic()
        self._last_print = 0.0

    def update(self, final: bool = False) -> None:
        now = time.monotonic()
        if not final and now - self._last_print < self.min_interval:
            return
        self._last_print = now
        stats = self.stats
        done = stats.cache_hits + stats.executed + stats.extrapolated
        elapsed = max(now - self.start, 1e-9)
        simulated_rate = stats.executed / elapsed
        backends = ", ".join(
            f"{name} {count} ({count / elapsed:.2f}/s)"
            for name, count in sorted(stats.backend_executed.items())
        ) or "none yet"
        print(
            f"[sweep] {done}/{self.total} points | {stats.executed} simulated, "
            f"{stats.cache_hits} cached, {stats.extrapolated} extrapolated | "
            f"artifact cache {stats.artifact_hits} hits / "
            f"{stats.artifact_misses} misses | {simulated_rate:.2f} jobs/s | "
            f"backend {backends}",
            file=sys.stderr,
        )


def _apply_fault_spec(job: Job, spec: FaultSpec) -> Job:
    """Inject a resolved fault schedule into a job, recomputing its key.

    Fault schedules hash into ``config_key``, so fault runs never collide
    with pristine store entries.  Jobs that already carry a schedule of
    their own are left untouched (idempotent by construction).
    """
    if job.config.faults:
        return job
    fault_config = replace(job.config, faults=spec.resolve(job.config))
    return replace(
        job,
        config=fault_config,
        key=config_key(fault_config, backend=job.backend),
    )


def run_jobs(
    jobs: Sequence[Job],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[Job, SimulationResult], None]] = None,
    chunk_size: Optional[int] = None,
    adaptive: Optional[AdaptiveSettings] = None,
    converge: Optional[ConvergenceSettings] = None,
    verbose: Optional[bool] = None,
    job_timeout: Optional[float] = None,
) -> JobRunStats:
    """Execute jobs, serving duplicates and stored results from cache.

    Returns a :class:`JobRunStats` (unpacks as the historical
    ``(results_by_key, cache_hits, executed)`` triple).  All parameters
    default to the active :func:`orchestration` context.

    Execution is chunked: pending jobs are grouped into series-affine chunks
    (``chunk_size`` jobs per pool task; automatic when None) so each worker
    builds construction artifacts once per network key and per-job IPC is
    amortized.  Results still stream to the result store per completed
    chunk, and the store is flushed on interrupt, so a killed sweep resumes
    from its latest completed points.

    ``adaptive`` enables the saturation cutoff (see
    :class:`AdaptiveSettings`); ``converge`` switches executed jobs to
    convergence-window measurement (stored under mode-suffixed keys).  Both
    are off by default, keeping default sweeps bit-identical to per-job
    dispatch at any worker count.
    """
    context = current_context()
    if workers is None:
        workers = context.workers
    if store is None:
        store = context.store
    if chunk_size is None:
        chunk_size = context.chunk_size
    if adaptive is None:
        adaptive = context.adaptive
    if converge is None:
        converge = context.converge
    if verbose is None:
        verbose = context.verbose
    if job_timeout is None:
        job_timeout = context.job_timeout

    # Dedup and normalize: context probes/convergence apply to every job
    # that does not carry its own (probes never change keys; convergence
    # does, via the store-key suffix, so it must land before cache lookup).
    unique: List[Job] = []
    seen_keys: set = set()
    for job in jobs:
        if job.key in seen_keys:
            continue
        seen_keys.add(job.key)
        if not job.probes and context.probes:
            job = replace(job, probes=context.probes)
        if context.faults is not None:
            job = _apply_fault_spec(job, context.faults)
        if converge is not None and job.converge is None:
            job = replace(job, converge=converge)
        if job.backend == "python" and context.backend != "python":
            # Unlike probes, the backend is part of the cache key: recompute
            # it so stored results never silently mix backends.
            job = replace(
                job,
                backend=context.backend,
                key=config_key(job.config, backend=context.backend),
            )
        if job.route_table_mode == "auto" and context.route_table_mode != "auto":
            # Answer-identical execution strategy: no key changes.
            job = replace(job, route_table_mode=context.route_table_mode)
        unique.append(job)

    stats = JobRunStats(results={})
    results = stats.results
    if store is not None:
        # Re-read the shared journal before deciding what to dispatch: a
        # concurrent sweep process may have flushed results since we opened
        # the store, and every absorbed record below becomes a cache hit
        # instead of a re-simulation.  No-op (returns 0) for JSON stores.
        stats.store_absorbed = store.refresh_from_disk()
    pending: List[Job] = []
    for job in unique:
        cached = None
        if store is not None:
            keys = [store_key(job)]
            if adaptive is not None:
                # A previous adaptive sweep under the *same settings* may
                # have extrapolated this point.
                keys.append(store_key(job) + _adaptive_key_suffix(adaptive))
            record = store.get_record_any(*keys)
            cached = None if record is None else record.summary
        if cached is not None:
            results[job.key] = cached
            stats.cache_hits += 1
        else:
            pending.append(job)

    reporter = _ProgressReporter(total=len(unique), stats=stats) if verbose else None
    start_time = time.monotonic()
    flush_interval = (
        store.flush_interval if store is not None else FLUSH_INTERVAL_SECONDS
    )
    last_flush = time.monotonic()

    def on_result(job: Job, record: "RunRecord | JobFailure") -> None:
        nonlocal last_flush
        if isinstance(record, JobFailure):
            # Terminal failure: record *why* the point is missing.  The
            # failure entry reads as a store miss, so a later sweep (or the
            # same one re-run) re-attempts the job instead of caching it.
            stats.failed += 1
            stats.failures[job.key] = record
            if store is not None:
                store.put_failure(
                    store_key(job),
                    record,
                    meta={"series": job.series, "load": job.load, "seed": job.seed},
                )
            if reporter is not None:
                reporter.update()
            return
        results[job.key] = record.summary
        active_backend = record.provenance.get("backend", job.backend)
        if record.is_extrapolated:
            stats.extrapolated += 1
        else:
            stats.executed += 1
            stats.backend_executed[active_backend] = (
                stats.backend_executed.get(active_backend, 0) + 1
            )
        if store is not None:
            key = store_key(job)
            meta = {
                "series": job.series, "load": job.load, "seed": job.seed,
                "backend": active_backend,
            }
            if record.is_extrapolated:
                # Only the adaptive scheduler synthesizes records, so the
                # settings-hashed suffix is always resolvable here.
                key += _adaptive_key_suffix(adaptive)
                meta["extrapolated"] = True
            store.put_record(key, record, meta=meta)
            # Periodic flush keeps interrupted sweeps resumable without
            # rewriting the whole store once per completed job.
            now = time.monotonic()
            if now - last_flush >= flush_interval:
                store.flush()
                last_flush = now
        if progress is not None:
            progress(job, record.summary)
        if reporter is not None:
            reporter.update()

    def on_artifact_stats(hits: int, misses: int) -> None:
        stats.artifact_hits += hits
        stats.artifact_misses += misses

    def on_retry(chunk: Tuple[Job, ...], reason: str) -> None:
        # Checkpoint before any resubmission: the completed points must
        # survive even if the retried chunk keeps killing workers.
        nonlocal last_flush
        stats.retries += 1
        if store is not None:
            store.flush()
            last_flush = time.monotonic()
        if verbose:
            print(
                f"[sweep] retrying {len(chunk)}-job chunk after {reason}",
                file=sys.stderr,
            )

    executor = _make_chunk_executor(
        int(workers or 1), job_timeout=job_timeout, on_retry=on_retry
    )
    try:
        if adaptive is not None:
            _run_adaptive(
                executor, unique, results, adaptive, on_result, on_artifact_stats
            )
        else:
            for chunk in _chunk_pending(pending, chunk_size, int(workers or 1)):
                executor.submit(chunk)
            while executor.pending():
                chunk, (records, artifact_stats) = executor.next_completed()
                on_artifact_stats(*artifact_stats)
                for job, (_, record) in zip(chunk, records):
                    on_result(job, record)
    finally:
        # Interrupts (KeyboardInterrupt included) land here: persist every
        # completed point *first* — the flush must not depend on how long
        # worker teardown takes or on a second interrupt arriving during it.
        if store is not None:
            store.flush()
        executor.shutdown()
    stats.elapsed_s = time.monotonic() - start_time
    if reporter is not None:
        reporter.update(final=True)
    return stats


@dataclass
class SweepOutcome:
    """Everything a sweep produced, plus cache accounting."""

    spec: SweepSpec
    #: per-job results keyed by config hash.
    raw: Dict[str, SimulationResult]
    #: jobs in expansion order (for reassembly).
    jobs: List[Job]
    cache_hits: int = 0
    executed: int = 0
    #: adaptive-mode points extrapolated instead of simulated.
    extrapolated: int = 0
    #: construction-artifact cache accounting (summed over workers).
    artifact_hits: int = 0
    artifact_misses: int = 0

    def seed_results(self, series: str, load: float) -> List[SimulationResult]:
        """Per-seed results of one point, in seed order."""
        return [
            self.raw[job.key]
            for job in self.jobs
            if job.series == series and job.load == load
        ]

    def point(self, series: str, load: float) -> SimulationResult:
        """Seed-averaged result of one (series, load) point."""
        from ..simulation import average_results

        return average_results(self.seed_results(series, load))

    def table(self) -> Dict[Tuple[str, float], SimulationResult]:
        """All seed-averaged points keyed by ``(series_label, load)``."""
        seen: Dict[Tuple[str, float], SimulationResult] = {}
        for job in self.jobs:
            key = (job.series, job.load)
            if key not in seen:
                seen[key] = self.point(job.series, job.load)
        return seen


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[Job, SimulationResult], None]] = None,
    chunk_size: Optional[int] = None,
    adaptive: Optional[AdaptiveSettings] = None,
    converge: Optional[ConvergenceSettings] = None,
) -> SweepOutcome:
    """Expand a sweep specification and execute all of its jobs."""
    # Adopt the context backend *before* expansion so the outcome's job
    # keys match the (backend-qualified) keys run_jobs executes under.
    context = current_context()
    if spec.backend == "python" and context.backend != "python":
        spec = replace(spec, backend=context.backend)
    jobs = spec.expand()
    if context.faults is not None:
        # Same pre-adoption as the backend above: fault schedules rewrite
        # job keys, and the outcome's job list must carry the keys the
        # results are stored under.
        jobs = [_apply_fault_spec(job, context.faults) for job in jobs]
    stats = run_jobs(
        jobs,
        workers=workers,
        store=store,
        progress=progress,
        chunk_size=chunk_size,
        adaptive=adaptive,
        converge=converge,
    )
    return SweepOutcome(
        spec=spec,
        raw=stats.results,
        jobs=jobs,
        cache_hits=stats.cache_hits,
        executed=stats.executed,
        extrapolated=stats.extrapolated,
        artifact_hits=stats.artifact_hits,
        artifact_misses=stats.artifact_misses,
    )


def run_seed_jobs(
    config: SimulationConfig,
    seeds: int,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> List[SimulationResult]:
    """Run one configuration under ``seeds`` consecutive seeds (in seed order)."""
    spec = SweepSpec(
        series=[("point", lambda: config)],
        loads=[config.traffic.load],
        seeds=max(1, seeds),
        name="seeds",
    )
    outcome = run_sweep(spec, workers=workers, store=store)
    return outcome.seed_results("point", config.traffic.load)
