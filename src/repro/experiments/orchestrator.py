"""Parallel sweep orchestration: jobs, backends, result store, contexts.

Every experiment of the paper decomposes into independent *jobs* — one
``(series, load, seed)`` point, each a full :class:`~repro.simulation.Simulation`
run.  This module turns that decomposition into infrastructure:

* :class:`SweepSpec` declaratively describes a sweep (series x loads x seeds)
  and expands it into :class:`Job` objects keyed by a stable hash of the
  complete :class:`~repro.config.SimulationConfig`;
* :func:`run_jobs` executes jobs on a backend — a ``ProcessPoolExecutor``
  when ``workers > 1``, serial otherwise — with bit-identical results either
  way because every job owns its RNG;
* :class:`ResultStore` persists results as JSON keyed by config hash, so an
  interrupted sweep resumes from what it already computed instead of
  recomputing, and repeated invocations are served entirely from cache;
* :func:`orchestration` installs a process-wide context (worker count +
  store) that the thin wrappers in :mod:`repro.experiments.runner`
  (``load_sweep``/``run_point``/``max_throughput``) consult, so every figure
  generator, benchmark and example inherits parallelism and caching without
  signature changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import SimulationConfig
from ..metrics import SimulationResult
from ..record import RunRecord

ConfigBuilder = Callable[[], SimulationConfig]

#: store format version; bump when the result schema changes.
#: v1 stored flat ``SimulationResult`` dicts; v2 stores versioned
#: :class:`~repro.record.RunRecord` payloads (summary + telemetry channels +
#: provenance).  v1 files are migrated in memory on open — no re-simulation.
STORE_VERSION = 2

#: minimum seconds between mid-sweep store flushes (resumability vs I/O).
FLUSH_INTERVAL_SECONDS = 5.0


# ---------------------------------------------------------------------------
# Config hashing
# ---------------------------------------------------------------------------

def config_key(config: SimulationConfig) -> str:
    """Stable content hash of a complete simulation configuration.

    Dataclass-derived JSON with sorted keys, so two structurally equal
    configurations (even if built through different code paths) share a key.
    """
    payload = json.dumps(asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


# ---------------------------------------------------------------------------
# Jobs and sweep specifications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """One independent simulation run (a single series/load/seed point).

    ``probes`` names registry probes (:data:`repro.probes.PROBES`) attached
    to the run; they add telemetry channels to the persisted RunRecord but
    never change the summary (probed runs are summary-identical by the
    zero-cost dispatch design), so the cache key deliberately ignores them.
    """

    key: str
    series: str
    load: float
    seed: int
    config: SimulationConfig
    probes: Tuple[str, ...] = ()


@dataclass
class SweepSpec:
    """Declarative description of a sweep: series x loads x seeds.

    ``series`` maps labels to load-agnostic config builders; the offered load
    and seed of every expanded job are applied on top of the built config.
    """

    series: Sequence[Tuple[str, ConfigBuilder]]
    loads: Sequence[float]
    seeds: int = 1
    name: str = "sweep"
    #: probe registry names attached to every expanded job.
    probes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        labels = [label for label, _ in self.series]
        if len(labels) != len(set(labels)):
            raise ValueError(f"duplicate series labels in sweep {self.name!r}: {labels}")
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")

    def expand(self) -> List[Job]:
        """Expand into independent jobs (deterministic order)."""
        jobs: List[Job] = []
        for label, builder in self.series:
            base = builder()
            for load in self.loads:
                loaded = base.with_load(load)
                for offset in range(self.seeds):
                    config = loaded.with_seed(loaded.seed + offset)
                    jobs.append(
                        Job(
                            key=config_key(config),
                            series=label,
                            load=load,
                            seed=config.seed,
                            config=config,
                            probes=tuple(self.probes),
                        )
                    )
        return jobs


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------

class ResultStore:
    """JSON store of run records keyed by config hash.

    The whole store is one file, rewritten atomically (tmp + rename) on
    flush.  ``refresh=True`` turns reads into misses while still persisting
    new results — the CLI's ``--force``.

    Entries are versioned :class:`~repro.record.RunRecord` payloads (store
    format v2).  Opening a v1 file — flat ``SimulationResult`` dicts as
    written by earlier code — migrates every entry in memory (marking the
    store dirty so the next flush persists v2) without re-running a single
    simulation.
    """

    def __init__(self, path: str, refresh: bool = False) -> None:
        self.path = str(path)
        self.refresh = refresh
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: config hash -> {"record": <RunRecord dict>, "meta": {...}}.
        self._results: Dict[str, dict] = {}
        self._dirty = False
        #: number of v1 entries migrated at open time (diagnostics).
        self.migrated = 0
        if os.path.exists(self.path):
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                # A damaged cache is no cache: start fresh rather than crash
                # (results are recomputable by definition).
                payload = {}
            if isinstance(payload, dict):
                version = payload.get("version")
                if version == STORE_VERSION:
                    self._results = payload.get("results", {})
                elif version == 1:
                    self._migrate_v1(payload.get("results", {}))

    def _migrate_v1(self, entries: Dict[str, dict]) -> None:
        """Wrap v1 ``{"result": ..., "meta": ...}`` entries into v2 records."""
        for key, entry in entries.items():
            try:
                record = RunRecord.migrate_v1(entry["result"], meta=entry.get("meta"))
            except (KeyError, TypeError):  # pragma: no cover - damaged entry
                continue
            self._results[key] = {
                "record": record.to_dict(), "meta": entry.get("meta", {})
            }
            self.migrated += 1
        if self.migrated:
            self._dirty = True  # persist the upgraded format on next flush

    def __len__(self) -> int:
        return len(self._results)

    def get(self, key: str) -> Optional[SimulationResult]:
        """Stored summary for ``key`` (None on miss) — compatibility view."""
        record = self.get_record(key)
        return None if record is None else record.summary

    def get_record(self, key: str) -> Optional[RunRecord]:
        """Full stored record (summary + telemetry channels + provenance)."""
        if self.refresh:
            return None
        entry = self._results.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return RunRecord.from_dict(entry["record"])

    def entries(self) -> Iterator[Tuple[str, RunRecord, dict]]:
        """Iterate ``(key, record, meta)`` without touching hit/miss counters."""
        for key, entry in self._results.items():
            yield key, RunRecord.from_dict(entry["record"]), entry.get("meta", {})

    def put(self, key: str, result: SimulationResult, meta: Optional[dict] = None) -> None:
        """Store a bare summary (wrapped into a channel-less record)."""
        self.put_record(key, RunRecord.from_summary(result), meta=meta)

    def put_record(
        self, key: str, record: RunRecord, meta: Optional[dict] = None
    ) -> None:
        self._results[key] = {"record": record.to_dict(), "meta": meta or {}}
        self.writes += 1
        self._dirty = True

    def flush(self) -> None:
        if not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = {"version": STORE_VERSION, "results": self._results}
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):  # pragma: no cover - error path
                os.unlink(tmp_path)
        self._dirty = False


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------

def _execute_job(job: Job) -> Tuple[str, RunRecord]:
    """Top-level worker function (must be picklable for the process pool).

    Runs the job through the phased Session API so probe names on the job
    yield telemetry channels in the returned :class:`RunRecord`; without
    probes the session is wiring-free and bit-identical to the legacy
    one-shot runner.
    """
    from ..probes import make_probes
    from ..session import Session

    session = Session(job.config, probes=make_probes(job.probes))
    session.warmup()
    session.measure()
    return job.key, session.record()


class SerialBackend:
    """Run jobs one after another in this process."""

    def run(self, jobs: Sequence[Job], on_result: Callable[[Job, RunRecord], None]) -> None:
        for job in jobs:
            _, record = _execute_job(job)
            on_result(job, record)


class ProcessPoolBackend:
    """Run jobs on a ``ProcessPoolExecutor`` (falls back to serial on failure).

    Process pools can be unavailable (restricted sandboxes, missing
    ``/dev/shm`` semaphores); in that case the sweep silently degrades to the
    serial backend rather than failing — results are identical either way.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, jobs: Sequence[Job], on_result: Callable[[Job, RunRecord], None]) -> None:
        try:
            executor = ProcessPoolExecutor(max_workers=self.workers)
        except OSError:  # pragma: no cover - environment-dependent
            SerialBackend().run(jobs, on_result)
            return
        try:
            pending = {executor.submit(_execute_job, job): job for job in jobs}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    job = pending.pop(future)
                    _, record = future.result()
                    on_result(job, record)
        finally:
            executor.shutdown()


def make_backend(workers: Optional[int]):
    workers = int(workers or 1)
    return ProcessPoolBackend(workers) if workers > 1 else SerialBackend()


# ---------------------------------------------------------------------------
# Orchestration context
# ---------------------------------------------------------------------------

@dataclass
class OrchestrationContext:
    """Process-wide execution defaults consulted by the sweep wrappers."""

    workers: int = 1
    store: Optional[ResultStore] = None
    #: probe registry names attached to every executed (non-cached) job.
    probes: Tuple[str, ...] = ()


_CONTEXT_STACK: List[OrchestrationContext] = [OrchestrationContext()]


def current_context() -> OrchestrationContext:
    return _CONTEXT_STACK[-1]


@contextmanager
def orchestration(
    workers: int = 1,
    store: Optional[ResultStore | str] = None,
    probes: Sequence[str] = (),
) -> Iterator[OrchestrationContext]:
    """Install parallel/caching defaults for every sweep run inside the block.

    ``store`` may be a :class:`ResultStore` or a path (a store is opened and
    flushed on exit).  ``probes`` names registry probes attached to every job
    executed inside the block (cached points are still served from the store
    without telemetry — use ``refresh``/``--force`` to re-run them probed).
    """
    if isinstance(store, str):
        store = ResultStore(store)
    context = OrchestrationContext(
        workers=max(1, int(workers)), store=store, probes=tuple(probes)
    )
    _CONTEXT_STACK.append(context)
    try:
        yield context
    finally:
        _CONTEXT_STACK.pop()
        if context.store is not None:
            context.store.flush()


# ---------------------------------------------------------------------------
# Sweep execution
# ---------------------------------------------------------------------------

@dataclass
class SweepOutcome:
    """Everything a sweep produced, plus cache accounting."""

    spec: SweepSpec
    #: per-job results keyed by config hash.
    raw: Dict[str, SimulationResult]
    #: jobs in expansion order (for reassembly).
    jobs: List[Job]
    cache_hits: int = 0
    executed: int = 0

    def seed_results(self, series: str, load: float) -> List[SimulationResult]:
        """Per-seed results of one point, in seed order."""
        return [
            self.raw[job.key]
            for job in self.jobs
            if job.series == series and job.load == load
        ]

    def point(self, series: str, load: float) -> SimulationResult:
        """Seed-averaged result of one (series, load) point."""
        from ..simulation import average_results

        return average_results(self.seed_results(series, load))

    def table(self) -> Dict[Tuple[str, float], SimulationResult]:
        """All seed-averaged points keyed by ``(series_label, load)``."""
        seen: Dict[Tuple[str, float], SimulationResult] = {}
        for job in self.jobs:
            key = (job.series, job.load)
            if key not in seen:
                seen[key] = self.point(job.series, job.load)
        return seen


def run_jobs(
    jobs: Sequence[Job],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[Job, SimulationResult], None]] = None,
) -> Tuple[Dict[str, SimulationResult], int, int]:
    """Execute jobs, serving duplicates and stored results from cache.

    Returns ``(results_by_key, cache_hits, executed)``.  ``workers`` and
    ``store`` default to the active :func:`orchestration` context.
    """
    context = current_context()
    if workers is None:
        workers = context.workers
    if store is None:
        store = context.store

    results: Dict[str, SimulationResult] = {}
    cache_hits = 0
    pending: List[Job] = []
    seen_keys: set = set()
    for job in jobs:
        if job.key in seen_keys:
            continue
        seen_keys.add(job.key)
        cached = store.get(job.key) if store is not None else None
        if cached is not None:
            results[job.key] = cached
            cache_hits += 1
        else:
            if not job.probes and context.probes:
                job = replace(job, probes=context.probes)
            pending.append(job)

    last_flush = time.monotonic()

    def on_result(job: Job, record: RunRecord) -> None:
        nonlocal last_flush
        results[job.key] = record.summary
        if store is not None:
            store.put_record(
                job.key,
                record,
                meta={"series": job.series, "load": job.load, "seed": job.seed},
            )
            # Periodic flush keeps interrupted sweeps resumable without
            # rewriting the whole store once per completed job.
            now = time.monotonic()
            if now - last_flush >= FLUSH_INTERVAL_SECONDS:
                store.flush()
                last_flush = now
        if progress is not None:
            progress(job, record.summary)

    make_backend(workers).run(pending, on_result)
    if store is not None:
        store.flush()
    return results, cache_hits, len(pending)


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[Job, SimulationResult], None]] = None,
) -> SweepOutcome:
    """Expand a sweep specification and execute all of its jobs."""
    jobs = spec.expand()
    results, cache_hits, executed = run_jobs(jobs, workers=workers, store=store, progress=progress)
    return SweepOutcome(
        spec=spec, raw=results, jobs=jobs, cache_hits=cache_hits, executed=executed
    )


def run_seed_jobs(
    config: SimulationConfig,
    seeds: int,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> List[SimulationResult]:
    """Run one configuration under ``seeds`` consecutive seeds (in seed order)."""
    spec = SweepSpec(
        series=[("point", lambda: config)],
        loads=[config.traffic.load],
        seeds=max(1, seeds),
        name="seeds",
    )
    outcome = run_sweep(spec, workers=workers, store=store)
    return outcome.seed_results("point", config.traffic.load)
