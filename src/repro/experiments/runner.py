"""Experiment runner utilities: scales, load sweeps and config builders.

Every figure of the paper is regenerated from the same three ingredients:

* an :class:`ExperimentScale` (network size, cycle counts, seeds, load grid),
* a *configuration builder* describing one curve/bar of the figure, and
* a sweep driver (:func:`load_sweep` or :func:`max_throughput`).

Three scales are provided.  ``TINY`` keeps the benchmark suite runnable in
minutes on a laptop; ``SMALL`` is the default for examples; ``PAPER`` matches
Table V of the paper (h=8, 16,512 nodes, 60,000 measured cycles, 5 seeds) and
is provided for completeness — running it under CPython is a multi-day
endeavour, which is exactly the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..config import (
    NetworkConfig,
    RouterConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
)
from ..core.arrangement import VcArrangement
from ..metrics import SimulationResult
from ..simulation import average_results
from .orchestrator import ResultStore, SweepSpec, run_seed_jobs, run_sweep


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing knobs shared by all experiments."""

    name: str
    h: int
    warmup_cycles: int
    measure_cycles: int
    seeds: int
    loads: tuple[float, ...]
    local_latency: int = 10
    global_latency: int = 100
    #: per-port buffer capacities (local, global) for the Figure 6/11 sweeps.
    buffer_capacities: tuple[tuple[int, int], ...] = (
        (64, 256), (128, 512), (192, 768), (256, 1024)
    )

    def network(self) -> NetworkConfig:
        return self.network_for("dragonfly")

    def network_for(self, topology: str) -> NetworkConfig:
        """Comparable-size network of any registered topology at this scale.

        Sizes are derived from the scale's ``h`` so curves across topologies
        stay roughly comparable (tiny: 36-router Dragonfly, 36-router 3D
        HyperX, 16-router Flattened Butterfly, 20-router Megafly).
        """
        h = self.h
        params: dict
        if topology == "dragonfly":
            params = {"h": h}
        elif topology in ("flattened_butterfly", "fb"):
            params = {"k1": 2 * h, "k2": 2 * h, "nodes_per_router": h}
        elif topology == "hyperx":
            params = {"s": (2 * h, h + 1, h + 1), "nodes_per_router": h}
        elif topology in ("megafly", "dragonfly+", "dragonflyplus"):
            params = {"spines": h, "leaves": h, "h": h, "nodes_per_router": h}
        else:
            raise ValueError(f"no scale mapping for topology {topology!r}")
        return NetworkConfig(
            topology=topology,
            params=params,
            local_latency=self.local_latency,
            global_latency=self.global_latency,
        )


#: Benchmark scale: a 9-group, 72-node Dragonfly, short runs, single seed.
TINY = ExperimentScale(
    name="tiny",
    h=2,
    warmup_cycles=300,
    measure_cycles=600,
    seeds=1,
    loads=(0.2, 0.5, 0.8, 1.0),
    buffer_capacities=((64, 256), (128, 512), (192, 768), (256, 1024)),
)

#: Example/analysis scale: same network, longer runs, a few seeds, finer grid.
SMALL = ExperimentScale(
    name="small",
    h=2,
    warmup_cycles=1200,
    measure_cycles=2500,
    seeds=3,
    loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)

#: The paper's own configuration (Table V).  Provided for documentation and
#: API completeness; not intended to be run under pure CPython.
PAPER = ExperimentScale(
    name="paper",
    h=8,
    warmup_cycles=20000,
    measure_cycles=60000,
    seeds=5,
    loads=tuple(round(0.05 * i, 2) for i in range(1, 21)),
)

#: Mid-size scale: an h=6 Dragonfly (876 routers, 5,256 nodes).  Large enough
#: that route-table layout matters, small enough for interactive sweeps.
LARGE = ExperimentScale(
    name="large",
    h=6,
    warmup_cycles=500,
    measure_cycles=1000,
    seeds=1,
    loads=(0.2, 0.5, 0.8),
)

#: System scale: an h=13 Dragonfly (339 groups, 8,814 routers, 114,582
#: nodes — a 10^5-endpoint machine).  Dense route tables at this size cost
#: ~1 GB; the "auto" route-table mode switches to lazy per-destination
#: columns so construction stays fast and memory bounded.  Cycle counts are
#: deliberately short: this scale exists for construction/warmup smoke runs
#: (see ``benchmarks/bench_scale.py`` and the CI ``scale-smoke`` job), not
#: for full sweeps under pure CPython.
SYSTEM = ExperimentScale(
    name="system",
    h=13,
    warmup_cycles=50,
    measure_cycles=100,
    seeds=1,
    # Light load: the smoke run checks construction + steady stepping, and
    # in-flight packet state (not route tables) dominates RSS at this scale.
    loads=(0.1,),
)

SCALES: Dict[str, ExperimentScale] = {
    "tiny": TINY,
    "small": SMALL,
    "paper": PAPER,
    "large": LARGE,
    "system": SYSTEM,
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError as exc:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}") from exc


# ---------------------------------------------------------------------------
# Configuration builders
# ---------------------------------------------------------------------------

#: A builder produces a complete load-agnostic configuration; the sweep
#: drivers apply the offered load (and seeds) on top of it.
ConfigBuilder = Callable[[], SimulationConfig]


@dataclass
class Series:
    """One labelled curve (or bar group) of a figure."""

    label: str
    builder: ConfigBuilder
    results: List[SimulationResult] = field(default_factory=list)

    def loads(self) -> List[float]:
        return [r.offered_load for r in self.results]

    def accepted(self) -> List[float]:
        return [r.accepted_load for r in self.results]

    def latencies(self) -> List[float]:
        return [r.average_latency for r in self.results]


def base_config(
    scale: ExperimentScale,
    *,
    pattern: str = "uniform",
    algorithm: str = "min",
    vc_policy: str = "baseline",
    arrangement: VcArrangement | None = None,
    reactive: bool = False,
    buffer_organization: str = "static",
    damq_private_fraction: float = 0.75,
    vc_selection: str = "jsq",
    pb_sensing: str = "port",
    pb_min_credits_only: bool = False,
    speedup: int = 2,
    local_port_phits: int | None = None,
    global_port_phits: int | None = None,
    seed: int = 1,
    network: NetworkConfig | None = None,
) -> SimulationConfig:
    """Assemble a :class:`SimulationConfig` for one experimental point.

    ``network`` overrides the scale's default (Dragonfly) substrate, e.g.
    ``network=scale.network_for("hyperx")``.
    """
    if arrangement is None:
        arrangement = (
            VcArrangement.request_reply((2, 1), (2, 1))
            if reactive
            else VcArrangement.single_class(2, 1)
        )
    return SimulationConfig(
        network=network if network is not None else scale.network(),
        router=RouterConfig(
            buffer_organization=buffer_organization,
            damq_private_fraction=damq_private_fraction,
            speedup=speedup,
            local_port_phits=local_port_phits,
            global_port_phits=global_port_phits,
        ),
        routing=RoutingConfig(
            algorithm=algorithm,
            vc_policy=vc_policy,
            vc_selection=vc_selection,
            pb_sensing=pb_sensing,
            pb_min_credits_only=pb_min_credits_only,
        ),
        traffic=TrafficConfig(pattern=pattern, load=0.5, reactive=reactive),
        arrangement=arrangement,
        warmup_cycles=scale.warmup_cycles,
        measure_cycles=scale.measure_cycles,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Sweep drivers (thin wrappers over the orchestrator)
# ---------------------------------------------------------------------------
#
# These keep the seed API but delegate to repro.experiments.orchestrator:
# points become independent jobs, run serially or on a process pool
# (``workers``, or the active ``orchestration(...)`` context) and served
# from the JSON result store when one is installed.  Results are
# bit-identical across backends because every job owns its RNG.

def run_point(
    config: SimulationConfig,
    seeds: int = 1,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> SimulationResult:
    """Run one configuration under ``seeds`` seeds and average."""
    results = run_seed_jobs(config, max(1, seeds), workers=workers, store=store)
    return average_results(results)


def load_sweep(
    series: Sequence[Series],
    loads: Iterable[float],
    seeds: int = 1,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    chunk_size: Optional[int] = None,
) -> List[Series]:
    """Run every series at every offered load (latency/throughput curves).

    ``chunk_size`` (like ``workers``/``store``) defaults to the active
    :func:`~repro.experiments.orchestrator.orchestration` context, as do the
    opt-in adaptive/convergence sweep modes.
    """
    loads = list(loads)
    spec = SweepSpec(
        series=[(entry.label, entry.builder) for entry in series],
        loads=loads,
        seeds=max(1, seeds),
        name="load_sweep",
    )
    outcome = run_sweep(spec, workers=workers, store=store, chunk_size=chunk_size)
    for entry in series:
        entry.results = [outcome.point(entry.label, load) for load in loads]
    return list(series)


def max_throughput(
    series: Sequence[Series],
    seeds: int = 1,
    saturation_load: float = 1.0,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    chunk_size: Optional[int] = None,
) -> List[Series]:
    """Accepted load at full offered load (the paper's "maximum throughput")."""
    return load_sweep(
        series, [saturation_load], seeds,
        workers=workers, store=store, chunk_size=chunk_size,
    )
