"""Plain-text rendering of experiment results (the rows the paper's figures plot)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .runner import Series


def render_series_table(title: str, series: Sequence[Series]) -> str:
    """Render a load sweep as a text table: one row per series, one column per load."""
    lines = [title]
    if not series:
        return title
    loads = series[0].loads()
    header = "  {:<38s}".format("series") + "".join(f"  load={load:<5.2f}" for load in loads)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for entry in series:
        accepted = "".join(f"  {value:<10.3f}" for value in entry.accepted())
        lines.append(f"  {entry.label:<38s}{accepted}")
    lines.append("")
    lines.append("  average packet latency (cycles)")
    for entry in series:
        latency = "".join(f"  {value:<10.1f}" for value in entry.latencies())
        lines.append(f"  {entry.label:<38s}{latency}")
    return "\n".join(lines)


def render_bar_table(title: str, rows: Dict[str, Dict[str, float]],
                     value_format: str = "{:.3f}") -> str:
    """Render a dict-of-dicts (row label -> column label -> value) as text."""
    lines = [title]
    columns: List[str] = []
    for row in rows.values():
        for column in row:
            if column not in columns:
                columns.append(column)
    header = "  {:<38s}".format("") + "".join(f"  {c:<12s}" for c in columns)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for label, row in rows.items():
        cells = "".join(
            f"  {value_format.format(row[c]):<12s}" if c in row else f"  {'-':<12s}"
            for c in columns
        )
        lines.append(f"  {label:<38s}{cells}")
    return "\n".join(lines)


def improvement_over(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` (1.0 = equal)."""
    if baseline <= 0:
        return float("nan")
    return value / baseline


def summarize_improvements(series: Sequence[Series], baseline_label: str) -> Dict[str, float]:
    """Peak-throughput improvement of every series relative to ``baseline_label``."""
    peaks = {entry.label: max(entry.accepted(), default=0.0) for entry in series}
    if baseline_label not in peaks:
        raise ValueError(f"baseline series {baseline_label!r} not present")
    baseline = peaks[baseline_label]
    return {label: improvement_over(baseline, value) for label, value in peaks.items()}


def render_improvements(title: str, improvements: Dict[str, float]) -> str:
    lines = [title]
    for label, value in improvements.items():
        lines.append(f"  {label:<38s}  x{value:.3f}")
    return "\n".join(lines)


def flatten_results(series: Iterable[Series]) -> List[dict]:
    """Flatten series into one dict per (series, load) point — handy for CSV dumps."""
    rows: List[dict] = []
    for entry in series:
        for result in entry.results:
            rows.append(
                {
                    "series": entry.label,
                    "offered_load": result.offered_load,
                    "accepted_load": result.accepted_load,
                    "average_latency": result.average_latency,
                    "latency_p99": result.latency_p99,
                    "misrouted_fraction": result.misrouted_fraction,
                    "deadlock_suspected": result.deadlock_suspected,
                }
            )
    return rows
