"""Registry-driven experiment CLI.

Every figure (and the feasibility tables) of the paper is runnable by name,
at any scale, with parallel workers and a persistent result cache::

    python -m repro.experiments list
    python -m repro.experiments run fig5 --scale tiny --workers 4
    python -m repro.experiments run fig6 fig9 --scale small --workers 8
    python -m repro.experiments run fig5 --force          # recompute, ignore cache
    python -m repro.experiments run fig5 --probes timeseries,linkutil
    python -m repro.experiments inspect results/store.json --series MIN --load 0.5

Results are persisted to a store keyed by a content hash of each point's
complete :class:`~repro.config.SimulationConfig` (default
``results/store.json``), so re-running a figure serves every already-computed
point from cache — interrupted sweeps resume instead of recomputing.  New
stores default to the crash-safe *journal* format (append-only, checksummed,
safe for concurrent sweep processes sharing one path; see
:mod:`repro.store`); ``--store-format json`` keeps the legacy monolithic
JSON file, and existing stores of either format are auto-detected.  Stored
entries are versioned :class:`~repro.record.RunRecord` payloads; ``--probes``
attaches registry probes to every executed point so telemetry channels are
persisted alongside the summaries, and ``inspect`` pretty-prints them
(``--verbose`` adds store durability statistics).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from ..faults import parse_faults
from ..probes import PROBES, make_probes
from ..session import ConvergenceSettings
from ..store import STORE_FORMATS
from . import figures, tables, topologies
from .formatting import render_bar_table, render_series_table
from .orchestrator import (
    FLUSH_INTERVAL_SECONDS,
    AdaptiveSettings,
    ResultStore,
    StoreError,
    orchestration,
)
from .runner import SCALES

DEFAULT_STORE = "results/store.json"


# ---------------------------------------------------------------------------
# Figure registry (the ProjectScylla idiom: one generator per figure name)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FigureEntry:
    """One runnable experiment: a generator plus how to render its output."""

    name: str
    description: str
    run: Callable[..., object]
    render: Callable[[str, object], str]
    #: accepts the standard scale/patterns/seeds keyword arguments.
    takes_scale: bool = True
    #: scale used when ``--scale`` is not given.
    default_scale: str = "tiny"


def _render_pattern_series(name: str, results) -> str:
    return "\n\n".join(
        render_series_table(f"{name} [{pattern}]", series)
        for pattern, series in results.items()
    )


def _render_pattern_bars(name: str, results) -> str:
    return "\n\n".join(
        render_bar_table(f"{name} [{pattern}] (accepted load at 100% offered)", rows)
        for pattern, rows in results.items()
    )


def _render_series(name: str, results) -> str:
    return render_series_table(name, results)


def _render_bars(name: str, results) -> str:
    return render_bar_table(f"{name} (accepted load at 100% offered)", results)


def _render_tables(name: str, results) -> str:
    return tables.render_all_tables()


REGISTRY: Dict[str, FigureEntry] = {
    entry.name: entry
    for entry in (
        FigureEntry(
            "fig5", "Latency/throughput vs offered load, oblivious routing",
            figures.figure5, _render_pattern_series,
        ),
        FigureEntry(
            "fig6", "Max throughput vs buffer capacity (speedup 2)",
            figures.figure6, _render_pattern_bars,
        ),
        FigureEntry(
            "fig7", "Request-reply traffic with oblivious routing",
            figures.figure7, _render_pattern_series,
        ),
        FigureEntry(
            "fig8", "Piggyback adaptive routing, sensing variants",
            figures.figure8, _render_pattern_series,
        ),
        FigureEntry(
            "fig9", "Throughput vs VC selection function and VC count",
            figures.figure9, _render_bars,
        ),
        FigureEntry(
            "fig10", "DAMQ throughput vs per-VC private reservation",
            figures.figure10, _render_series,
        ),
        FigureEntry(
            "fig11", "Max throughput without router speedup (speedup 1)",
            figures.figure11, _render_pattern_bars,
        ),
        FigureEntry(
            "hyperx", "FlexVC vs baseline on HyperX(3D): all routings x policies",
            topologies.hyperx_sweep, _render_pattern_series,
        ),
        FigureEntry(
            "megafly", "FlexVC vs baseline on Megafly/Dragonfly+: all routings x policies",
            topologies.megafly_sweep, _render_pattern_series,
        ),
        FigureEntry(
            "tables", "VC feasibility tables I-IV (analytic, no simulation)",
            lambda **_: tables.all_tables(), _render_tables, takes_scale=False,
        ),
    )
}


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in REGISTRY)
    print("available experiments:")
    for name, entry in REGISTRY.items():
        scale = f"[default scale: {entry.default_scale}]" if entry.takes_scale \
            else "[no scale: analytic]"
        print(f"  {name:<{width}s}  {entry.description}  {scale}")
    print(f"\nscales: {', '.join(SCALES)}")
    print("run with: python -m repro.experiments run <figure> "
          "[--scale S] [--workers N] [--patterns P ...]")
    return 0


def _parse_probes(spec: str | None) -> tuple:
    if not spec:
        return ()
    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    try:
        make_probes(names)  # single source of truth for name validation
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return names


def cmd_run(args: argparse.Namespace) -> int:
    unknown = [name for name in args.figures if name not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"expected one of {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    probes = _parse_probes(args.probes)
    faults = None
    if args.faults:
        try:
            faults = parse_faults(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}") from None
    try:
        store = ResultStore(
            args.store, refresh=args.force, flush_interval=args.flush_interval,
            format=args.store_format,
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    adaptive = AdaptiveSettings() if args.adaptive else None
    converge = ConvergenceSettings() if args.converge else None
    status = 0
    with orchestration(
        workers=args.workers,
        store=store,
        probes=probes,
        chunk_size=args.chunk_size,
        adaptive=adaptive,
        converge=converge,
        verbose=args.verbose,
        backend=args.backend,
        route_table_mode=args.route_table,
        job_timeout=args.job_timeout,
        faults=faults,
    ):
        for name in args.figures:
            entry = REGISTRY[name]
            scale = args.scale if args.scale is not None else entry.default_scale
            kwargs: dict = {}
            if entry.takes_scale:
                kwargs["scale"] = scale
                if args.seeds is not None:
                    kwargs["seeds"] = args.seeds
                if args.patterns and "patterns" in entry.run.__code__.co_varnames:
                    kwargs["patterns"] = tuple(args.patterns)
            hits_before, writes_before = store.hits, store.writes
            start = time.perf_counter()
            results = entry.run(**kwargs)
            elapsed = time.perf_counter() - start
            print(entry.render(f"{name} @ {scale}", results))
            executed = store.writes - writes_before
            cached = store.hits - hits_before
            print(
                f"\n[{name}] {elapsed:.1f}s with {args.workers} worker(s): "
                f"{executed} point(s) simulated, {cached} served from cache "
                f"({args.store})\n"
            )
    store.close()
    return status


def _channel_digest(name: str, payload: dict) -> str:
    data = payload.get("data")
    if isinstance(data, list):
        size = f"{len(data)} samples"
    elif isinstance(data, dict):
        size = f"{len(data)} entries"
    else:  # pragma: no cover - future channel shapes
        size = type(data).__name__
    return f"{name} ({size})"


def cmd_inspect(args: argparse.Namespace) -> int:
    try:
        store = ResultStore(args.store, strict=True)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        info = store.describe()
        parts = [f"format={info.get('format')}", f"entries={info.get('entries')}"]
        if info.get("format") == "journal":
            parts.append(f"journal-ops={info.get('journal_ops')}")
            parts.append(f"superseded={info.get('superseded')}")
            parts.append(f"compactions={info.get('compactions')}")
            parts.append(
                f"torn-salvages={info.get('torn_salvages')}"
                + (
                    f" ({info.get('torn_bytes_dropped')} bytes dropped)"
                    if info.get("torn_salvages") else ""
                )
            )
        if info.get("migrated_v1"):
            parts.append(f"migrated-v1={info.get('migrated_v1')}")
        print(f"[store {' '.join(parts)}]")
    if len(store) == 0:
        print(f"no records in {args.store} (empty store)", file=sys.stderr)
        return 1
    if store.migrated:
        print(f"[migrated {store.migrated} v1 entr{'y' if store.migrated == 1 else 'ies'} "
              "to RunRecord v2 in memory]")
    shown = 0
    try:
        entries = sorted(store.entries(), key=lambda e: (
            str(e[2].get("series", "")), e[2].get("load", 0.0), e[2].get("seed", 0)))
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        print(
            f"error: store {args.store} contains malformed record entries "
            f"({type(exc).__name__}: {exc}); the file may be corrupt or "
            "written by an incompatible version",
            file=sys.stderr,
        )
        return 2
    for key, record, meta in entries:
        if args.series is not None and meta.get("series") != args.series:
            continue
        if args.load is not None and meta.get("load") != args.load:
            continue
        shown += 1
        series = meta.get("series", "?")
        load = meta.get("load", "?")
        seed = meta.get("seed", "?")
        backend = meta.get("backend") or record.provenance.get("backend")
        suffix = f" backend={backend}" if backend else ""
        print(f"{key}  series={series} load={load} seed={seed}{suffix}")
        print(f"  summary:    {record.summary}")
        provenance = record.provenance
        if provenance:
            cycles = provenance.get("engine_cycles")
            wall = provenance.get("wall_time_s")
            parts = [f"schema v{record.schema_version}"]
            if provenance.get("migrated_from"):
                parts.append(f"migrated from v{provenance['migrated_from']}")
            if cycles is not None:
                parts.append(f"{cycles} cycles")
            if wall is not None:
                parts.append(f"{wall}s wall")
            if provenance.get("backend_fallback_reason"):
                parts.append(
                    f"backend fallback: {provenance['backend_fallback_reason']}"
                )
            if provenance.get("extrapolated"):
                parts.append(
                    "EXTRAPOLATED from load "
                    f"{provenance.get('extrapolated_from_load')}"
                )
            route_table = provenance.get("route_table")
            if route_table:
                mode = route_table.get("mode", "?")
                if mode == "lazy":
                    parts.append(
                        f"route-table={mode} "
                        f"(built {route_table.get('columns_built')}, "
                        f"hits {route_table.get('hits')}, "
                        f"evictions {route_table.get('evictions')})"
                    )
                else:
                    parts.append(f"route-table={mode}")
            convergence = provenance.get("convergence")
            if convergence:
                state = "converged" if convergence.get("converged") else "unconverged"
                parts.append(
                    f"{state} in {convergence.get('windows')} windows "
                    f"({convergence.get('measured_cycles')} of "
                    f"{convergence.get('budget_cycles')} budget cycles)"
                )
            faults = provenance.get("faults")
            if faults:
                parts.append(
                    f"faults: {faults.get('applied')} applied "
                    f"(policy {faults.get('policy')}, "
                    f"{faults.get('packets_dropped')} dropped, "
                    f"{faults.get('packets_rerouted')} rerouted)"
                )
            deadlocks = provenance.get("deadlock")
            if deadlocks:
                first = deadlocks[0] if isinstance(deadlocks, list) else deadlocks
                parts.append(
                    "DEADLOCK suspected at cycle "
                    f"{first.get('cycle')} "
                    f"({first.get('resident_packets')} packets resident)"
                )
            print(f"  provenance: {', '.join(parts)}")
            if args.verbose and deadlocks:
                for outcome in (
                    deadlocks if isinstance(deadlocks, list) else [deadlocks]
                ):
                    details = ", ".join(
                        f"{k}={v}" for k, v in sorted(outcome.items())
                    )
                    print(f"  deadlock: {details}")
            if args.verbose and faults:
                stats = ", ".join(f"{k}={v}" for k, v in sorted(faults.items()))
                print(f"  faults: {stats}")
            if args.verbose and route_table:
                stats = ", ".join(f"{k}={v}" for k, v in sorted(route_table.items()))
                print(f"  route-table: {stats}")
        if record.channels:
            digests = ", ".join(
                _channel_digest(name, record.channels[name])
                for name in record.channel_names()
            )
            print(f"  channels:   {digests}")
            if args.verbose:
                for name in record.channel_names():
                    payload = record.channels[name]
                    print(f"    [{name}] meta={payload.get('meta', {})}")
                    data = payload.get("data")
                    if isinstance(data, list):
                        for row in data[: args.limit]:
                            print(f"      {row}")
                        if len(data) > args.limit:
                            print(f"      ... {len(data) - args.limit} more rows")
                    elif isinstance(data, dict):
                        for i, (entry_key, value) in enumerate(sorted(data.items())):
                            if i >= args.limit:
                                print(f"      ... {len(data) - args.limit} more entries")
                                break
                            print(f"      {entry_key}: {value}")
        print()
    failures = sorted(store.failures(), key=lambda item: item[0])
    for key, failure, meta in failures:
        if args.series is not None and meta.get("series") != args.series:
            continue
        if args.load is not None and meta.get("load") != args.load:
            continue
        shown += 1
        series = meta.get("series", "?")
        load = meta.get("load", "?")
        seed = meta.get("seed", "?")
        print(f"{key}  series={series} load={load} seed={seed}")
        detail = f" ({failure.detail})" if failure.detail else ""
        print(
            f"  FAILED: {failure.reason}{detail} after "
            f"{failure.retries} retr{'y' if failure.retries == 1 else 'ies'}"
        )
        print()
    total = len(store)
    print(f"{shown} of {total} entr{'y' if total == 1 else 'ies'} shown "
          f"from {args.store}"
          + (f" ({len(failures)} failed)" if failures else ""))
    return 0 if shown else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable experiments").set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="run one or more experiments by name")
    run.add_argument("figures", nargs="+", metavar="figure",
                     help=f"experiment name(s): {', '.join(REGISTRY)}")
    run.add_argument("--scale", default=None, choices=sorted(SCALES),
                     help="experiment scale (default: each figure's default, "
                          "normally tiny)")
    run.add_argument("--workers", type=int, default=1,
                     help="parallel worker processes (default: 1 = serial)")
    run.add_argument("--seeds", type=int, default=None,
                     help="override the scale's seed count")
    run.add_argument("--patterns", nargs="*", default=None,
                     help="restrict traffic patterns (e.g. uniform bursty)")
    run.add_argument("--store", default=DEFAULT_STORE,
                     help=f"result store path (default: {DEFAULT_STORE})")
    run.add_argument("--store-format", default="journal", dest="store_format",
                     choices=STORE_FORMATS,
                     help="store on-disk format: journal (default; crash-safe "
                          "append-only log, safe for concurrent sweep "
                          "processes sharing one path — existing JSON stores "
                          "are migrated on first open), json (legacy "
                          "monolithic file, single writer), or auto (keep "
                          "whatever the file already is)")
    run.add_argument("--force", action="store_true",
                     help="ignore cached results (still persists fresh ones)")
    run.add_argument("--chunk-size", type=int, default=None, metavar="N",
                     help="jobs per pool task (default: automatic series-"
                          "affine chunking; 1 = per-job dispatch)")
    run.add_argument("--adaptive", action="store_true",
                     help="adaptive sweep scheduling: climb each series' "
                          "loads low to high and extrapolate past the "
                          "saturation knee instead of simulating "
                          "(provenance-flagged; default margins)")
    run.add_argument("--converge", action="store_true",
                     help="convergence-window measurement: batch windows "
                          "until confidence intervals tighten, capped at "
                          "the fixed cycle budget (results stored under "
                          "mode-suffixed keys)")
    run.add_argument("--verbose", action="store_true",
                     help="stream sweep progress (done/total, cache hits, "
                          "jobs/sec) to stderr")
    run.add_argument("--flush-interval", type=float,
                     default=FLUSH_INTERVAL_SECONDS, metavar="SECONDS",
                     help="seconds between mid-sweep result-store flushes "
                          f"(default: {FLUSH_INTERVAL_SECONDS})")
    run.add_argument("--backend", default="python",
                     choices=("python", "vectorized", "auto"),
                     help="simulation stepping backend: python (default), "
                          "vectorized (numpy kernel, requires the [fast] "
                          "extra; bit-identical results), or auto "
                          "(vectorized when available); non-python backends "
                          "get their own result-store keys")
    run.add_argument("--route-table", default="auto", dest="route_table",
                     choices=("auto", "dense", "lazy"),
                     help="route-table construction mode: auto (dense below "
                          "the size threshold, lazy above; default), dense "
                          "(full precomputed table), or lazy (per-destination "
                          "columns in a bounded LRU); answers are identical, "
                          "so cache keys are unaffected")
    run.add_argument("--probes", default=None, metavar="P1,P2",
                     help="attach registry probes to every executed point and "
                          "persist their telemetry channels alongside the "
                          f"summaries (choices: {', '.join(sorted(PROBES))}; "
                          "cached points stay channel-free unless --force)")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject a deterministic fault schedule into every "
                          "executed point, e.g. 'link:0:3@400-900' (link of "
                          "router 0 port 3 down at cycle 400, back at 900), "
                          "'router:7@500-1000', or 'sample:mtbf=5000,"
                          "mttr=500,until=3000,seed=9'; clauses join with "
                          "';', add 'policy=stall' to stall in-flight flits "
                          "instead of dropping; fault schedules hash into "
                          "the store keys, so pristine results are never "
                          "overwritten")
    run.add_argument("--job-timeout", type=float, default=None, metavar="S",
                     dest="job_timeout",
                     help="per-job wall-clock budget in seconds (pool "
                          "execution only): a hung job is terminated and "
                          "recorded as a typed failure in the store instead "
                          "of wedging the sweep")
    run.set_defaults(func=cmd_run)

    inspect = sub.add_parser(
        "inspect", help="pretty-print stored RunRecords from a result store")
    inspect.add_argument("store", help="path to a result store (journal or "
                                       "JSON format, auto-detected; v1 JSON "
                                       "stores are migrated in memory)")
    inspect.add_argument("--series", default=None,
                         help="only records whose meta series label matches")
    inspect.add_argument("--load", type=float, default=None,
                         help="only records at this offered load")
    inspect.add_argument("--verbose", action="store_true",
                         help="dump channel metadata and data rows")
    inspect.add_argument("--limit", type=int, default=10,
                         help="max rows/entries per channel with --verbose "
                              "(default: 10)")
    inspect.set_defaults(func=cmd_inspect)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
