"""Tables I-IV of the paper, re-exported for the experiment harness.

The heavy lifting lives in :mod:`repro.core.feasibility`; this module adds the
expected values quoted in the paper so tests and benchmarks can assert an
exact match.
"""

from __future__ import annotations

from typing import Dict

from ..core.feasibility import (
    PathSupport,
    render_table,
    table1,
    table2,
    table3,
    table4,
)

SAFE = PathSupport.SAFE
OPP = PathSupport.OPPORTUNISTIC
X = PathSupport.UNSUPPORTED

#: Table I as printed in the paper.
EXPECTED_TABLE1: Dict[str, Dict[int, PathSupport]] = {
    "MIN": {2: SAFE, 3: SAFE, 4: SAFE, 5: SAFE},
    "VAL": {2: X, 3: OPP, 4: SAFE, 5: SAFE},
    "PAR": {2: X, 3: OPP, 4: OPP, 5: SAFE},
}

#: Table II as printed in the paper (request+reply VC pairs).
EXPECTED_TABLE2: Dict[str, Dict[tuple[int, int], PathSupport]] = {
    "MIN": {(2, 2): SAFE, (3, 2): SAFE, (3, 3): SAFE, (4, 4): SAFE, (5, 5): SAFE},
    "VAL": {(2, 2): X, (3, 2): OPP, (3, 3): OPP, (4, 4): SAFE, (5, 5): SAFE},
    "PAR": {(2, 2): X, (3, 2): OPP, (3, 3): OPP, (4, 4): OPP, (5, 5): SAFE},
}

#: Table III as printed in the paper ((local, global) VC pairs).
EXPECTED_TABLE3: Dict[str, Dict[tuple[int, int], PathSupport]] = {
    "MIN": {(2, 1): SAFE, (3, 1): SAFE, (2, 2): SAFE, (3, 2): SAFE, (4, 2): SAFE, (5, 2): SAFE},
    "VAL": {(2, 1): X, (3, 1): X, (2, 2): X, (3, 2): OPP, (4, 2): SAFE, (5, 2): SAFE},
    "PAR": {(2, 1): X, (3, 1): X, (2, 2): X, (3, 2): OPP, (4, 2): OPP, (5, 2): SAFE},
}

#: Table IV as printed in the paper: (request, reply) support per configuration.
EXPECTED_TABLE4: Dict[str, Dict[tuple, tuple[PathSupport, PathSupport]]] = {
    "MIN": {
        ((2, 1), (2, 1)): (SAFE, SAFE),
        ((3, 2), (2, 1)): (SAFE, SAFE),
        ((4, 2), (4, 2)): (SAFE, SAFE),
        ((5, 2), (5, 2)): (SAFE, SAFE),
    },
    "VAL": {
        ((2, 1), (2, 1)): (X, OPP),
        ((3, 2), (2, 1)): (OPP, OPP),
        ((4, 2), (4, 2)): (SAFE, SAFE),
        ((5, 2), (5, 2)): (SAFE, SAFE),
    },
    "PAR": {
        ((2, 1), (2, 1)): (X, OPP),
        ((3, 2), (2, 1)): (OPP, OPP),
        ((4, 2), (4, 2)): (OPP, OPP),
        ((5, 2), (5, 2)): (SAFE, SAFE),
    },
}


def all_tables() -> Dict[str, dict]:
    """Generate all four tables."""
    return {
        "Table I": table1(),
        "Table II": table2(),
        "Table III": table3(),
        "Table IV": table4(),
    }


def render_all_tables() -> str:
    return "\n\n".join(render_table(table, title) for title, table in all_tables().items())


def matches_paper() -> bool:
    """True when every generated table matches the values printed in the paper."""
    return (
        table1() == EXPECTED_TABLE1
        and table2() == EXPECTED_TABLE2
        and table3() == EXPECTED_TABLE3
        and table4() == EXPECTED_TABLE4
    )
