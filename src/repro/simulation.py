"""Simulation façade: build a network from a configuration and run it.

``Simulation(config)`` wires everything together — topology, routers, links,
credit channels, saturation boards, traffic and metrics.  Execution lives in
the phased :class:`~repro.session.Session` API (warmup / measure / drain,
probes, RunRecords); ``Simulation.run()`` and :func:`run_simulation` remain
as one-shot compatibility shims returning the flat
:class:`~repro.metrics.SimulationResult` summary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .config import DEFAULT_DEADLOCK_WINDOW_CYCLES, SimulationConfig
from .core.flexvc import make_policy
from .core.link_types import LinkType
from .core.vc_selection import make_selection
from .engine import Engine
from .link import CreditChannel, Link
from .metrics import MetricsCollector, ResidentLedger, SimulationResult
from .packet import Packet
from .router.router import Router
from .router.saturation import SaturationBoard
from .routing import make_routing
from .routing.route_table import make_route_table, resolve_route_table_mode
from .topology.base import Topology
from .traffic import TrafficManager, make_generator

#: Default suspected-deadlock window, re-exported for backward compatibility
#: (see :attr:`repro.config.SimulationConfig.deadlock_window_cycles`).
DEADLOCK_WINDOW_CYCLES = DEFAULT_DEADLOCK_WINDOW_CYCLES


def build_topology(config: SimulationConfig) -> Topology:
    """Instantiate the topology described by ``config.network``.

    Thin wrapper over the topology registry
    (:data:`repro.topology.TOPOLOGIES`), kept for backward compatibility.
    """
    return config.network.build()


@dataclass
class SimulationArtifacts:
    """Immutable, reusable construction artifacts of one network description.

    Everything here is a pure function of ``config.network`` (graph and
    latencies): the built topology and the precomputed route table —
    :class:`~repro.routing.route_table.RouteTable` (dense) or
    :class:`~repro.routing.route_table.LazyRouteTable` (column shards), with
    identical query answers (minimal next ports, hop sequences, first global
    links, adjacency).  All of it is read-only after construction, so one
    instance can back any number of simulations — the sweep orchestrator
    memoizes artifacts per worker keyed by ``network_key(config)`` and
    injects them via ``Simulation(cfg, artifacts=...)``, turning a 200-job
    sweep's 200 rebuilds into a handful.  The network key deliberately stays
    route-table-mode-free: modes answer identically, so cached artifacts are
    shared across mode requests.

    ``network_key`` is informational (provenance/diagnostics); the caller is
    responsible for matching artifacts to configurations.
    """

    topology: Topology
    route_table: object
    network_key: str = ""


def build_artifacts(
    config: SimulationConfig,
    network_key: str = "",
    *,
    cached: bool = True,
    route_table_mode: str = "auto",
) -> SimulationArtifacts:
    """Build (or reuse) the shareable construction artifacts for ``config``.

    With ``cached=True`` the topology comes from the registry's bounded build
    cache and the route table from a memo *on the topology instance itself*,
    so configurations describing the same network — sweep points differing
    only in load, seed, routing or traffic — share one graph and one table
    per process, and evicting a topology from the registry cache releases
    its table with it (their lifetimes are one).  ``cached=False`` builds
    private instances (same contents).

    ``route_table_mode`` selects the table front-end (``auto``/``dense``/
    ``lazy``; see :func:`~repro.routing.route_table.make_route_table`).
    Modes answer identically, so the memo is keyed by the *resolved* mode —
    a dense and a lazy table may coexist on one topology, but re-requesting
    a mode reuses its table.
    """
    if not cached:
        topology = config.network.build()
        return SimulationArtifacts(
            topology=topology,
            route_table=make_route_table(topology, route_table_mode),
            network_key=network_key,
        )
    topology = config.network.build_cached()
    resolved = resolve_route_table_mode(route_table_mode, topology.num_routers)
    memo_key = "_cached_route_table" if resolved == "dense" \
        else "_cached_route_table_lazy"
    route_table = topology.__dict__.get(memo_key)
    if route_table is None:
        route_table = make_route_table(topology, resolved)
        topology.__dict__[memo_key] = route_table
    return SimulationArtifacts(
        topology=topology, route_table=route_table, network_key=network_key
    )


class Simulation:
    """One complete simulation instance (single seed).

    ``use_reference_allocator=True`` builds the network with
    :class:`~repro.router.reference.ReferenceRouter` — the kept-for-test
    full-rescan allocation pass — instead of the incremental fast path.
    Results are bit-identical by construction (asserted by
    ``tests/test_alloc_equivalence.py``); the flag exists for that test and
    for debugging suspected allocator regressions.

    ``artifacts`` injects pre-built construction artifacts
    (:class:`SimulationArtifacts`: topology + route table) instead of
    building them here.  The artifacts must describe ``config.network``; the
    sweep orchestrator guarantees this by keying its per-worker cache on
    ``network_key(config)``.  Artifacts are read-only, so sharing them across
    simulations is bit-identical to private builds.

    ``route_table_mode`` selects the route-table front-end (``"auto"``,
    ``"dense"``, ``"lazy"`` — see
    :func:`~repro.routing.route_table.make_route_table`); answers are
    identical across modes, only construction memory/time differ.  Ignored
    when ``artifacts`` already carry a table.

    ``backend`` selects the stepping backend: ``"python"`` (default, the
    source of truth), ``"vectorized"`` (the numpy batch kernel of
    :mod:`repro.kernel`; requires the ``[fast]`` extra) or ``"auto"``
    (vectorized when available and supported, python otherwise).  Results
    are bit-identical across backends; ``backend_active`` records what
    actually runs and ``backend_fallback_reason`` why it differs from the
    request (None when it doesn't).
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        use_reference_allocator: bool = False,
        artifacts: Optional[SimulationArtifacts] = None,
        backend: str = "python",
        route_table_mode: str = "auto",
    ) -> None:
        config.validate()
        self.config = config
        self._use_reference_allocator = use_reference_allocator
        self.rng = random.Random(config.seed)
        self.engine = Engine()
        self.topology = (
            artifacts.topology if artifacts is not None else build_topology(config)
        )
        #: precomputed minimal-route tables (dense, or lazy column shards on
        #: large networks), shared by every routing consumer (plans, PAR/PB
        #: sensing, saturation lookups).  Fault runs always build a private
        #: table: re-table-ing mutates columns in place, and shared artifact
        #: tables must stay read-only.
        self.route_table = (
            artifacts.route_table
            if artifacts is not None and not config.faults
            else make_route_table(self.topology, route_table_mode)
        )
        self.metrics = MetricsCollector(
            num_nodes=self.topology.num_nodes,
            packet_size=config.traffic.packet_size,
        )
        self.policy = make_policy(config.routing.vc_policy, config.arrangement)
        self.selection = make_selection(config.routing.vc_selection)
        self.routing = make_routing(
            self.topology, self.policy, self.selection,
            config.routing, config.arrangement, self.rng,
            route_table=self.route_table,
        )
        self.routers: List[Router] = []
        self.traffic: Optional[TrafficManager] = None
        #: O(1) network-wide resident-packet counter shared by all routers.
        self._resident_ledger = ResidentLedger()
        self._build_routers()
        self._wire_links()
        self._attach_saturation_boards()
        self._build_traffic()
        #: fault-injection runtime (None on pristine networks): wraps link
        #: deliveries and replays ``config.faults`` through the calendar.
        self.fault_controller = None
        if config.faults:
            from .faults import FaultController

            self.fault_controller = FaultController(self)
        #: installed VectorizedKernel instance, or None on the python path.
        self.kernel = None
        self.backend_requested = backend
        # Late import: the default ("python") path never touches the kernel
        # package beyond this tiny resolver, and numpy only loads when a
        # vectorized backend is actually requested.
        from .kernel import resolve_backend

        self.backend_active, self.backend_fallback_reason = resolve_backend(
            self, backend
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_routers(self) -> None:
        router_class = Router
        if self._use_reference_allocator:
            from .router.reference import ReferenceRouter

            router_class = ReferenceRouter
        for router_id in range(self.topology.num_routers):
            router = router_class(
                router_id=router_id,
                topology=self.topology,
                engine=self.engine,
                router_config=self.config.router,
                routing_config=self.config.routing,
                arrangement=self.config.arrangement,
                routing=self.routing,
                selection=self.selection,
                rng=self.rng,
                on_delivery=self._on_delivery,
            )
            router.resident_ledger = self._resident_ledger
            self.routers.append(router)
            self.engine.register_router(router)

    def _link_latency(self, link_type: LinkType) -> int:
        net = self.config.network
        return net.local_latency if link_type == LinkType.LOCAL else net.global_latency

    def _wire_links(self) -> None:
        """Create one unidirectional link + credit channel per directed edge."""
        topology = self.topology
        for router_id in range(topology.num_routers):
            upstream = self.routers[router_id]
            for info in topology.ports(router_id):
                downstream = self.routers[info.neighbor]
                back_port = topology.port_to(info.neighbor, router_id)
                if back_port is None:
                    raise RuntimeError(
                        f"asymmetric topology: no return port from {info.neighbor} "
                        f"to {router_id}"
                    )
                latency = self._link_latency(info.link_type)
                link = Link(
                    engine=self.engine,
                    latency=latency,
                    link_type=info.link_type,
                    deliver=downstream.make_network_receiver(back_port),
                    name=(router_id, info.port, info.neighbor, back_port),
                )
                upstream.output_ports[info.port].attach_link(link)
                channel = CreditChannel(self.engine, latency)
                # The sink credits the upstream tracker and re-activates the
                # upstream router only when its recorded allocation blockage
                # depends on the returned (port, vc) credit.
                channel.connect(upstream.make_credit_sink(info.port))
                downstream.input_ports[back_port].credit_channel = channel

    def _attach_saturation_boards(self) -> None:
        """Give every router group a shared saturation board (Piggyback only).

        Groups are the topology's LOCAL-connected router sets (Dragonfly
        groups, HyperX rows, Megafly groups); each board is sized to the
        group's widest router.  Groups without global links (e.g. a
        single-dimension HyperX) carry no board — Piggyback then degenerates
        to minimal routing, since no global link needs protecting.
        """
        if self.config.routing.algorithm != "pb":
            return
        topo = self.topology
        boards: Dict[int, SaturationBoard] = {}
        for group_id, members in enumerate(topo.router_groups()):
            width = max(topo.num_global_ports(router) for router in members)
            if width == 0:
                continue
            boards[group_id] = SaturationBoard(
                positions=len(members), global_ports=width, classes=2,
                saturation_factor=self.config.routing.pb_saturation_factor,
            )
        for router in self.routers:
            group_id, position = topo.group_slot(router.router_id)
            board = boards.get(group_id)
            if board is not None:
                router.attach_saturation_board(board, position)
        self._saturation_boards = boards

    def _build_traffic(self) -> None:
        generator = make_generator(self.config.traffic, self.topology, self.rng)
        self.traffic = TrafficManager(
            generator=generator,
            routers=self.routers,
            nodes_per_router=self.topology.nodes_per_router,
            metrics=self.metrics,
            reactive=self.config.traffic.reactive,
            # Topologies with transit-only routers (Megafly spines) need the
            # topology's own node mapping instead of the uniform division.
            router_of_node=(
                None
                if self.topology.has_uniform_node_mapping
                else self.topology.router_of_node
            ),
        )
        self.engine.register_traffic(self.traffic)

    def _on_delivery(self, packet: Packet, cycle: int) -> None:
        assert self.traffic is not None
        self.traffic.on_delivery(packet, cycle)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run warm-up plus one measurement window (compatibility shim).

        Thin wrapper over the phased :class:`~repro.session.Session` API —
        ``warmup()`` followed by a single ``measure()`` — and bit-identical
        to the pre-session one-shot runner.  Use a session directly for
        probes, multiple measurement windows, drain phases or resumable
        stepping.
        """
        from .session import Session

        session = Session(simulation=self)
        session.warmup()
        return session.measure()

    def _deadlock_suspected(self) -> bool:
        """No delivery for a long stretch while packets remain in flight (O(1))."""
        if self._resident_ledger.count == 0:
            return False
        window = self.config.deadlock_window_cycles
        last = self.metrics.last_delivery_cycle
        if last < 0:
            return self.engine.now > window
        return (self.engine.now - last) > window

    # -- diagnostics -----------------------------------------------------------------
    def total_resident_packets(self) -> int:
        """Packets resident in network input buffers, maintained incrementally."""
        return self._resident_ledger.count


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Convenience one-shot runner."""
    return Simulation(config).run()


def run_seeds(
    config: SimulationConfig,
    seeds: int = 3,
    workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run the same configuration under several seeds (the paper averages 5).

    Thin wrapper over the experiment orchestrator: seeds become independent
    jobs, so passing ``workers > 1`` (or running inside an
    ``orchestration(workers=...)`` context) executes them in parallel with
    bit-identical results.
    """
    from .experiments.orchestrator import run_seed_jobs

    return run_seed_jobs(config, seeds, workers=workers)


def _average_extras(results: List[SimulationResult]) -> Dict[str, float]:
    """Seed-average the ``extra`` dicts instead of silently dropping them.

    Keys are the union across seeds; values that are numeric (and non-bool)
    in every seed carrying the key are averaged, anything else keeps the
    first seen value.
    """
    merged: Dict[str, List[float]] = {}
    for result in results:
        for key, value in result.extra.items():
            merged.setdefault(key, []).append(value)
    averaged: Dict[str, float] = {}
    for key, values in merged.items():
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        ):
            averaged[key] = sum(values) / len(values)
        else:
            averaged[key] = values[0]
    return averaged


def average_results(results: List[SimulationResult]) -> SimulationResult:
    """Average accepted load and latency across seeds (other fields from the first)."""
    if not results:
        raise ValueError("no results to average")
    base = results[0]
    n = len(results)
    return SimulationResult(
        offered_load=base.offered_load,
        accepted_load=sum(r.accepted_load for r in results) / n,
        average_latency=sum(r.average_latency for r in results) / n,
        latency_p99=sum(r.latency_p99 for r in results) / n,
        packets_delivered=sum(r.packets_delivered for r in results) // n,
        packets_generated=sum(r.packets_generated for r in results) // n,
        phits_delivered=sum(r.phits_delivered for r in results) // n,
        measured_cycles=base.measured_cycles,
        num_nodes=base.num_nodes,
        misrouted_fraction=sum(r.misrouted_fraction for r in results) / n,
        deadlock_suspected=any(r.deadlock_suspected for r in results),
        extra=_average_extras(results),
    )
