"""Small bounded LRU mapping shared by the construction caches.

Both the topology registry's build cache and the sweep orchestrator's
per-worker :class:`~repro.experiments.orchestrator.ArtifactCache` need the
same thing: a tiny dict with recency-refreshing reads and oldest-first
eviction.  Python dicts preserve insertion order, so recency is a
pop-and-reinsert and the LRU entry is ``next(iter(...))`` — kept in one
place instead of hand-rolled per cache.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class BoundedLRU:
    """Mapping with at most ``max_entries`` keys, evicting least recently used.

    ``get`` refreshes recency; ``put`` evicts the oldest entries beyond the
    bound.  Keys must be hashable — the ``TypeError`` of an unhashable key
    propagates to the caller (the topology registry uses it to fall back to
    uncached builds).
    """

    __slots__ = ("max_entries", "_entries")

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Optional[Any]:
        """Value for ``key`` (None on miss), refreshing its recency."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.pop(key)
            self._entries[key] = value
        return value

    def pop(self, key: Any) -> Optional[Any]:
        """Remove and return ``key``'s value (None when absent)."""
        return self._entries.pop(key, None)

    def put(self, key: Any, value: Any) -> None:
        self._entries.pop(key, None)
        while len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value
