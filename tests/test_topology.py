"""Topology invariants: per-construction checks for Dragonfly and Flattened
Butterfly, plus registry-driven property tests that every registered topology
(HyperX and Megafly included) must satisfy."""

import pytest

from repro.core.link_types import LinkType, hop_counts
from repro.routing.route_table import RouteTable
from repro.topology import (
    TOPOLOGIES,
    Dragonfly,
    FlattenedButterfly2D,
    HyperX,
    Megafly,
    bfs_distances,
    degree_histogram,
    is_connected,
    measured_diameter,
    verify_bidirectional,
)


@pytest.fixture(params=[1, 2, 3])
def dragonfly(request):
    return Dragonfly(h=request.param)


class TestDragonflySizes:
    def test_balanced_sizes(self, dragonfly):
        h = dragonfly.h
        assert dragonfly.a == 2 * h
        assert dragonfly.p == h
        assert dragonfly.num_groups == 2 * h * h + 1
        assert dragonfly.num_routers == dragonfly.num_groups * dragonfly.a
        assert dragonfly.num_nodes == dragonfly.num_routers * h

    def test_paper_configuration(self):
        df = Dragonfly(h=8, p=8, a=16)
        assert df.num_groups == 129
        assert df.num_routers == 2064
        assert df.num_nodes == 16512
        # 31-port router: 8 injection + 15 local + 8 global.
        assert df.radix == 15 + 8

    def test_radix(self, dragonfly):
        assert dragonfly.radix == (dragonfly.a - 1) + dragonfly.h

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Dragonfly(h=0)
        with pytest.raises(ValueError):
            Dragonfly(h=2, num_groups=1)
        with pytest.raises(ValueError):
            Dragonfly(h=2, num_groups=100)


class TestDragonflyConnectivity:
    def test_connected(self, dragonfly):
        assert is_connected(dragonfly)

    def test_bidirectional_links(self, dragonfly):
        assert verify_bidirectional(dragonfly)

    def test_degree_regular(self, dragonfly):
        histogram = degree_histogram(dragonfly)
        assert histogram == {dragonfly.radix: dragonfly.num_routers}

    def test_diameter_at_most_three(self):
        df = Dragonfly(h=2)
        assert measured_diameter(df) <= 3

    def test_one_global_link_per_group_pair(self, dragonfly):
        seen = set()
        for router in range(dragonfly.num_routers):
            for info in dragonfly.ports(router):
                if info.link_type != LinkType.GLOBAL:
                    continue
                pair = tuple(sorted((dragonfly.group_of(router),
                                     dragonfly.group_of(info.neighbor))))
                seen.add(pair)
        groups = dragonfly.num_groups
        assert len(seen) == groups * (groups - 1) // 2


class TestDragonflyMinimalRouting:
    def test_min_path_respects_lgl_order(self, dragonfly):
        n = dragonfly.num_routers
        rng_pairs = [(0, n - 1), (min(3, n - 1), n // 2), (n // 2, 1)]
        for src, dst in rng_pairs:
            if src == dst:
                continue
            seq = dragonfly.min_hop_sequence(src, dst)
            assert len(seq) <= 3
            # The sequence must be a subsequence of l-g-l (never g after l after g).
            labels = "".join("l" if s == LinkType.LOCAL else "g" for s in seq)
            assert labels in {"", "l", "g", "lg", "gl", "lgl"}

    def test_min_next_port_walk_reaches_destination(self, dragonfly):
        for src in range(0, dragonfly.num_routers, max(1, dragonfly.num_routers // 7)):
            for dst in range(0, dragonfly.num_routers, max(1, dragonfly.num_routers // 5)):
                current = src
                hops = 0
                while current != dst:
                    port = dragonfly.min_next_port(current, dst)
                    assert port is not None
                    current = dragonfly.neighbor(current, port)
                    hops += 1
                    assert hops <= 3
                assert hops == len(dragonfly.min_hop_sequence(src, dst))

    def test_min_distance_bounds(self):
        # Dragonfly minimal routing is restricted to l-g-l paths, so the
        # routing distance can exceed the raw graph distance (which may use
        # two global hops) but never the diameter of 3.
        df = Dragonfly(h=2)
        for src in range(0, df.num_routers, 5):
            distances = bfs_distances(df, src)
            for dst in range(0, df.num_routers, 7):
                routed = df.min_distance(src, dst)
                assert distances[dst] <= routed <= 3

    def test_same_router_has_empty_path(self, dragonfly):
        assert dragonfly.min_hop_sequence(0, 0) == ()
        assert dragonfly.min_next_port(0, 0) is None

    def test_gateway_and_entry_routers_consistent(self, dragonfly):
        g0, g1 = 0, 1
        gateway, gport = dragonfly.gateway_router(g0, g1)
        assert dragonfly.group_of(gateway) == g0
        peer = dragonfly.global_peer(gateway, gport)
        assert dragonfly.group_of(peer) == g1
        assert dragonfly.entry_router(g0, g1) == peer


class TestDragonflyNodeMapping:
    def test_router_of_node_roundtrip(self, dragonfly):
        for node in range(0, dragonfly.num_nodes, max(1, dragonfly.num_nodes // 11)):
            router = dragonfly.router_of_node(node)
            assert node in dragonfly.nodes_of_router(router)

    def test_out_of_range_rejected(self, dragonfly):
        with pytest.raises(ValueError):
            dragonfly.router_of_node(dragonfly.num_nodes)
        with pytest.raises(ValueError):
            dragonfly.ports(dragonfly.num_routers)


class TestFlattenedButterfly:
    def test_sizes(self):
        fb = FlattenedButterfly2D(k1=4, k2=3, p=2)
        assert fb.num_routers == 12
        assert fb.num_nodes == 24
        assert fb.radix == 3 + 2

    def test_connected_and_bidirectional(self):
        fb = FlattenedButterfly2D(k1=4, k2=4, p=2)
        assert is_connected(fb)
        assert verify_bidirectional(fb)

    def test_diameter_two(self):
        fb = FlattenedButterfly2D(k1=4, k2=4, p=2)
        assert fb.diameter == 2
        assert measured_diameter(fb) == 2

    def test_single_dimension_degenerates_to_complete_graph(self):
        fb = FlattenedButterfly2D(k1=5, k2=1, p=1)
        assert fb.diameter == 1
        assert not fb.has_link_type_restrictions
        assert measured_diameter(fb) == 1

    def test_dor_order(self):
        fb = FlattenedButterfly2D(k1=3, k2=3, p=1)
        src = fb.router_at(0, 0)
        dst = fb.router_at(2, 2)
        assert fb.min_hop_sequence(src, dst) == (LinkType.LOCAL, LinkType.GLOBAL)

    def test_min_walk_reaches_destination(self):
        fb = FlattenedButterfly2D(k1=4, k2=4, p=1)
        for src in range(fb.num_routers):
            for dst in range(fb.num_routers):
                current, hops = src, 0
                while current != dst:
                    port = fb.min_next_port(current, dst)
                    current = fb.neighbor(current, port)
                    hops += 1
                    assert hops <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FlattenedButterfly2D(k1=1, k2=2, p=1)
        with pytest.raises(ValueError):
            FlattenedButterfly2D(k1=3, k2=3, p=0)

    def test_is_a_hyperx_alias(self):
        fb = FlattenedButterfly2D(k1=4, k2=3, p=2)
        assert isinstance(fb, HyperX)
        assert fb.dims == (4, 3)


# ---------------------------------------------------------------------------
# Registry-driven property tests: every registered topology must satisfy these.
# ---------------------------------------------------------------------------

#: one representative instance per registered topology, built via the registry.
REGISTRY_INSTANCES = {
    "dragonfly": {"h": 2},
    "flattened_butterfly": {"k1": 4, "k2": 3, "nodes_per_router": 2},
    "hyperx": {"s": (4, 3, 3), "nodes_per_router": 2},
    "megafly": {"spines": 2, "leaves": 2, "h": 2, "nodes_per_router": 2},
}


def test_every_registered_topology_has_an_instance():
    # Force this table to grow with the registry.
    assert set(REGISTRY_INSTANCES) == set(TOPOLOGIES.names())


@pytest.fixture(params=sorted(REGISTRY_INSTANCES), name="topo")
def topo_fixture(request):
    return TOPOLOGIES.build(request.param, REGISTRY_INSTANCES[request.param])


class TestRegisteredTopologyProperties:
    def test_connected(self, topo):
        assert is_connected(topo)

    def test_link_symmetry(self, topo):
        # Every link has a reverse link of the same type (verify_bidirectional)
        # and the advertised ports are self-consistent.
        assert verify_bidirectional(topo)
        for router in range(topo.num_routers):
            for info in topo.ports(router):
                assert topo.neighbor(router, info.port) == info.neighbor
                assert topo.link_type(router, info.port) == info.link_type
                assert topo.port_to(router, info.neighbor) == info.port

    def test_diameter_bound(self, topo):
        assert measured_diameter(topo) <= topo.diameter

    def test_minimal_routes_valid(self, topo):
        """Each minimal route uses declared ports, reaches its destination,
        and its traversed link types match the advertised hop sequence."""
        max_local, max_global = topo.max_min_hop_counts()
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                seq = topo.min_hop_sequence(src, dst)
                current, traversed = src, []
                while current != dst:
                    port = topo.min_next_port(current, dst)
                    assert port is not None
                    declared = {info.port for info in topo.ports(current)}
                    assert port in declared
                    traversed.append(topo.link_type(current, port))
                    current = topo.neighbor(current, port)
                    assert len(traversed) <= topo.diameter
                assert tuple(traversed) == seq
                assert topo.min_next_port(src, src) is None
                # Node-attached endpoints stay within the declared envelope.
                if topo.nodes_of_router(src) and topo.nodes_of_router(dst):
                    locals_, globals_ = hop_counts(seq)
                    assert locals_ <= max_local and globals_ <= max_global

    def test_canonical_sequence_is_achieved(self, topo):
        """The declared worst case is tight: some node-router pair needs it."""
        canonical = topo.canonical_minimal_sequence
        counts = {
            hop_counts(topo.min_hop_sequence(src, dst))
            for src in range(topo.num_routers)
            if topo.nodes_of_router(src)
            for dst in range(topo.num_routers)
            if topo.nodes_of_router(dst)
        }
        assert hop_counts(canonical) in counts

    def test_route_table_matches_topology(self, topo):
        table = RouteTable(topo)
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                assert table.next_port(src, dst) == topo.min_next_port(src, dst)
                seq = topo.min_hop_sequence(src, dst)
                assert table.hop_sequence(src, dst) == seq
                assert table.distance(src, dst) == len(seq)
                link = table.first_global_link(src, dst)
                if LinkType.GLOBAL not in seq:
                    assert link is None
                else:
                    owner, gport = link
                    # The owner really is the router taking the first global
                    # hop of the walked path.
                    current = src
                    while topo.link_type(
                            current, topo.min_next_port(current, dst)) != LinkType.GLOBAL:
                        current = topo.neighbor(current, topo.min_next_port(current, dst))
                    assert owner == current
                    port = topo.min_next_port(current, dst)
                    assert topo.global_port_index(current, port) == gport

    def test_router_groups_partition(self, topo):
        groups = topo.router_groups()
        flat = [router for members in groups for router in members]
        assert sorted(flat) == list(range(topo.num_routers))
        for gid, members in enumerate(groups):
            for position, router in enumerate(members):
                assert topo.group_slot(router) == (gid, position)
        # LOCAL links never leave a group; GLOBAL links never stay inside.
        slot = {r: topo.group_slot(r)[0] for r in flat}
        for router in flat:
            for info in topo.ports(router):
                same = slot[router] == slot[info.neighbor]
                assert same == (info.link_type == LinkType.LOCAL)

    def test_node_mapping_roundtrip(self, topo):
        seen = []
        for router in range(topo.num_routers):
            for node in topo.nodes_of_router(router):
                assert topo.router_of_node(node) == router
                seen.append(node)
        assert sorted(seen) == list(range(topo.num_nodes))


class TestHyperX:
    def test_matches_flattened_butterfly_exactly(self):
        fb = FlattenedButterfly2D(k1=4, k2=3, p=2)
        hx = HyperX(dims=(4, 3), p=2)
        assert fb.num_routers == hx.num_routers
        for router in range(hx.num_routers):
            assert fb.ports(router) == hx.ports(router)
            for dst in range(hx.num_routers):
                assert fb.min_next_port(router, dst) == hx.min_next_port(router, dst)

    def test_three_dimensions_hop_sequence(self):
        hx = HyperX(dims=(3, 3, 3), p=1)
        src = hx.router_at(0, 0, 0)
        dst = hx.router_at(2, 2, 2)
        assert hx.min_hop_sequence(src, dst) == (
            LinkType.LOCAL, LinkType.GLOBAL, LinkType.GLOBAL
        )
        assert hx.canonical_minimal_sequence == (
            LinkType.LOCAL, LinkType.GLOBAL, LinkType.GLOBAL
        )
        assert hx.max_min_hop_counts() == (1, 2)

    def test_trunking_rejected(self):
        from repro.topology import HyperXParams

        with pytest.raises(ValueError):
            HyperXParams(s=(4, 4), k=2).validate()

    def test_scalar_s_with_l(self):
        from repro.topology import HyperXParams

        params = HyperXParams(s=3, l=3, nodes_per_router=1)
        params.validate()
        assert params.dims() == (3, 3, 3)


class TestMegafly:
    def test_spines_have_no_nodes(self):
        mf = Megafly(spines=2, leaves=2, h=2, p=2)
        for router in range(mf.num_routers):
            nodes = list(mf.nodes_of_router(router))
            if mf.is_spine(router):
                assert nodes == []
            else:
                assert len(nodes) == 2
        assert mf.num_nodes == mf.num_groups * mf.leaves * mf.p

    def test_leaf_to_leaf_paths_within_lgl(self):
        mf = Megafly(spines=2, leaves=2, h=2, p=2)
        for src in mf.valiant_routers():
            for dst in mf.valiant_routers():
                seq = mf.min_hop_sequence(src, dst)
                locals_, globals_ = hop_counts(seq)
                assert locals_ <= 2 and globals_ <= 1

    def test_valiant_pool_is_leaves(self):
        mf = Megafly(spines=2, leaves=2, h=2, p=2)
        pool = mf.valiant_routers()
        assert all(not mf.is_spine(router) for router in pool)
        assert len(pool) == mf.num_groups * mf.leaves

    def test_one_global_link_per_group_pair(self):
        mf = Megafly(spines=2, leaves=2, h=2, p=1)
        seen = set()
        for router in range(mf.num_routers):
            for info in mf.ports(router):
                if info.link_type != LinkType.GLOBAL:
                    continue
                pair = tuple(sorted((mf.group_of(router), mf.group_of(info.neighbor))))
                seen.add(pair)
        groups = mf.num_groups
        assert len(seen) == groups * (groups - 1) // 2

    def test_worst_escape_longer_than_canonical(self):
        mf = Megafly(spines=2, leaves=2, h=2, p=1)
        assert len(mf.worst_escape_sequence) == len(mf.canonical_minimal_sequence) + 1
        # A non-gateway spine really needs the extra local hop.
        worst = max(
            (hop_counts(mf.min_hop_sequence(spine, leaf)))
            for spine in range(mf.num_routers) if mf.is_spine(spine)
            for leaf in mf.valiant_routers()
        )
        assert worst == hop_counts(mf.worst_escape_sequence)
