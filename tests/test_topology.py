"""Topology invariants for the Dragonfly and Flattened Butterfly constructions."""

import pytest

from repro.core.link_types import LinkType
from repro.topology import (
    Dragonfly,
    FlattenedButterfly2D,
    bfs_distances,
    degree_histogram,
    is_connected,
    measured_diameter,
    verify_bidirectional,
)


@pytest.fixture(params=[1, 2, 3])
def dragonfly(request):
    return Dragonfly(h=request.param)


class TestDragonflySizes:
    def test_balanced_sizes(self, dragonfly):
        h = dragonfly.h
        assert dragonfly.a == 2 * h
        assert dragonfly.p == h
        assert dragonfly.num_groups == 2 * h * h + 1
        assert dragonfly.num_routers == dragonfly.num_groups * dragonfly.a
        assert dragonfly.num_nodes == dragonfly.num_routers * h

    def test_paper_configuration(self):
        df = Dragonfly(h=8, p=8, a=16)
        assert df.num_groups == 129
        assert df.num_routers == 2064
        assert df.num_nodes == 16512
        # 31-port router: 8 injection + 15 local + 8 global.
        assert df.radix == 15 + 8

    def test_radix(self, dragonfly):
        assert dragonfly.radix == (dragonfly.a - 1) + dragonfly.h

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Dragonfly(h=0)
        with pytest.raises(ValueError):
            Dragonfly(h=2, num_groups=1)
        with pytest.raises(ValueError):
            Dragonfly(h=2, num_groups=100)


class TestDragonflyConnectivity:
    def test_connected(self, dragonfly):
        assert is_connected(dragonfly)

    def test_bidirectional_links(self, dragonfly):
        assert verify_bidirectional(dragonfly)

    def test_degree_regular(self, dragonfly):
        histogram = degree_histogram(dragonfly)
        assert histogram == {dragonfly.radix: dragonfly.num_routers}

    def test_diameter_at_most_three(self):
        df = Dragonfly(h=2)
        assert measured_diameter(df) <= 3

    def test_one_global_link_per_group_pair(self, dragonfly):
        seen = set()
        for router in range(dragonfly.num_routers):
            for info in dragonfly.ports(router):
                if info.link_type != LinkType.GLOBAL:
                    continue
                pair = tuple(sorted((dragonfly.group_of(router),
                                     dragonfly.group_of(info.neighbor))))
                seen.add(pair)
        groups = dragonfly.num_groups
        assert len(seen) == groups * (groups - 1) // 2


class TestDragonflyMinimalRouting:
    def test_min_path_respects_lgl_order(self, dragonfly):
        n = dragonfly.num_routers
        rng_pairs = [(0, n - 1), (min(3, n - 1), n // 2), (n // 2, 1)]
        for src, dst in rng_pairs:
            if src == dst:
                continue
            seq = dragonfly.min_hop_sequence(src, dst)
            assert len(seq) <= 3
            # The sequence must be a subsequence of l-g-l (never g after l after g).
            labels = "".join("l" if s == LinkType.LOCAL else "g" for s in seq)
            assert labels in {"", "l", "g", "lg", "gl", "lgl"}

    def test_min_next_port_walk_reaches_destination(self, dragonfly):
        for src in range(0, dragonfly.num_routers, max(1, dragonfly.num_routers // 7)):
            for dst in range(0, dragonfly.num_routers, max(1, dragonfly.num_routers // 5)):
                current = src
                hops = 0
                while current != dst:
                    port = dragonfly.min_next_port(current, dst)
                    assert port is not None
                    current = dragonfly.neighbor(current, port)
                    hops += 1
                    assert hops <= 3
                assert hops == len(dragonfly.min_hop_sequence(src, dst))

    def test_min_distance_bounds(self):
        # Dragonfly minimal routing is restricted to l-g-l paths, so the
        # routing distance can exceed the raw graph distance (which may use
        # two global hops) but never the diameter of 3.
        df = Dragonfly(h=2)
        for src in range(0, df.num_routers, 5):
            distances = bfs_distances(df, src)
            for dst in range(0, df.num_routers, 7):
                routed = df.min_distance(src, dst)
                assert distances[dst] <= routed <= 3

    def test_same_router_has_empty_path(self, dragonfly):
        assert dragonfly.min_hop_sequence(0, 0) == ()
        assert dragonfly.min_next_port(0, 0) is None

    def test_gateway_and_entry_routers_consistent(self, dragonfly):
        g0, g1 = 0, 1
        gateway, gport = dragonfly.gateway_router(g0, g1)
        assert dragonfly.group_of(gateway) == g0
        peer = dragonfly.global_peer(gateway, gport)
        assert dragonfly.group_of(peer) == g1
        assert dragonfly.entry_router(g0, g1) == peer


class TestDragonflyNodeMapping:
    def test_router_of_node_roundtrip(self, dragonfly):
        for node in range(0, dragonfly.num_nodes, max(1, dragonfly.num_nodes // 11)):
            router = dragonfly.router_of_node(node)
            assert node in dragonfly.nodes_of_router(router)

    def test_out_of_range_rejected(self, dragonfly):
        with pytest.raises(ValueError):
            dragonfly.router_of_node(dragonfly.num_nodes)
        with pytest.raises(ValueError):
            dragonfly.ports(dragonfly.num_routers)


class TestFlattenedButterfly:
    def test_sizes(self):
        fb = FlattenedButterfly2D(k1=4, k2=3, p=2)
        assert fb.num_routers == 12
        assert fb.num_nodes == 24
        assert fb.radix == 3 + 2

    def test_connected_and_bidirectional(self):
        fb = FlattenedButterfly2D(k1=4, k2=4, p=2)
        assert is_connected(fb)
        assert verify_bidirectional(fb)

    def test_diameter_two(self):
        fb = FlattenedButterfly2D(k1=4, k2=4, p=2)
        assert fb.diameter == 2
        assert measured_diameter(fb) == 2

    def test_single_dimension_degenerates_to_complete_graph(self):
        fb = FlattenedButterfly2D(k1=5, k2=1, p=1)
        assert fb.diameter == 1
        assert not fb.has_link_type_restrictions
        assert measured_diameter(fb) == 1

    def test_dor_order(self):
        fb = FlattenedButterfly2D(k1=3, k2=3, p=1)
        src = fb.router_at(0, 0)
        dst = fb.router_at(2, 2)
        assert fb.min_hop_sequence(src, dst) == (LinkType.LOCAL, LinkType.GLOBAL)

    def test_min_walk_reaches_destination(self):
        fb = FlattenedButterfly2D(k1=4, k2=4, p=1)
        for src in range(fb.num_routers):
            for dst in range(fb.num_routers):
                current, hops = src, 0
                while current != dst:
                    port = fb.min_next_port(current, dst)
                    current = fb.neighbor(current, port)
                    hops += 1
                    assert hops <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FlattenedButterfly2D(k1=1, k2=2, p=1)
        with pytest.raises(ValueError):
            FlattenedButterfly2D(k1=3, k2=3, p=0)
