"""``python -m repro.experiments inspect`` error handling (PR 8 satellite).

A missing or corrupt store path must exit nonzero with a clear one-line
message on stderr — never a raw traceback.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.orchestrator import ResultStore, StoreError

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_inspect(store_path: Path):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", "inspect", str(store_path)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_inspect_missing_store(tmp_path):
    result = run_inspect(tmp_path / "nope.json")
    assert result.returncode == 2
    assert "store not found" in result.stderr
    assert "Traceback" not in result.stderr


def test_inspect_corrupt_json(tmp_path):
    store = tmp_path / "corrupt.json"
    store.write_text("{definitely not json", encoding="utf-8")
    result = run_inspect(store)
    assert result.returncode == 2
    assert "not readable JSON" in result.stderr
    assert "Traceback" not in result.stderr


def test_inspect_wrong_top_level(tmp_path):
    store = tmp_path / "list.json"
    store.write_text("[1, 2, 3]", encoding="utf-8")
    result = run_inspect(store)
    assert result.returncode == 2
    assert "JSON object" in result.stderr
    assert "Traceback" not in result.stderr


def test_inspect_unsupported_version(tmp_path):
    store = tmp_path / "future.json"
    store.write_text(json.dumps({"version": 99, "results": {}}), encoding="utf-8")
    result = run_inspect(store)
    assert result.returncode == 2
    assert "unsupported version" in result.stderr


def test_inspect_malformed_entries(tmp_path):
    store = tmp_path / "mangled.json"
    store.write_text(
        json.dumps({"version": 2, "results": {"abc123": {"record": "not-a-dict"}}}),
        encoding="utf-8",
    )
    result = run_inspect(store)
    assert result.returncode == 2
    assert "malformed record entries" in result.stderr
    assert "Traceback" not in result.stderr


def test_strict_open_raises_lenient_does_not(tmp_path):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{oops", encoding="utf-8")
    # Sweep path: damaged cache is treated as empty (results recomputable).
    assert len(ResultStore(str(corrupt))) == 0
    with pytest.raises(StoreError):
        ResultStore(str(corrupt), strict=True)
    with pytest.raises(StoreError):
        ResultStore(str(tmp_path / "missing.json"), strict=True)
