"""Fault-injection subsystem: schedules, re-table-ing, accounting, recovery.

The load-bearing guarantees:

* **determinism** — a faulted run is bit-identical across in-process reruns
  for the same (seed, schedule), and a *no-fault* config hashes to the same
  ``config_key`` as before the subsystem existed (goldens untouched);
* **re-table-ing equality** — after ``invalidate()`` under fault state, the
  dense and lazy front-ends answer identically on every registered topology,
  and recovery rebuilds columns byte-identical to the pristine fill;
* **partition detection** — a schedule that disconnects the live graph
  raises a typed :class:`~repro.faults.NetworkPartitionedError`;
* **conservation** — with the drop policy, every packet that entered the
  network is either delivered or dropped-with-accounting once drained.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import SimulationConfig
from repro.core.arrangement import VcArrangement
from repro.faults import (
    FaultSchedule,
    FaultSpec,
    LinkDown,
    LinkUp,
    NetworkPartitionedError,
    RouterDown,
    RouterUp,
    parse_faults,
)
from repro.routing.route_table import LazyRouteTable, RouteTable
from repro.session import Session
from repro.topology import TOPOLOGIES
from repro.topology.base import LinkType

# Kept in sync with the registry by test_route_tables.py.
REGISTRY_INSTANCES = {
    "dragonfly": {"h": 2},
    "flattened_butterfly": {"k1": 4, "k2": 3, "nodes_per_router": 2},
    "hyperx": {"s": (4, 3, 3), "nodes_per_router": 2},
    "megafly": {"spines": 2, "leaves": 2, "h": 2, "nodes_per_router": 2},
}


@pytest.fixture(params=sorted(REGISTRY_INSTANCES), name="topo")
def topo_fixture(request):
    return TOPOLOGIES.build(request.param, REGISTRY_INSTANCES[request.param])


def flap_config(policy: str = "drop", **overrides) -> SimulationConfig:
    """TINY dragonfly with a warmup-spanning global-link flap.

    A *global* link is faulted on purpose: detours around a dead global link
    stay within the VC arrangement's escape budget, whereas local-link
    detours can exceed the default 2-VC arrangement and wedge (documented in
    DESIGN.md §11) — the roomier ``single_class(4, 2)`` arrangement guards
    against that here too.
    """
    base = SimulationConfig(
        warmup_cycles=300,
        measure_cycles=600,
        seed=3,
        arrangement=VcArrangement.single_class(4, 2),
    ).with_load(0.5)
    topology = base.network.build()
    port = next(
        info.port
        for info in topology.ports(0)
        if topology.link_type(0, info.port) == LinkType.GLOBAL
    )
    schedule = FaultSchedule(
        events=(LinkDown(400, 0, port), LinkUp(900, 0, port)), policy=policy
    )
    return dataclasses.replace(base, faults=schedule, **overrides)


def run_session(config: SimulationConfig, windows: int = 3):
    session = Session(config)
    session.warmup()
    results = [session.measure(label=f"w{index}") for index in range(windows)]
    return session, results, session.record()


# ---------------------------------------------------------------------------
# Schedules: validation, parsing, sampling, hashing
# ---------------------------------------------------------------------------

class TestFaultSchedule:
    def test_events_sorted_and_validated(self):
        schedule = FaultSchedule(
            events=(LinkUp(900, 0, 1), LinkDown(400, 0, 1), RouterDown(500, 2))
        )
        assert [event.cycle for event in schedule.events] == [400, 500, 900]
        schedule.validate()
        with pytest.raises(ValueError):
            FaultSchedule(events=(LinkDown(0, 0, 1),)).validate()
        with pytest.raises(ValueError):
            FaultSchedule(policy="explode").validate()

    def test_digest_is_stable_and_order_insensitive(self):
        a = FaultSchedule(events=(LinkDown(400, 0, 1), LinkUp(900, 0, 1)))
        b = FaultSchedule(events=(LinkUp(900, 0, 1), LinkDown(400, 0, 1)))
        assert a.digest() == b.digest()
        assert a.digest() != FaultSchedule(events=(LinkDown(401, 0, 1),)).digest()

    def test_parse_grammar(self):
        spec = parse_faults("link:0:3@400-900; router:7@500-1000; policy=stall")
        schedule = spec.resolve(SimulationConfig())
        kinds = [event.kind for event in schedule.events]
        assert kinds == ["link-down", "router-down", "link-up", "router-up"]
        assert schedule.policy == "stall"
        with pytest.raises(ValueError):
            parse_faults("wormhole:3@1-2")

    def test_sampled_schedules_are_seed_deterministic(self):
        config = SimulationConfig()
        spec = parse_faults("sample:mtbf=4000,mttr=400,until=2000,seed=9")
        again = parse_faults("sample:mtbf=4000,mttr=400,until=2000,seed=9")
        other = parse_faults("sample:mtbf=4000,mttr=400,until=2000,seed=10")
        assert spec.resolve(config) == again.resolve(config)
        assert spec.resolve(config) != other.resolve(config)

    def test_empty_schedule_leaves_config_key_unchanged(self):
        from repro.experiments.orchestrator import config_key

        config = SimulationConfig(warmup_cycles=150, measure_cycles=300)
        payload = dataclasses.asdict(config)
        payload.pop("faults")
        import hashlib

        key = config_key(config)
        legacy = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode()
        ).hexdigest()[: len(key)]
        assert key == legacy

    def test_non_empty_schedule_changes_config_key(self):
        from repro.experiments.orchestrator import config_key

        assert config_key(flap_config()) != config_key(
            dataclasses.replace(flap_config(), faults=FaultSchedule())
        )


# ---------------------------------------------------------------------------
# Determinism and transient visibility
# ---------------------------------------------------------------------------

class TestFaultedRunDeterminism:
    @pytest.mark.parametrize("policy", ["drop", "stall"])
    def test_faulted_runs_are_bit_identical(self, policy):
        _, first, record_a = run_session(flap_config(policy))
        _, second, record_b = run_session(flap_config(policy))
        for a, b in zip(first, second):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        dict_a, dict_b = record_a.to_dict(), record_b.to_dict()
        # Wall-clock provenance is stamped on purpose and never bit-stable.
        dict_a["provenance"].pop("wall_time_s")
        dict_b["provenance"].pop("wall_time_s")
        assert dict_a == dict_b

    def test_transient_visible_in_window_summaries(self):
        session, results, record = run_session(flap_config("drop"))
        controller = session.sim.fault_controller
        assert controller is not None
        assert controller.faults_applied == 2
        assert controller.packets_dropped > 0
        assert controller.packets_rerouted > 0
        assert controller.columns_invalidated > 0
        # Window 0 (cycles 300-900) sees only the down-event at 400; the
        # recovery at 900 lands on the boundary and shows from window 1 on —
        # the cumulative counters make the transient *visible per window*.
        assert results[0].extra["faults_applied"] >= 1
        assert results[-1].extra["faults_applied"] == 2
        assert results[0].extra["packets_dropped"] > 0
        assert results[-1].extra["packets_dropped"] == controller.packets_dropped
        provenance = record.provenance["faults"]
        assert provenance["applied"] == 2
        assert provenance["policy"] == "drop"
        assert provenance["schedule_digest"] == flap_config().faults.digest()
        assert provenance["packets_dropped"] == controller.packets_dropped

    def test_stall_policy_drops_nothing(self):
        session, _, _ = run_session(flap_config("stall"))
        controller = session.sim.fault_controller
        assert controller.packets_dropped == 0
        assert controller.packets_rerouted > 0

    def test_probe_hooks_fire(self):
        from repro.probes import Probe

        seen = {"faults": [], "drops": 0}

        class FaultWatcher(Probe):
            def on_fault_applied(self, event, cycle):
                seen["faults"].append((event.kind, cycle))

            def on_packet_dropped(self, packet, router_id, reason, cycle):
                seen["drops"] += 1

        session = Session(flap_config("drop"), probes=[FaultWatcher()])
        session.warmup()
        session.measure()
        session.measure()  # second window covers the recovery at cycle 900
        assert seen["faults"] == [("link-down", 400), ("link-up", 900)]
        assert seen["drops"] == session.sim.fault_controller.packets_dropped


# ---------------------------------------------------------------------------
# Conservation and router failures
# ---------------------------------------------------------------------------

class TestAccounting:
    def test_drop_conservation_after_drain(self):
        session = Session(flap_config("drop"))
        session.warmup()
        for index in range(3):
            session.measure(label=f"w{index}")
        session.drain()
        sim = session.sim
        metrics = sim.metrics
        controller = sim.fault_controller
        assert sim._resident_ledger.count == 0
        assert (
            metrics.packets_generated
            == metrics.packets_delivered_total + controller.packets_dropped
        )

    def test_router_failure_drops_and_suppresses(self):
        config = flap_config("drop")
        topology = config.network.build()
        victim = topology.neighbor(0, config.faults.events[0].port)
        schedule = FaultSchedule(
            events=(RouterDown(400, victim), RouterUp(900, victim)),
            policy="drop",
        )
        session = Session(dataclasses.replace(config, faults=schedule))
        session.warmup()
        for index in range(3):
            session.measure(label=f"w{index}")
        controller = session.sim.fault_controller
        assert controller.packets_suppressed > 0  # traffic to/from dead nodes
        assert controller.packets_dropped > 0  # buffered state was lost
        session.drain()
        metrics = session.sim.metrics
        # Conservation with an in-flight term: packets detoured mid-path can
        # end up past their VC budget once pristine routes return, and stay
        # resident forever (DESIGN.md §11 documents the capacity caveat) —
        # but they are *accounted* resident, never silently lost.
        assert (
            metrics.packets_generated
            == metrics.packets_delivered_total
            + controller.packets_dropped
            + session.sim._resident_ledger.count
        )
        record = session.record()
        provenance = record.provenance["faults"]
        assert provenance["packets_suppressed"] == controller.packets_suppressed


class TestPartitionDetection:
    def test_isolating_a_router_raises_typed_error(self):
        config = flap_config("drop")
        topology = config.network.build()
        events = tuple(
            LinkDown(400, 0, info.port) for info in topology.ports(0)
        )
        session = Session(
            dataclasses.replace(config, faults=FaultSchedule(events=events))
        )
        session.warmup()  # the down-events fire at cycle 400, mid-measure
        with pytest.raises(NetworkPartitionedError):
            session.measure()

    def test_dead_router_is_not_a_partition(self):
        # Sink-hole rule: a dead router removes itself from the live graph,
        # so taking it (and all its links) down partitions nothing.
        config = flap_config("drop")
        schedule = FaultSchedule(events=(RouterDown(400, 0), RouterUp(900, 0)))
        session, results, _ = run_session(
            dataclasses.replace(config, faults=schedule)
        )
        assert results[-1].packets_delivered > 0


# ---------------------------------------------------------------------------
# Route-table invalidation: dense/lazy equality and recovery byte-identity
# ---------------------------------------------------------------------------

def _dead_pair(table, router=0, port=0):
    """Directed (router, port) keys of both ends of one link."""
    other = table._neighbor[router * table._ports_per_router + port]
    back = table._back_ports()[router * table._ports_per_router + port]
    return frozenset({(router, port), (other, back)})


class TestFaultRetabling:
    def test_lazy_matches_dense_under_fault_state(self, topo):
        n = topo.num_routers
        dense = RouteTable(topo)
        lazy = LazyRouteTable(topo)
        dead = _dead_pair(dense)
        for table in (dense, lazy):
            table.set_fault_state(dead, frozenset())
            for dst in range(n):
                table.invalidate(dst)
        for dst in range(n):
            for src in range(n):
                assert lazy.next_port(src, dst) == dense.next_port(src, dst)
                assert lazy.hop_sequence(src, dst) == dense.hop_sequence(src, dst)
                assert lazy.distance(src, dst) == dense.distance(src, dst)
                assert (lazy.first_global_link(src, dst)
                        == dense.first_global_link(src, dst))

    def test_detours_avoid_the_dead_link(self, topo):
        table = RouteTable(topo)
        dead = _dead_pair(table)
        table.set_fault_state(dead, frozenset())
        for dst in range(topo.num_routers):
            table.invalidate(dst)
        for dst in range(topo.num_routers):
            for src in range(topo.num_routers):
                if src == dst:
                    continue
                port = table.next_port(src, dst)
                assert port >= 0
                assert (src, port) not in dead

    def test_recovery_restores_pristine_bytes(self, topo):
        pristine = RouteTable(topo)
        table = RouteTable(topo)
        dead = _dead_pair(table)
        table.set_fault_state(dead, frozenset())
        for dst in range(topo.num_routers):
            table.invalidate(dst)
        # Recovery: clear the fault state, re-invalidate what was filled
        # under faults, and the pristine fill must come back byte-identical
        # (persistent sequence interning keeps ids stable across rebuilds).
        table.set_fault_state(frozenset(), frozenset())
        for dst in sorted(table._fault_dirty):
            table.invalidate(dst)
        assert bytes(table._seq_ids) == bytes(pristine._seq_ids)
        assert bytes(table._next_port) == bytes(pristine._next_port)
        # Persistent interning: the pristine ids are a stable prefix (detour
        # sequences interned during the fault stay allocated but unreferenced).
        prefix = len(pristine._sequences)
        assert table._sequences[:prefix] == pristine._sequences

    def test_unreachable_destination_raises(self, topo):
        table = RouteTable(topo)
        per = table._ports_per_router
        dead = set()
        for port in range(per):
            if table._neighbor[port] >= 0:
                dead |= _dead_pair(table, 0, port)
        table.set_fault_state(frozenset(dead), frozenset())
        with pytest.raises(NetworkPartitionedError):
            table.invalidate(0)

    def test_dead_destination_keeps_stale_column(self, topo):
        # Sink-hole rule: columns *to* a dead router are never recomputed.
        pristine = RouteTable(topo)
        table = RouteTable(topo)
        dead_router = pristine._neighbor[0]
        dead = set()
        for port in range(table._ports_per_router):
            if table._neighbor[dead_router * table._ports_per_router + port] >= 0:
                dead |= _dead_pair(table, dead_router, port)
        table.set_fault_state(frozenset(dead), frozenset({dead_router}))
        table.invalidate(dead_router)
        for src in range(topo.num_routers):
            assert table.next_port(src, dead_router) == pristine.next_port(
                src, dead_router
            )


# ---------------------------------------------------------------------------
# Orchestration integration
# ---------------------------------------------------------------------------

class TestFaultOrchestration:
    def test_fault_spec_applies_to_jobs_and_rewrites_keys(self, tmp_path):
        from repro.experiments.orchestrator import (
            Job,
            ResultStore,
            config_key,
            orchestration,
            run_jobs,
        )

        config = SimulationConfig(
            warmup_cycles=150, measure_cycles=300, seed=5
        ).with_load(0.3)
        job = Job(
            key=config_key(config), series="faulted", load=0.3, seed=5,
            config=config,
        )
        spec = parse_faults("link:0:3@200-400")
        store = ResultStore(str(tmp_path / "store.json"))
        with orchestration(store=store, faults=spec):
            stats = run_jobs([job])
        assert len(stats.results) == 1
        faulted_key = next(iter(stats.results))
        assert faulted_key != job.key  # schedules hash into the config key
        store.flush()
        entries = list(store.entries())
        assert len(entries) == 1
        _, record, _ = entries[0]
        assert record.provenance["faults"]["applied"] == 2

    def test_deadlock_outcome_is_typed_and_inspectable(self, tmp_path):
        import subprocess
        import sys

        from repro.experiments.orchestrator import ResultStore

        config = SimulationConfig(
            warmup_cycles=10, measure_cycles=50, deadlock_window_cycles=5
        ).with_load(0.0)
        session = Session(config)
        session.warmup()
        # Plant a resident packet so the idle window reads as a wedge.
        session.sim._resident_ledger.count = 1
        result = session.measure()
        assert result.deadlock_suspected
        assert result.extra["outcome"] == "deadlock"
        outcome = result.extra["deadlock"]
        assert outcome["resident_packets"] == 1
        record = session.record()
        assert record.provenance["deadlock"][0]["cycle"] == outcome["cycle"]

        path = tmp_path / "store.json"
        store = ResultStore(str(path))
        store.put_record(
            "wedged", record, meta={"series": "w", "load": 0.0, "seed": 1}
        )
        store.flush()
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "inspect", str(path),
             "--verbose"],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0
        assert "DEADLOCK suspected at cycle" in completed.stdout
        assert "deadlock:" in completed.stdout
