"""Unit tests for the distance-based baseline and FlexVC policies.

These tests encode the worked examples of Sections II and III: the l0-g1-l2
slot assignment of the Dragonfly baseline, the per-hop VC ranges of Figures 1,
3 and 4, and the opportunistic-hop constraints of Definitions 1 and 2.
"""

import pytest

from repro.core.arrangement import VcArrangement
from repro.core.baseline import DistanceBasedPolicy
from repro.core.flexvc import FlexVcPolicy, make_policy
from repro.core.link_types import G, L, LinkType, MessageClass
from repro.core.vc_policy import HopContext, HopKind


def ctx(out_type, remaining, escape, input_type=None, input_vc=-1,
        msg_class=MessageClass.REQUEST, phase_offsets=(0, 0),
        phase_position=0, phase_global_taken=False):
    return HopContext(
        msg_class=msg_class,
        out_type=out_type,
        intended_remaining=remaining,
        escape_from_next=escape,
        input_type=input_type,
        input_vc=input_vc,
        phase_offsets=phase_offsets,
        phase_position=phase_position,
        phase_global_taken=phase_global_taken,
    )


class TestHopContextValidation:
    def test_first_hop_must_match_out_type(self):
        with pytest.raises(ValueError):
            ctx(G, (L, G, L), (L,))

    def test_empty_remaining_rejected(self):
        with pytest.raises(ValueError):
            ctx(L, (), ())


class TestBaselineDragonflyMin:
    """Baseline MIN in a 2/1 Dragonfly uses slots l0 - g0 - l1."""

    policy = DistanceBasedPolicy(VcArrangement.single_class(2, 1))

    def test_first_local_hop(self):
        r = self.policy.allowed_vcs(ctx(L, (L, G, L), (G, L)))
        assert (r.lo, r.hi) == (0, 0)

    def test_global_hop(self):
        r = self.policy.allowed_vcs(
            ctx(G, (G, L), (L,), input_type=L, input_vc=0, phase_position=1)
        )
        assert (r.lo, r.hi) == (0, 0)

    def test_final_local_hop_uses_second_vc(self):
        r = self.policy.allowed_vcs(
            ctx(L, (L,), (), input_type=G, input_vc=0,
                phase_position=2, phase_global_taken=True)
        )
        assert (r.lo, r.hi) == (1, 1)

    def test_short_path_global_first_still_uses_slot_zero(self):
        # Path g1-l2 (source router owns the global link).
        r = self.policy.allowed_vcs(ctx(G, (G, L), (L,)))
        assert (r.lo, r.hi) == (0, 0)

    def test_all_hops_are_safe(self):
        assert self.policy.hop_kind(ctx(L, (L, G, L), (G, L))) == HopKind.SAFE


class TestBaselineValiantPhases:
    """Baseline VAL in a 4/2 Dragonfly walks slots l0,g0,l1 then l2,g1,l3."""

    policy = DistanceBasedPolicy(VcArrangement.single_class(4, 2))

    def test_first_phase_local(self):
        r = self.policy.allowed_vcs(ctx(L, (L, G, L, L, G, L), (L, G, L)))
        assert (r.lo, r.hi) == (0, 0)

    def test_second_phase_first_local(self):
        r = self.policy.allowed_vcs(
            ctx(L, (L, G, L), (G, L), input_type=L, input_vc=1, phase_offsets=(2, 1))
        )
        assert (r.lo, r.hi) == (2, 2)

    def test_second_phase_global(self):
        r = self.policy.allowed_vcs(
            ctx(G, (G, L), (L,), input_type=L, input_vc=2,
                phase_offsets=(2, 1), phase_position=1)
        )
        assert (r.lo, r.hi) == (1, 1)

    def test_second_phase_last_local(self):
        r = self.policy.allowed_vcs(
            ctx(L, (L,), (), input_type=G, input_vc=1,
                phase_offsets=(2, 1), phase_position=2, phase_global_taken=True)
        )
        assert (r.lo, r.hi) == (3, 3)


class TestBaselineRequestReply:
    policy = DistanceBasedPolicy(VcArrangement.request_reply((2, 1), (2, 1)))

    def test_request_uses_request_subsequence(self):
        r = self.policy.allowed_vcs(ctx(L, (L, G, L), (G, L)))
        assert (r.lo, r.hi) == (0, 0)

    def test_reply_is_offset_past_request_vcs(self):
        r = self.policy.allowed_vcs(
            ctx(L, (L, G, L), (G, L), msg_class=MessageClass.REPLY)
        )
        assert (r.lo, r.hi) == (2, 2)

    def test_reply_global_offset(self):
        r = self.policy.allowed_vcs(
            ctx(G, (G, L), (L,), msg_class=MessageClass.REPLY)
        )
        assert (r.lo, r.hi) == (1, 1)

    def test_forbidden_when_slot_beyond_subsequence(self):
        # A Valiant request path cannot be expressed with 2/1 request VCs.
        policy = DistanceBasedPolicy(VcArrangement.request_reply((2, 1), (2, 1)))
        context = ctx(L, (L, G, L, L, G, L), (L, G, L))
        assert policy.hop_kind(context) == HopKind.FORBIDDEN


class TestFlexVcSafeHops:
    """Figure 3a: safe MIN/VAL paths in a generic diameter-2 network with 4 VCs."""

    policy = FlexVcPolicy(VcArrangement.single_class(4, 0))

    def test_min_first_hop_allows_vcs_0_to_2(self):
        r = self.policy.allowed_vcs(ctx(L, (L, L), (L,)))
        assert (r.lo, r.hi) == (0, 2)

    def test_min_last_hop_allows_vcs_0_to_3(self):
        r = self.policy.allowed_vcs(ctx(L, (L,), (), input_type=L, input_vc=1))
        assert (r.lo, r.hi) == (0, 3)

    def test_valiant_first_hop_allows_only_vc0(self):
        r = self.policy.allowed_vcs(ctx(L, (L, L, L, L), (L, L)))
        assert (r.lo, r.hi) == (0, 0)

    def test_valiant_third_hop(self):
        r = self.policy.allowed_vcs(ctx(L, (L, L), (L,), input_type=L, input_vc=1))
        assert (r.lo, r.hi) == (0, 2)

    def test_hops_are_safe(self):
        assert self.policy.hop_kind(ctx(L, (L, L), (L,))) == HopKind.SAFE


class TestFlexVcOpportunisticHops:
    """Figure 3b: opportunistic Valiant with 3 VCs in a diameter-2 network."""

    policy = FlexVcPolicy(VcArrangement.single_class(3, 0))

    def test_valiant_first_hop_is_opportunistic(self):
        context = ctx(L, (L, L, L, L), (L, L))
        assert self.policy.hop_kind(context) == HopKind.OPPORTUNISTIC
        r = self.policy.allowed_vcs(context)
        assert (r.lo, r.hi) == (0, 0)

    def test_opportunistic_hop_cannot_go_below_current_vc(self):
        # Packet already sits in VC 1: no VC >= 1 leaves room for a 2-hop escape.
        context = ctx(L, (L, L, L), (L, L), input_type=L, input_vc=1)
        assert self.policy.allowed_vcs(context) is None
        assert self.policy.hop_kind(context) == HopKind.FORBIDDEN

    def test_valiant_impossible_with_two_vcs(self):
        policy = FlexVcPolicy(VcArrangement.single_class(2, 0))
        context = ctx(L, (L, L, L, L), (L, L))
        assert policy.allowed_vcs(context) is None

    def test_min_still_safe_with_three_vcs(self):
        assert self.policy.hop_kind(ctx(L, (L, L), (L,))) == HopKind.SAFE


class TestFlexVcDragonfly:
    """Table III: Dragonfly with link-type restrictions."""

    def test_val_opportunistic_with_3_2(self):
        policy = FlexVcPolicy(VcArrangement.single_class(3, 2))
        # First hop of the Valiant path (4 local hops remain, only 3 local VCs
        # implemented): the path is only supported opportunistically.
        first = ctx(L, (L, G, L, L, G, L), (L, G, L))
        assert policy.hop_kind(first) == HopKind.OPPORTUNISTIC
        assert policy.allowed_vcs(first) is not None
        # Third hop (local into the intermediate router): the admissible range
        # collapses to the single lowest VC, leaving room for the l-g-l escape.
        third = ctx(L, (L, L, G, L), (L, G, L), input_type=G, input_vc=0)
        r = policy.allowed_vcs(third)
        assert (r.lo, r.hi) == (0, 0)

    def test_val_forbidden_with_2_2(self):
        policy = FlexVcPolicy(VcArrangement.single_class(2, 2))
        context = ctx(L, (L, G, L, L, G, L), (L, G, L))
        assert policy.allowed_vcs(context) is None

    def test_val_forbidden_global_hop_with_3_1(self):
        policy = FlexVcPolicy(VcArrangement.single_class(3, 1))
        context = ctx(G, (G, L, L, G, L), (L, G, L), input_type=L, input_vc=0)
        assert policy.allowed_vcs(context) is None

    def test_min_wider_range_with_4_2(self):
        policy = FlexVcPolicy(VcArrangement.single_class(4, 2))
        r = policy.allowed_vcs(ctx(L, (L, G, L), (G, L)))
        assert (r.lo, r.hi) == (0, 2)
        r = policy.allowed_vcs(ctx(G, (G, L), (L,), input_type=L, input_vc=0))
        assert (r.lo, r.hi) == (0, 1)


class TestFlexVcRequestReply:
    """Figure 4: 3+2 = 5 VCs in a generic diameter-2 network."""

    policy = FlexVcPolicy(VcArrangement.request_reply((3, 0), (2, 0)))

    def test_request_min_first_hop(self):
        r = self.policy.allowed_vcs(ctx(L, (L, L), (L,)))
        assert (r.lo, r.hi) == (0, 1)

    def test_reply_min_can_borrow_request_vcs(self):
        r = self.policy.allowed_vcs(ctx(L, (L, L), (L,), msg_class=MessageClass.REPLY))
        assert (r.lo, r.hi) == (0, 3)

    def test_reply_valiant_opportunistically_feasible(self):
        context = ctx(L, (L, L, L, L), (L, L), msg_class=MessageClass.REPLY)
        r = self.policy.allowed_vcs(context)
        assert r is not None and r.lo == 0

    def test_request_valiant_opportunistic_with_3_request_vcs(self):
        context = ctx(L, (L, L, L, L), (L, L))
        assert self.policy.hop_kind(context) == HopKind.OPPORTUNISTIC


class TestPolicyFactory:
    def test_make_baseline(self):
        assert isinstance(make_policy("baseline", VcArrangement.single_class(2, 1)),
                          DistanceBasedPolicy)

    def test_make_flexvc(self):
        assert isinstance(make_policy("flexvc", VcArrangement.single_class(2, 1)),
                          FlexVcPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("damq", VcArrangement.single_class(2, 1))


class TestPolicyNeverExceedsImplementedVcs:
    @pytest.mark.parametrize("local,global_", [(2, 1), (3, 2), (4, 2), (8, 4)])
    def test_ranges_within_bounds(self, local, global_):
        policy = FlexVcPolicy(VcArrangement.single_class(local, global_))
        for remaining, escape in [
            ((L, G, L), (G, L)),
            ((G, L), (L,)),
            ((L,), ()),
            ((L, G, L, L, G, L), (L, G, L)),
        ]:
            context = ctx(remaining[0], remaining, escape)
            r = policy.allowed_vcs(context)
            if r is None:
                continue
            ceiling = local if remaining[0] == LinkType.LOCAL else global_
            assert 0 <= r.lo <= r.hi < ceiling
