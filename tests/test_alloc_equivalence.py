"""Incremental-allocator equivalence and in-process reproducibility.

The fast router rebuilds allocation around per-port blocked verdicts,
iteration skip-lists, inlined arbitration and flat hot-state slabs
(DESIGN.md §6).  These are pure execution-strategy changes: every simulation
must remain bit-identical to the kept-for-test full-rescan implementation
(:class:`repro.router.reference.ReferenceRouter`).  The property test below
checks *delivery traces* — every delivered packet's id, endpoints and
delivery cycle — across ~50 short randomized configurations spanning all
four routings, both VC policies and three topologies.

The reproducibility tests cover the per-simulation packet-id counter:
back-to-back runs in one process must produce identical results *and*
identical pid sequences (the old module-global counter leaked state between
Simulation instances).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import RoutingConfig, SimulationConfig, TrafficConfig
from repro.experiments.runner import TINY
from repro.experiments.topologies import minimal_feasible_arrangement
from repro.session import Session
from repro.simulation import Simulation

TOPOLOGIES = ("dragonfly", "hyperx", "megafly")
ROUTINGS = ("min", "val", "par", "pb")
POLICIES = ("baseline", "flexvc")

#: randomized variants per (topology, routing, policy) combination; with the
#: 24 combinations this exercises 48 distinct configurations.
VARIANTS = 2


def _random_config(rng: random.Random, topology: str, algorithm: str,
                   vc_policy: str) -> SimulationConfig:
    # Short link latencies keep the short runs delivery-rich (TINY's default
    # 100-cycle global latency would starve a 240-cycle run of deliveries).
    network = dataclasses.replace(
        TINY.network_for(topology), local_latency=4, global_latency=12
    )
    arrangement = minimal_feasible_arrangement(network, algorithm, vc_policy)
    from repro.config import RouterConfig

    return SimulationConfig(
        network=network,
        router=RouterConfig(
            buffer_organization=rng.choice(("static", "damq")),
        ),
        routing=RoutingConfig(
            algorithm=algorithm,
            vc_policy=vc_policy,
            vc_selection=rng.choice(("jsq", "highest", "lowest", "random")),
        ),
        arrangement=arrangement,
        traffic=TrafficConfig(
            pattern=rng.choice(("uniform", "adversarial")),
            load=rng.choice((0.3, 0.5, 0.7, 0.9)),
        ),
        warmup_cycles=80,
        measure_cycles=160,
        seed=rng.randrange(10_000),
    )


def _delivery_trace(sim: Simulation) -> list:
    trace: list = []
    sim.traffic.delivery_hook = (
        lambda packet, cycle: trace.append(
            (packet.pid, packet.src_node, packet.dst_node, packet.hops, cycle)
        )
    )
    return trace


def _run(config: SimulationConfig, reference: bool):
    sim = Simulation(config, use_reference_allocator=reference)
    trace = _delivery_trace(sim)
    result = dataclasses.asdict(sim.run())
    return trace, result


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("algorithm", ROUTINGS)
@pytest.mark.parametrize("vc_policy", POLICIES)
def test_incremental_allocator_matches_full_rescan(topology, algorithm, vc_policy):
    rng = random.Random(hash((topology, algorithm, vc_policy)) & 0xFFFF)
    for _ in range(VARIANTS):
        config = _random_config(rng, topology, algorithm, vc_policy)
        fast_trace, fast_result = _run(config, reference=False)
        ref_trace, ref_result = _run(config, reference=True)
        label = (f"{topology}/{algorithm}/{vc_policy} "
                 f"{config.traffic.pattern}@{config.traffic.load} "
                 f"{config.router.buffer_organization}/"
                 f"{config.routing.vc_selection} seed={config.seed}")
        assert fast_trace, f"no deliveries in {label} (degenerate config)"
        assert fast_trace == ref_trace, f"delivery trace drifted: {label}"
        assert fast_result == ref_result, f"summary drifted: {label}"


def _has_numpy() -> bool:
    from repro.kernel import numpy_or_none

    return numpy_or_none() is not None


@pytest.mark.skipif(not _has_numpy(), reason="vectorized backend needs numpy")
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("algorithm", ("min", "val"))
@pytest.mark.parametrize("vc_policy", POLICIES)
def test_vectorized_backend_matches_python(topology, algorithm, vc_policy):
    """Python vs vectorized delivery-trace identity over the random matrix.

    Reuses the allocator-equivalence matrix restricted to the kernel's
    support envelope: min/val routing with statically partitioned buffers
    (the adaptive routings and DAMQ run the python path by design — their
    fallback behavior is covered in test_kernel_backend.py).  The same RNG
    stream as the allocator test keeps the configurations identical, so a
    trace drift here isolates the kernel rather than config generation.
    """
    rng = random.Random(hash((topology, algorithm, vc_policy)) & 0xFFFF)
    for _ in range(VARIANTS):
        config = _random_config(rng, topology, algorithm, vc_policy)
        config = dataclasses.replace(
            config,
            router=dataclasses.replace(
                config.router, buffer_organization="static"
            ),
        )
        python_sim = Simulation(config)
        python_trace = _delivery_trace(python_sim)
        python_result = dataclasses.asdict(python_sim.run())
        vector_sim = Simulation(config, backend="vectorized")
        assert vector_sim.backend_active == "vectorized", \
            vector_sim.backend_fallback_reason
        vector_trace = _delivery_trace(vector_sim)
        vector_result = dataclasses.asdict(vector_sim.run())
        label = (f"{topology}/{algorithm}/{vc_policy} "
                 f"{config.traffic.pattern}@{config.traffic.load} "
                 f"{config.routing.vc_selection} seed={config.seed}")
        assert python_trace, f"no deliveries in {label} (degenerate config)"
        assert python_trace == vector_trace, \
            f"vectorized delivery trace drifted: {label}"
        assert python_result == vector_result, \
            f"vectorized summary drifted: {label}"


class TestInProcessReproducibility:
    """Per-simulation packet ids: sequential runs are exactly identical."""

    CONFIG = dataclasses.replace(
        SimulationConfig(warmup_cycles=150, measure_cycles=300).with_load(0.5),
        seed=11,
    )

    def test_sequential_runs_have_identical_traces_and_pids(self):
        traces = []
        for _ in range(2):
            sim = Simulation(self.CONFIG)
            trace = _delivery_trace(sim)
            sim.run()
            traces.append(trace)
        assert traces[0] == traces[1]
        # pid sequences start from zero per simulation.
        assert min(pid for pid, *_ in traces[0]) < 50

    def test_sequential_runrecords_identical(self):
        records = []
        for _ in range(2):
            session = Session(self.CONFIG)
            session.warmup()
            session.measure()
            records.append(session.record())
        first, second = records
        assert first.summary == second.summary
        assert first.channels == second.channels
        assert first.windows == second.windows
        prov_a = {k: v for k, v in first.provenance.items() if k != "wall_time_s"}
        prov_b = {k: v for k, v in second.provenance.items() if k != "wall_time_s"}
        assert prov_a == prov_b

    def test_reactive_replies_reproducible(self):
        config = dataclasses.replace(
            self.CONFIG,
            traffic=dataclasses.replace(
                self.CONFIG.traffic, reactive=True, load=0.4
            ),
            arrangement=__import__(
                "repro.core.arrangement", fromlist=["VcArrangement"]
            ).VcArrangement.request_reply((2, 1), (2, 1)),
        )
        traces = []
        for _ in range(2):
            sim = Simulation(config)
            trace = _delivery_trace(sim)
            sim.run()
            traces.append(trace)
        assert traces[0] == traces[1]
