"""Golden-result checks: Dragonfly and Flattened Butterfly results must stay
bit-identical across refactors of the topology/routing/config stack.

The expected values were captured on the pre-route-table code (PR 1) with
fixed seeds; any drift here means the refactor changed simulation behaviour,
not just structure.  Floating-point values are compared exactly on purpose —
the simulator is deterministic.
"""

from dataclasses import asdict

import pytest

from repro.config import NetworkConfig, RoutingConfig, SimulationConfig, TrafficConfig
from repro.core.arrangement import VcArrangement
from repro.simulation import run_simulation

DRAGONFLY = NetworkConfig(topology="dragonfly", h=2)
FB = NetworkConfig(topology="flattened_butterfly", k1=4, k2=4, fb_nodes_per_router=2)


def build_config(network, algorithm, vc_policy, arrangement, pattern="uniform",
                 load=0.6, reactive=False, buffer_organization="static"):
    from repro.config import RouterConfig

    return SimulationConfig(
        network=network,
        router=RouterConfig(buffer_organization=buffer_organization),
        routing=RoutingConfig(algorithm=algorithm, vc_policy=vc_policy),
        arrangement=arrangement,
        traffic=TrafficConfig(pattern=pattern, load=load, reactive=reactive),
        warmup_cycles=300,
        measure_cycles=700,
        seed=3,
    )


def run(**kwargs):
    return asdict(run_simulation(build_config(**kwargs)))


GOLDEN = {
    "dragonfly min baseline uniform": (
        dict(network=DRAGONFLY, algorithm="min", vc_policy="baseline",
             arrangement=VcArrangement.single_class(2, 1)),
        {"accepted_load": 0.596031746031746, "average_latency": 182.96911608093717,
         "latency_p99": 276.0, "packets_delivered": 3755, "packets_generated": 5374,
         "phits_delivered": 30040, "misrouted_fraction": 0.0},
    ),
    "dragonfly val flexvc adversarial": (
        dict(network=DRAGONFLY, algorithm="val", vc_policy="flexvc",
             arrangement=VcArrangement.single_class(3, 2), pattern="adversarial"),
        {"accepted_load": 0.36412698412698413, "average_latency": 397.800875273523,
         "latency_p99": 627.0, "packets_delivered": 2294, "packets_generated": 5418,
         "phits_delivered": 18352, "misrouted_fraction": 1.0},
    ),
    "dragonfly pb baseline adversarial": (
        dict(network=DRAGONFLY, algorithm="pb", vc_policy="baseline",
             arrangement=VcArrangement.single_class(4, 2), pattern="adversarial"),
        {"accepted_load": 0.3780952380952381, "average_latency": 389.4191555097837,
         "latency_p99": 627.0, "packets_delivered": 2382, "packets_generated": 5429,
         "phits_delivered": 19056, "misrouted_fraction": 0.776519052523172},
    ),
    "dragonfly par flexvc uniform": (
        dict(network=DRAGONFLY, algorithm="par", vc_policy="flexvc",
             arrangement=VcArrangement.single_class(3, 2)),
        {"accepted_load": 0.4531746031746032, "average_latency": 199.98352165725046,
         "latency_p99": 441.0, "packets_delivered": 2855, "packets_generated": 5404,
         "phits_delivered": 22840, "misrouted_fraction": 0.1327683615819209},
    ),
    "fb min baseline uniform": (
        dict(network=FB, algorithm="min", vc_policy="baseline",
             arrangement=VcArrangement.single_class(2, 1)),
        {"accepted_load": 0.5914285714285714, "average_latency": 138.42968142968144,
         "latency_p99": 216.0, "packets_delivered": 1656, "packets_generated": 2405,
         "phits_delivered": 13248, "misrouted_fraction": 0.0},
    ),
    "dragonfly min baseline reactive": (
        dict(network=DRAGONFLY, algorithm="min", vc_policy="baseline",
             arrangement=VcArrangement.request_reply((2, 1), (2, 1)),
             load=0.5, reactive=True),
        {"accepted_load": 0.4607936507936508, "average_latency": 171.8189045936396,
         "latency_p99": 228.0, "packets_delivered": 2903, "packets_generated": 4004,
         "phits_delivered": 23224, "misrouted_fraction": 0.0},
    ),
    "fb min flexvc damq": (
        dict(network=FB, algorithm="min", vc_policy="flexvc",
             arrangement=VcArrangement.single_class(4, 2), load=0.8,
             buffer_organization="damq"),
        {"accepted_load": 0.7717857142857143, "average_latency": 155.5262836185819,
         "latency_p99": 341.0, "packets_delivered": 2161, "packets_generated": 3172,
         "phits_delivered": 17288, "misrouted_fraction": 0.0},
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_result_bit_identical(name):
    kwargs, expected = GOLDEN[name]
    result = run(**kwargs)
    assert not result["deadlock_suspected"]
    for key, value in expected.items():
        assert result[key] == value, f"{name}: {key} drifted"


def _has_numpy() -> bool:
    from repro.kernel import numpy_or_none

    return numpy_or_none() is not None


#: golden entries inside the vectorized kernel's support envelope (min/val
#: routing on statically partitioned buffers, non-reactive traffic).
_VECTORIZED_GOLDEN = (
    "dragonfly min baseline uniform",
    "dragonfly val flexvc adversarial",
    "fb min baseline uniform",
)


@pytest.mark.skipif(not _has_numpy(), reason="vectorized backend needs numpy")
@pytest.mark.parametrize("name", _VECTORIZED_GOLDEN)
def test_golden_result_identical_under_vectorized_backend(name):
    from repro.simulation import Simulation

    kwargs, expected = GOLDEN[name]
    sim = Simulation(build_config(**kwargs), backend="vectorized")
    assert sim.backend_active == "vectorized", sim.backend_fallback_reason
    result = asdict(sim.run())
    assert not result["deadlock_suspected"]
    for key, value in expected.items():
        assert result[key] == value, f"{name}: {key} drifted under vectorized"
