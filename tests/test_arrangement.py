"""Unit tests for VC arrangements."""

import pytest

from repro.core.arrangement import VcArrangement
from repro.core.link_types import LinkType, MessageClass


class TestSingleClass:
    def test_totals(self):
        arr = VcArrangement.single_class(4, 2)
        assert arr.total_local == 4
        assert arr.total_global == 2
        assert not arr.is_reactive

    def test_label(self):
        assert VcArrangement.single_class(4, 2).label() == "4/2"

    def test_usable_range_request(self):
        arr = VcArrangement.single_class(4, 2)
        assert list(arr.usable_range(LinkType.LOCAL, MessageClass.REQUEST)) == [0, 1, 2, 3]
        assert list(arr.usable_range(LinkType.GLOBAL, MessageClass.REQUEST)) == [0, 1]

    def test_ceiling(self):
        arr = VcArrangement.single_class(3, 2)
        assert arr.class_ceiling(LinkType.LOCAL, MessageClass.REQUEST) == 3
        assert arr.class_ceiling(LinkType.GLOBAL, MessageClass.REQUEST) == 2


class TestRequestReply:
    def test_totals(self):
        arr = VcArrangement.request_reply((4, 3), (2, 1))
        assert arr.total_local == 6
        assert arr.total_global == 4
        assert arr.is_reactive

    def test_label(self):
        arr = VcArrangement.request_reply((3, 2), (2, 1))
        assert arr.label() == "5/3 (3/2+2/1)"

    def test_requests_limited_to_prefix(self):
        arr = VcArrangement.request_reply((2, 1), (2, 1))
        assert list(arr.usable_range(LinkType.LOCAL, MessageClass.REQUEST)) == [0, 1]

    def test_replies_may_use_everything(self):
        arr = VcArrangement.request_reply((2, 1), (2, 1))
        assert list(arr.usable_range(LinkType.LOCAL, MessageClass.REPLY)) == [0, 1, 2, 3]
        assert arr.class_ceiling(LinkType.GLOBAL, MessageClass.REPLY) == 2

    def test_reply_count(self):
        arr = VcArrangement.request_reply((4, 2), (2, 1))
        assert arr.reply_count(LinkType.LOCAL) == 2
        assert arr.reply_count(LinkType.GLOBAL) == 1


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VcArrangement(request_local=-1, request_global=1)

    def test_zero_local_rejected(self):
        with pytest.raises(ValueError):
            VcArrangement(request_local=0, request_global=1)

    def test_zero_global_allowed(self):
        # Generic diameter-2 networks have no global links at all.
        arr = VcArrangement.single_class(3, 0)
        assert arr.total_global == 0
